"""Ablation: input x output heuristic sweep on mixed data (Fig 5.8).

Companion to the ANOVA benches: directly tabulates mean runs per
heuristic pair, confirming the paper's Figure 5.8 story — Mean/Median
input with Random output reach the minimum, while Random input cannot
exploit the structure.
"""

from conftest import run_once

from repro.core.config import TwoWayConfig
from repro.core.two_way import TwoWayReplacementSelection
from repro.workloads.generators import make_input

MEMORY = 500
INPUT = 20_000
INPUT_HEURISTICS = ("random", "alternate", "mean", "median")
OUTPUT_HEURISTICS = ("random", "balancing", "min_distance")
SEEDS = (3, 5)


def _sweep():
    cells = {}
    stat_ops = {}
    for input_h in INPUT_HEURISTICS:
        for output_h in OUTPUT_HEURISTICS:
            runs = 0
            mean_ops = median_ops = 0
            for seed in SEEDS:
                config = TwoWayConfig(
                    buffer_setup="both",
                    buffer_fraction=0.02,
                    input_heuristic=input_h,
                    output_heuristic=output_h,
                    seed=seed,
                )
                data = make_input("mixed_balanced", INPUT, seed=seed)
                algo = TwoWayReplacementSelection(MEMORY, config)
                runs += algo.count_runs(data)
                mean_ops += algo.last_input_buffer.mean_computations
                median_ops += algo.last_input_buffer.median_computations
            cells[(input_h, output_h)] = runs / len(SEEDS)
            stat_ops[(input_h, output_h)] = (mean_ops, median_ops)
    return cells, stat_ops


def test_bench_ablation_heuristics(benchmark):
    cells, stat_ops = run_once(benchmark, _sweep)
    print("\nMean runs per heuristic pair (mixed balanced):")
    for (input_h, output_h), mean_runs in sorted(cells.items()):
        mean_ops, median_ops = stat_ops[(input_h, output_h)]
        print(
            f"  {input_h:<10} x {output_h:<12} -> {mean_runs:7.1f}"
            f"   (mean comps {mean_ops:>6}, median comps {median_ops:>6})"
        )
    # Lazy statistics: heuristics that ignore the distribution trigger
    # zero mean/median computations; Mean never computes medians and
    # vice versa (the eager seed computed both on every decision).
    for (input_h, _), (mean_ops, median_ops) in stat_ops.items():
        if input_h in ("random", "alternate"):
            assert mean_ops == 0 and median_ops == 0
        elif input_h == "mean":
            assert mean_ops > 0 and median_ops == 0
        elif input_h == "median":
            assert median_ops > 0 and mean_ops == 0
    best_value = min(cells.values())
    best_inputs = {pair[0] for pair, v in cells.items() if v == best_value}
    # Table 5.7: Alternate, Mean and Median are tied best; Mean must be
    # among the optimal input heuristics.
    assert "mean" in best_inputs
    # Random input cannot reach the optimum across all output choices.
    random_rows = [v for (k, _), v in cells.items() if k == "random"]
    mean_rows = [v for (k, _), v in cells.items() if k == "mean"]
    assert sum(mean_rows) <= sum(random_rows)
    # The paper's optimum collapses the dataset to ~2 runs.
    assert best_value <= 4
