"""Benchmark: Figure 6.7 — reverse-sorted input (2WRS ~2.5x faster)."""

from conftest import run_once

from repro.experiments.common import timing_table
from repro.experiments.fig_6_7_reverse import run

SIZES = (25_000, 50_000, 100_000)


def test_bench_fig_6_7_reverse(benchmark):
    rows = run_once(benchmark, run, input_sizes=SIZES)
    print("\n" + timing_table(rows, "input"))
    for row in rows:
        # Theorem 4: a single 2WRS run; Theorem 3: RS runs = memory.
        assert row.twrs_runs == 1
        assert row.rs_runs == row.x // 1_000
        # The paper measures ~2.5x; accept a generous band around it.
        assert row.speedup > 1.5, f"input={row.x}: speedup {row.speedup}"
