"""Load generator for the resident sort service (DESIGN.md §16).

Starts a real server (in-process asyncio listener over a temp spool),
then drives it at several client concurrency levels: each client
thread submits spilling sort jobs and polls them to completion over
the TCP protocol, exactly as ``repro submit --wait`` would.  Per-level
throughput (jobs/s) and latency quantiles (p50/p99, submit → done)
land in ``BENCH_service.json`` at the repo root.

Every job sorts its own pre-generated input file (distinct specs —
identical specs would collapse into one job id by design), and every
result is digest-checked against a serial ``sorted()`` so the bench
cannot quietly measure wrong answers.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py \
        --records 50000 --jobs-per-client 3 --concurrency 1 4 8

    PYTHONPATH=src python benchmarks/bench_service.py --smoke
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import io
import json
import os
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List

from repro.service.client import ServiceClient, read_endpoint
from repro.service.server import SortService

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _make_inputs(directory: str, count: int, records: int) -> List[Dict]:
    """One shuffled input file (and its expected digest) per job."""
    jobs = []
    for index in range(count):
        stride = 7 + 2 * index
        values = [(stride * i) % records for i in range(records)]
        path = os.path.join(directory, f"in-{index}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(str(v) for v in values) + "\n")
        expected = "\n".join(str(v) for v in sorted(values)) + "\n"
        jobs.append(
            {
                "input": path,
                "digest": hashlib.sha256(
                    expected.encode("utf-8")
                ).hexdigest(),
            }
        )
    return jobs


def _quantile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, round(q * (len(sorted_values) - 1))
    )
    return sorted_values[index]


def _drive_level(
    address: str,
    jobs: List[Dict],
    concurrency: int,
    memory: int,
    verify: bool,
    out_dir: str,
) -> Dict:
    """All jobs through ``concurrency`` client threads; one level's row."""
    latencies: List[float] = []
    failures: List[str] = []
    lock = threading.Lock()
    queue = list(enumerate(jobs))

    def worker() -> None:
        client = ServiceClient(address)
        while True:
            with lock:
                if not queue:
                    return
                index, job = queue.pop()
            started = time.perf_counter()
            payload = client.submit(
                {
                    "op": "sort",
                    "input": job["input"],
                    "memory": memory,
                    # Distinct output per (level, job): identical specs
                    # would collapse into one already-done job id, and
                    # later levels would measure cache hits, not sorts.
                    "output": os.path.join(out_dir, f"out-{index}.txt"),
                }
            )
            payload = client.wait(payload["id"], timeout=600.0)
            elapsed = time.perf_counter() - started
            if payload["status"] != "done":
                with lock:
                    failures.append(f"{payload['id']}: {payload['error']}")
                return
            if verify:
                sink = io.StringIO()
                client.result(payload["id"], sink)
                digest = hashlib.sha256(
                    sink.getvalue().encode("utf-8")
                ).hexdigest()
                if digest != job["digest"]:
                    with lock:
                        failures.append(f"{payload['id']}: wrong output")
                    return
            with lock:
                latencies.append(elapsed)

    threads = [
        threading.Thread(target=worker) for _ in range(concurrency)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    if failures:
        raise SystemExit("bench jobs failed:\n" + "\n".join(failures))
    latencies.sort()
    return {
        "concurrency": concurrency,
        "jobs": len(jobs),
        "wall_s": round(wall, 3),
        "throughput_jobs_s": round(len(jobs) / wall, 3),
        "p50_latency_s": round(_quantile(latencies, 0.50), 3),
        "p99_latency_s": round(_quantile(latencies, 0.99), 3),
        "max_latency_s": round(latencies[-1], 3),
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=50_000,
                        help="records per job input (default 50000)")
    parser.add_argument("--memory", type=int, default=500,
                        help="per-job memory ask in records; small "
                             "enough that every job spills (default 500)")
    parser.add_argument("--jobs-per-client", type=int, default=3,
                        help="jobs each client thread works through "
                             "(default 3)")
    parser.add_argument("--concurrency", type=int, nargs="+",
                        default=[1, 4, 8],
                        help="client concurrency levels (default 1 4 8)")
    parser.add_argument("--total-memory", type=int, default=20_000,
                        help="server broker pool in records")
    parser.add_argument("--job-workers", type=int, default=8,
                        help="server job threads (default 8)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the per-job output digest check")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI: proves the harness "
                             "runs, not the numbers")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    if args.smoke:
        args.records = 5_000
        args.jobs_per_client = 2
        args.concurrency = [1, 2, 4]

    levels = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as work:
        service = SortService(
            os.path.join(work, "spool"),
            total_memory=args.total_memory,
            job_workers=args.job_workers,
        )
        endpoint = os.path.join(work, "endpoint.json")

        def serve() -> None:
            asyncio.run(service.run(endpoint_file=endpoint))

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        address = read_endpoint(endpoint, timeout=30.0)
        client = ServiceClient(address)
        try:
            max_jobs = max(args.concurrency) * args.jobs_per_client
            inputs = _make_inputs(work, max_jobs, args.records)
            for concurrency in args.concurrency:
                jobs = inputs[: concurrency * args.jobs_per_client]
                out_dir = os.path.join(work, f"out-c{concurrency}")
                os.mkdir(out_dir)
                row = _drive_level(
                    address, jobs, concurrency, args.memory,
                    verify=not args.no_verify, out_dir=out_dir,
                )
                print(
                    f"concurrency={row['concurrency']:>2}  "
                    f"jobs={row['jobs']:>3}  "
                    f"throughput={row['throughput_jobs_s']:>7.3f} jobs/s  "
                    f"p50={row['p50_latency_s']:.3f}s  "
                    f"p99={row['p99_latency_s']:.3f}s",
                    flush=True,
                )
                levels.append(row)
        finally:
            try:
                client.shutdown()
            except (ConnectionError, OSError):
                pass
            thread.join(timeout=30.0)

    result = {
        "benchmark": "service-load",
        "smoke": bool(args.smoke),
        "records_per_job": args.records,
        "job_memory": args.memory,
        "server_total_memory": args.total_memory,
        "server_job_workers": args.job_workers,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "levels": levels,
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
