"""Benchmark: Figure 6.6 — alternating input vs number of sections."""

from conftest import run_once

from repro.experiments.common import timing_table
from repro.experiments.fig_6_6_alternating import run

SECTIONS = (2, 5, 10, 25)
INPUT = 50_000


def test_bench_fig_6_6_alternating(benchmark):
    rows = run_once(
        benchmark, run, sections_sweep=SECTIONS, input_records=INPUT
    )
    print("\n" + timing_table(rows, "sections"))
    by_sections = {row.x: row for row in rows}
    # Few long sections: a clear 2WRS win (paper: up to ~3x).
    assert by_sections[2].speedup > 1.5
    # Many short sections: the advantage fades towards parity.
    assert by_sections[25].speedup < by_sections[2].speedup
    assert by_sections[25].speedup > 0.6
    # 2WRS never generates more runs than one per monotone section + 1.
    assert by_sections[2].twrs_runs <= 3
