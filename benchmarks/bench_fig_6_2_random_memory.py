"""Benchmark: Figure 6.2 — random input, memory sweep (RS ~ 2WRS)."""

from conftest import run_once

from repro.experiments.common import timing_table
from repro.experiments.fig_6_2_random_memory import run

MEMORIES = (500, 1_000, 2_000, 4_000)
INPUT = 50_000


def test_bench_fig_6_2_random_memory(benchmark):
    rows = run_once(
        benchmark, run, memories=MEMORIES, input_records=INPUT
    )
    print("\n" + timing_table(rows, "memory"))
    # Both algorithms get faster with more memory...
    assert rows[-1].rs_total_time < rows[0].rs_total_time
    assert rows[-1].twrs_total_time < rows[0].twrs_total_time
    # ...and stay within a modest factor of each other on random data.
    for row in rows:
        assert 0.4 <= row.speedup <= 2.5, f"memory={row.x}: {row.speedup}"
