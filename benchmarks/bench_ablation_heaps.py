"""Ablation: the shared-array DoubleHeap vs two independent heaps.

DESIGN.md calls out the single-array layout (Section 4.1, Figure 4.3)
as a design choice: it lets either heap grow at the other's expense
without dynamic allocation.  This bench measures the Python-level
throughput of the two layouts under the 2WRS access pattern (interleaved
pushes and pops on both sides) to document the layout's overhead, and
verifies they compute identical results.
"""

import random

from repro.heaps.binary_heap import MaxHeap, MinHeap
from repro.heaps.double_heap import DoubleHeap

OPS = 20_000
CAPACITY = 2_048


def _workload(seed: int):
    rng = random.Random(seed)
    return [rng.random() for _ in range(OPS)]


def _run_double_heap(values) -> float:
    heaps: DoubleHeap[float] = DoubleHeap(
        CAPACITY, lambda a, b: a > b, lambda a, b: a < b
    )
    total = 0.0
    for i, value in enumerate(values):
        side = heaps.bottom if value < 0.5 else heaps.top
        if heaps.is_full:
            victim = heaps.bottom if len(heaps.bottom) else heaps.top
            total += victim.pop()
        side.push(value)
        if i % 3 == 0 and len(heaps.top):
            total += heaps.top.pop()
    return total


def _run_two_heaps(values) -> float:
    bottom: MaxHeap[float] = MaxHeap()
    top: MinHeap[float] = MinHeap()
    total = 0.0
    for i, value in enumerate(values):
        side = bottom if value < 0.5 else top
        if len(bottom) + len(top) >= CAPACITY:
            victim = bottom if len(bottom) else top
            total += victim.pop()
        side.push(value)
        if i % 3 == 0 and len(top):
            total += top.pop()
    return total


def test_bench_double_heap_layout(benchmark):
    values = _workload(42)
    result = benchmark(_run_double_heap, values)
    assert result == _run_two_heaps(values)


def test_bench_two_heap_layout(benchmark):
    values = _workload(42)
    result = benchmark(_run_two_heaps, values)
    assert result == _run_double_heap(values)
