"""Benchmark: Figure 3.8 — RS snowplow model converges to 2 - 2x."""

from conftest import run_once

from repro.experiments.fig_3_8_model import run


def test_bench_fig_3_8_model(benchmark):
    fits = run_once(benchmark, run)
    print("\nFigure 3.8 convergence:")
    for fit in fits:
        print(
            f"  run {fit.run_index}: length={fit.run_length:.3f} "
            f"max|err|={fit.max_abs_error:.3f}"
        )
    # Paper: run lengths approach 2x memory and the density converges.
    assert abs(fits[-1].run_length - 2.0) < 0.1
    assert fits[-1].max_abs_error < 0.1
    assert fits[-1].max_abs_error <= fits[0].max_abs_error
