"""Ablation: dynamic vs static memory allocation (Section 3.7.3).

Zhang & Larson's claim: when concurrent sorts share a memory pool, the
five-situation adjustment policy improves throughput over static equal
partitioning — most visibly when job sizes are skewed, because freed
memory migrates to the surviving big sort.
"""

from conftest import run_once

from repro.sort.memory_broker import ConcurrentSortSimulator, SortJob
from repro.workloads.generators import random_input

POOL = 2_048


def make_jobs():
    jobs = [
        SortJob(
            name="big",
            records=list(random_input(40_000, seed=9)),
            minimum_memory=64,
            maximum_memory=4_096,
        )
    ]
    for i in range(3):
        jobs.append(
            SortJob(
                name=f"small{i}",
                records=list(random_input(1_000, seed=i)),
                minimum_memory=64,
                maximum_memory=512,
            )
        )
    return jobs


def _sweep():
    static = ConcurrentSortSimulator(
        make_jobs(), total_memory=POOL, dynamic=False
    ).run()
    dynamic = ConcurrentSortSimulator(
        make_jobs(), total_memory=POOL, dynamic=True
    ).run()
    return static, dynamic


def test_bench_ablation_memory(benchmark):
    static, dynamic = run_once(benchmark, _sweep)
    print("\nConcurrent sorts sharing a pool (finish times, simulated s):")
    print(f"  static : {[round(v, 3) for v in static.values()]}")
    print(f"  dynamic: {[round(v, 3) for v in dynamic.values()]}")
    # Dynamic adjustment finishes the workload sooner overall.
    assert max(dynamic.values()) < max(static.values())
    # Small jobs are not starved by the policy.
    for name in static:
        if name.startswith("small"):
            assert dynamic[name] <= static[name] * 1.5
