"""Block-batched I/O sweep: block size vs the line-at-a-time baseline.

Sorts the same dataset through the real-file spill backend at several
``--block-records`` settings and once through the *line-at-a-time
baseline* — a :class:`~repro.core.records.CallableFormat` wrapping the
seed's per-record ``str``/``int`` callables, which forces one Python-
level decode call per line and one encode call per record, exactly the
hot loop this PR's block codecs replaced.  Results (wall seconds,
speedup vs the baseline, sha256 output digests — all settings must
produce byte-identical output) go to ``BENCH_blockio.json`` at the
repo root.

A second sweep times the three real-file merge reading strategies
(naive / forecasting / double_buffering) at the default block size, so
the JSON records how prefetching behaves on this machine's storage.

Usage::

    PYTHONPATH=src python benchmarks/bench_block_io.py \
        --records 500000 --blocks 512 4096 16384

This is a standalone script, not a pytest-benchmark module: the
quantity of interest is the relative wall-clock of whole sorts.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.core.config import GeneratorSpec
from repro.core.records import INT, CallableFormat
from repro.engine.planner import SortEngine
from repro.workloads.generators import random_input

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_blockio.json"

#: The seed's per-record serialisation, as top-level callables.
LINE_AT_A_TIME = CallableFormat(str, int)


def run_once(
    records: int,
    memory: int,
    algorithm: str,
    fan_in: int,
    block_records: int,
    reading: str,
    record_format,
    seed: int,
) -> dict:
    """One full sort; returns wall time and an output digest."""
    engine = SortEngine(
        GeneratorSpec(algorithm, memory),
        record_format=record_format,
        fan_in=fan_in,
        buffer_records=block_records,
        block_records=block_records,
        reading=reading,
    )
    digest = hashlib.sha256()
    count = 0
    started = time.perf_counter()
    for value in engine.sort(random_input(records, seed=seed)):
        digest.update(f"{value}\n".encode("ascii"))
        count += 1
    wall = time.perf_counter() - started
    assert count == records, f"lost records: {count} != {records}"
    stats = engine.reading_stats
    return {
        "wall_seconds": round(wall, 3),
        "merge_passes": engine.merge_passes,
        "block_reads": stats.block_reads if stats else 0,
        "prefetch_hits": stats.prefetch_hits if stats else 0,
        "sha256": digest.hexdigest(),
    }


def merge_only(
    records: int,
    fan_in: int,
    block_records: int,
    record_format,
    seed: int,
) -> dict:
    """Time just the k-way merge of pre-written sorted run files.

    Isolates the hot merge loop (read blocks -> decode -> heap ->
    encode nothing, the consumer just hashes), where the block codecs
    replaced one decode call per record.
    """
    import tempfile

    from repro.engine.block_io import write_sequence

    run_records = records // fan_in
    with tempfile.TemporaryDirectory(prefix="repro-benchio-") as work_dir:
        paths = []
        for index in range(fan_in):
            data = sorted(random_input(run_records, seed=seed * 100 + index))
            path = os.path.join(work_dir, f"run-{index:02d}.txt")
            write_sequence(path, data, INT)
            paths.append(path)
        engine = SortEngine(
            GeneratorSpec("lss", 1000),
            record_format=record_format,
            fan_in=fan_in,
            buffer_records=block_records,
            reading="naive",
        )
        digest = hashlib.sha256()
        count = 0
        started = time.perf_counter()
        for value in engine.merge_files(paths):
            digest.update(f"{value}\n".encode("ascii"))
            count += 1
        wall = time.perf_counter() - started
    assert count == run_records * fan_in
    return {
        "wall_seconds": round(wall, 3),
        "records": count,
        "sha256": digest.hexdigest(),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=500_000)
    parser.add_argument("--memory", type=int, default=10_000)
    parser.add_argument("--algorithm", default="lss",
                        choices=("rs", "2wrs", "lss", "brs"))
    parser.add_argument("--fan-in", type=int, default=10)
    parser.add_argument("--blocks", type=int, nargs="+",
                        default=[512, 4096, 16384])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    common = dict(
        records=args.records, memory=args.memory, algorithm=args.algorithm,
        fan_in=args.fan_in, seed=args.seed,
    )

    print(f"baseline: line-at-a-time decode/encode ...", flush=True)
    baseline = run_once(
        **common, block_records=4096, reading="naive",
        record_format=LINE_AT_A_TIME,
    )
    baseline["mode"] = "line_at_a_time"
    print(f"  wall={baseline['wall_seconds']}s", flush=True)

    block_rows = []
    for block in args.blocks:
        print(f"block_records={block}: block-batched sort ...", flush=True)
        row = run_once(
            **common, block_records=block, reading="naive",
            record_format=INT,
        )
        row["mode"] = "block"
        row["block_records"] = block
        row["speedup_vs_line_at_a_time"] = round(
            baseline["wall_seconds"] / row["wall_seconds"], 3
        )
        block_rows.append(row)
        print(f"  wall={row['wall_seconds']}s "
              f"(x{row['speedup_vs_line_at_a_time']})", flush=True)

    reading_rows = []
    for reading in ("naive", "forecasting", "double_buffering"):
        print(f"reading={reading}: merge strategy sweep ...", flush=True)
        row = run_once(
            **common, block_records=4096, reading=reading, record_format=INT,
        )
        row["mode"] = "reading"
        row["reading"] = reading
        reading_rows.append(row)
        print(f"  wall={row['wall_seconds']}s", flush=True)

    print("merge-only: line-at-a-time vs block decode ...", flush=True)
    merge_line = merge_only(
        args.records, args.fan_in, 4096, LINE_AT_A_TIME, args.seed
    )
    merge_block = merge_only(args.records, args.fan_in, 4096, INT, args.seed)
    merge_speedup = round(
        merge_line["wall_seconds"] / merge_block["wall_seconds"], 3
    )
    print(
        f"  line={merge_line['wall_seconds']}s "
        f"block={merge_block['wall_seconds']}s (x{merge_speedup})",
        flush=True,
    )

    digests = {r["sha256"] for r in [baseline, *block_rows, *reading_rows]}
    identical = (
        len(digests) == 1
        and merge_line["sha256"] == merge_block["sha256"]
    )
    best = max(
        r["speedup_vs_line_at_a_time"] for r in block_rows
    )

    payload = {
        "benchmark": "block-batched spill I/O vs line-at-a-time baseline",
        **common,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "output_identical_across_settings": identical,
        "best_block_speedup_vs_line_at_a_time": best,
        "merge_only_speedup_vs_line_at_a_time": merge_speedup,
        "line_at_a_time_baseline": baseline,
        "block_sweep": block_rows,
        "reading_sweep": reading_rows,
        "merge_only": {
            "line_at_a_time": merge_line,
            "block": merge_block,
        },
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not identical:
        print("ERROR: outputs differ across settings", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
