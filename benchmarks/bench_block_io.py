"""Block-batched I/O sweep: block size vs the line-at-a-time baseline.

Sorts the same dataset through the real-file spill backend at several
``--block-records`` settings and once through the *line-at-a-time
baseline* — a :class:`~repro.core.records.CallableFormat` wrapping the
seed's per-record ``str``/``int`` callables, which forces one Python-
level decode call per line and one encode call per record, exactly the
hot loop this PR's block codecs replaced.  Results (wall seconds,
speedup vs the baseline, sha256 output digests — all settings must
produce byte-identical output) go to ``BENCH_blockio.json`` at the
repo root.

A second sweep times the three real-file merge reading strategies
(naive / forecasting / double_buffering) at the default block size, so
the JSON records how prefetching behaves on this machine's storage.

Usage::

    PYTHONPATH=src python benchmarks/bench_block_io.py \
        --records 500000 --blocks 512 4096 16384

This is a standalone script, not a pytest-benchmark module: the
quantity of interest is the relative wall-clock of whole sorts.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.core.config import GeneratorSpec
from repro.core.records import (
    INT,
    BinaryRecordFormat,
    CallableFormat,
    binary_format,
    resolve_format,
)
from repro.engine.planner import SortEngine
from repro.workloads.generators import random_input

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_blockio.json"

#: The seed's per-record serialisation, as top-level callables.
LINE_AT_A_TIME = CallableFormat(str, int)

#: Best block-batched wall (block_records=16384, 500k records) recorded
#: by the PR 3 run of this script on this container — the committed
#: BENCH_blockio.json in git history before the binary spill format
#: landed.  Speedups against it are only reported for runs at the same
#: --records scale.
PR3_BLOCK_BASELINE_SECONDS = 3.559
PR3_BASELINE_RECORDS = 500_000


def run_once(
    records: int,
    memory: int,
    algorithm: str,
    fan_in: int,
    block_records: int,
    reading: str,
    record_format,
    seed: int,
) -> dict:
    """One full sort; returns wall time and an output digest."""
    engine = SortEngine(
        GeneratorSpec(algorithm, memory),
        record_format=record_format,
        fan_in=fan_in,
        buffer_records=block_records,
        block_records=block_records,
        reading=reading,
    )
    source = random_input(records, seed=seed)
    normalize_wall = None
    if isinstance(record_format, BinaryRecordFormat):
        # The binary path sorts (key bytes, payload bytes) records.
        # The text modes receive their decoded form (Python ints) for
        # free, so the one-time key normalisation is timed separately
        # rather than inside the sort, mirroring the CLI where both
        # paths pay their own input decode stage.
        decode = record_format.decode
        started = time.perf_counter()
        source = [decode(str(value)) for value in source]
        normalize_wall = round(time.perf_counter() - started, 3)
    encode = record_format.encode
    digest = hashlib.sha256()
    count = 0
    started = time.perf_counter()
    for value in engine.sort(source):
        digest.update((encode(value) + "\n").encode("ascii"))
        count += 1
    wall = time.perf_counter() - started
    assert count == records, f"lost records: {count} != {records}"
    stats = engine.reading_stats
    row = {
        "wall_seconds": round(wall, 3),
        "merge_passes": engine.merge_passes,
        "block_reads": stats.block_reads if stats else 0,
        "prefetch_hits": stats.prefetch_hits if stats else 0,
        "sha256": digest.hexdigest(),
    }
    if normalize_wall is not None:
        row["normalize_seconds"] = normalize_wall
    return row


def delimited_once(
    records: int,
    memory: int,
    algorithm: str,
    fan_in: int,
    block_records: int,
    record_format,
    seed: int,
) -> dict:
    """One full sort of delimited rows keyed on a numeric column.

    Integers compare natively either way, so the text-vs-binary gap on
    the INT sweeps is mostly framing; delimited keys are where the
    normalised bytes pay — the text path compares decoded
    ``(rank, class, ...)`` component tuples per heap step while the
    binary path compares one flat ``bytes`` key with memcmp.  Both
    modes pay their own input decode stage, timed separately.
    """
    engine = SortEngine(
        GeneratorSpec(algorithm, memory),
        record_format=record_format,
        fan_in=fan_in,
        buffer_records=block_records,
        block_records=block_records,
        reading="naive",
    )
    rows = [
        f"{value},p{index:07d}"
        for index, value in enumerate(random_input(records, seed=seed))
    ]
    decode = record_format.decode
    started = time.perf_counter()
    source = [decode(row) for row in rows]
    normalize_wall = round(time.perf_counter() - started, 3)
    encode = record_format.encode
    digest = hashlib.sha256()
    count = 0
    started = time.perf_counter()
    for value in engine.sort(source):
        digest.update((encode(value) + "\n").encode("ascii"))
        count += 1
    wall = time.perf_counter() - started
    assert count == records, f"lost records: {count} != {records}"
    return {
        "wall_seconds": round(wall, 3),
        "normalize_seconds": normalize_wall,
        "merge_passes": engine.merge_passes,
        "sha256": digest.hexdigest(),
    }


def merge_only(
    records: int,
    fan_in: int,
    block_records: int,
    record_format,
    seed: int,
) -> dict:
    """Time just the k-way merge of pre-written sorted run files.

    Isolates the hot merge loop (read blocks -> heap -> the consumer
    just hashes), where the block codecs replaced one decode call per
    record and the binary keys replaced the Python-level comparison.
    Runs are written and merged through the spill primitives directly
    so every mode — including the binary framing, which
    ``merge_files`` deliberately refuses for caller-owned text files —
    exercises the same code path.
    """
    import tempfile

    from repro.engine.block_io import write_sequence
    from repro.merge.kway import MergeCounter
    from repro.sort.spill import SpilledRun, SpillSession, merge_spilled_runs

    run_records = records // fan_in
    binary = isinstance(record_format, BinaryRecordFormat)
    with tempfile.TemporaryDirectory(prefix="repro-benchio-") as work_dir:
        session = SpillSession(work_dir)
        runs = []
        for index in range(fan_in):
            data = sorted(random_input(run_records, seed=seed * 100 + index))
            if binary:
                data = [record_format.decode(str(value)) for value in data]
            path = os.path.join(work_dir, f"run-{index:02d}.txt")
            write_sequence(path, data, record_format)
            runs.append(SpilledRun(
                session, path, len(data), record_format, block_records,
                keep=True,
            ))
        encode = record_format.encode
        digest = hashlib.sha256()
        count = 0
        started = time.perf_counter()
        for value in merge_spilled_runs(
            session, runs, MergeCounter(), record_format, fan_in,
            block_records,
        ):
            digest.update((encode(value) + "\n").encode("ascii"))
            count += 1
        wall = time.perf_counter() - started
    assert count == run_records * fan_in
    return {
        "wall_seconds": round(wall, 3),
        "records": count,
        "sha256": digest.hexdigest(),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=500_000)
    parser.add_argument("--memory", type=int, default=10_000)
    parser.add_argument("--algorithm", default="lss",
                        choices=("rs", "2wrs", "lss", "brs"))
    parser.add_argument("--fan-in", type=int, default=10)
    parser.add_argument("--blocks", type=int, nargs="+",
                        default=[512, 4096, 16384])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    common = dict(
        records=args.records, memory=args.memory, algorithm=args.algorithm,
        fan_in=args.fan_in, seed=args.seed,
    )

    print(f"baseline: line-at-a-time decode/encode ...", flush=True)
    baseline = run_once(
        **common, block_records=4096, reading="naive",
        record_format=LINE_AT_A_TIME,
    )
    baseline["mode"] = "line_at_a_time"
    print(f"  wall={baseline['wall_seconds']}s", flush=True)

    block_rows = []
    for block in args.blocks:
        print(f"block_records={block}: block-batched sort ...", flush=True)
        row = run_once(
            **common, block_records=block, reading="naive",
            record_format=INT,
        )
        row["mode"] = "block"
        row["block_records"] = block
        row["speedup_vs_line_at_a_time"] = round(
            baseline["wall_seconds"] / row["wall_seconds"], 3
        )
        block_rows.append(row)
        print(f"  wall={row['wall_seconds']}s "
              f"(x{row['speedup_vs_line_at_a_time']})", flush=True)

    binary_rows = []
    for block in args.blocks:
        print(f"block_records={block}: binary-spill sort ...", flush=True)
        row = run_once(
            **common, block_records=block, reading="naive",
            record_format=binary_format(INT),
        )
        row["mode"] = "binary"
        row["block_records"] = block
        row["speedup_vs_line_at_a_time"] = round(
            baseline["wall_seconds"] / row["wall_seconds"], 3
        )
        binary_rows.append(row)
        print(f"  wall={row['wall_seconds']}s "
              f"(x{row['speedup_vs_line_at_a_time']})", flush=True)

    csv_format = resolve_format("csv", key=0)
    delimited_rows = {}
    for label, fmt in (
        ("text", csv_format),
        ("binary", binary_format(csv_format)),
    ):
        print(f"delimited ({label}): csv rows keyed on column 0 ...",
              flush=True)
        row = delimited_once(
            **common, block_records=4096, record_format=fmt,
        )
        row["mode"] = f"delimited_{label}"
        delimited_rows[label] = row
        print(f"  wall={row['wall_seconds']}s", flush=True)
    delimited_speedup = round(
        delimited_rows["text"]["wall_seconds"]
        / delimited_rows["binary"]["wall_seconds"], 3
    )
    print(f"  binary x{delimited_speedup} vs text on delimited keys",
          flush=True)

    reading_rows = []
    for reading in ("naive", "forecasting", "double_buffering"):
        print(f"reading={reading}: merge strategy sweep ...", flush=True)
        row = run_once(
            **common, block_records=4096, reading=reading, record_format=INT,
        )
        row["mode"] = "reading"
        row["reading"] = reading
        reading_rows.append(row)
        print(f"  wall={row['wall_seconds']}s", flush=True)

    print("merge-only: line-at-a-time vs block vs binary decode ...",
          flush=True)
    merge_line = merge_only(
        args.records, args.fan_in, 4096, LINE_AT_A_TIME, args.seed
    )
    merge_block = merge_only(args.records, args.fan_in, 4096, INT, args.seed)
    merge_binary = merge_only(
        args.records, args.fan_in, 4096, binary_format(INT), args.seed
    )
    merge_speedup = round(
        merge_line["wall_seconds"] / merge_block["wall_seconds"], 3
    )
    merge_binary_speedup = round(
        merge_line["wall_seconds"] / merge_binary["wall_seconds"], 3
    )
    print(
        f"  line={merge_line['wall_seconds']}s "
        f"block={merge_block['wall_seconds']}s (x{merge_speedup}) "
        f"binary={merge_binary['wall_seconds']}s "
        f"(x{merge_binary_speedup})",
        flush=True,
    )

    digests = {
        r["sha256"]
        for r in [baseline, *block_rows, *binary_rows, *reading_rows]
    }
    identical = (
        len(digests) == 1
        and merge_line["sha256"] == merge_block["sha256"]
        == merge_binary["sha256"]
        and delimited_rows["text"]["sha256"]
        == delimited_rows["binary"]["sha256"]
    )
    best = max(
        r["speedup_vs_line_at_a_time"] for r in block_rows
    )
    best_binary = max(
        r["speedup_vs_line_at_a_time"] for r in binary_rows
    )

    vs_pr3 = None
    if args.records == PR3_BASELINE_RECORDS:
        vs_pr3 = {
            "pr3_best_block_wall_seconds": PR3_BLOCK_BASELINE_SECONDS,
            "block_speedup_vs_pr3": round(
                PR3_BLOCK_BASELINE_SECONDS
                / min(r["wall_seconds"] for r in block_rows), 3
            ),
            "binary_speedup_vs_pr3": round(
                PR3_BLOCK_BASELINE_SECONDS
                / min(r["wall_seconds"] for r in binary_rows), 3
            ),
        }

    payload = {
        "benchmark": "block-batched spill I/O vs line-at-a-time baseline",
        **common,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "output_identical_across_settings": identical,
        "best_block_speedup_vs_line_at_a_time": best,
        "best_binary_speedup_vs_line_at_a_time": best_binary,
        "merge_only_speedup_vs_line_at_a_time": merge_speedup,
        "merge_only_binary_speedup_vs_line_at_a_time": merge_binary_speedup,
        "delimited_binary_speedup_vs_text": delimited_speedup,
        "end_to_end_vs_pr3_block_batched": vs_pr3,
        "line_at_a_time_baseline": baseline,
        "block_sweep": block_rows,
        "binary_sweep": binary_rows,
        "delimited": delimited_rows,
        "reading_sweep": reading_rows,
        "merge_only": {
            "line_at_a_time": merge_line,
            "block": merge_block,
            "binary": merge_binary,
        },
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not identical:
        print("ERROR: outputs differ across settings", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
