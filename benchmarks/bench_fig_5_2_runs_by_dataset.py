"""Benchmark: Figure 5.2 — runs per dataset across the factorial sweep."""

from conftest import run_once

from repro.experiments.fig_5_2_runs_by_dataset import run


def test_bench_fig_5_2_runs_by_dataset(benchmark):
    summaries = run_once(benchmark, run)
    table = {s.dataset: s for s in summaries}
    print("\nFigure 5.2 runs by dataset:")
    for s in summaries:
        print(
            f"  {s.dataset:<18} min={s.minimum:5.0f} mean={s.mean:7.1f} "
            f"max={s.maximum:5.0f}"
        )
    # Sorted and reverse-sorted: a single run (the Random input
    # heuristic may cost one bounded startup run — see EXPERIMENTS.md).
    assert table["sorted"].minimum == 1
    assert table["sorted"].maximum <= 2
    assert table["reverse_sorted"].minimum == 1
    assert table["reverse_sorted"].maximum <= 2
    # The mixed datasets show the widest configuration sensitivity.
    mixed_spread = max(
        table["mixed_balanced"].spread, table["mixed_imbalanced"].spread
    )
    assert mixed_spread >= table["random"].spread
    assert mixed_spread > 0
