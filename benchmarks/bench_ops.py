"""Operator sweep: distinct / group-by / join / top-k on the SortEngine.

Runs each :mod:`repro.ops` operator over deterministic synthetic
corpora, serial and with ``workers=2``, and records wall seconds, row
counts and sha256 output digests in ``BENCH_ops.json`` at the repo
root.  Every operator must produce byte-identical output across
worker counts (asserted), and top-k is timed on both of its paths —
the bounded-heap short-circuit and the external-sort fallback.

Usage::

    PYTHONPATH=src python benchmarks/bench_ops.py --records 200000
    PYTHONPATH=src python benchmarks/bench_ops.py --smoke   # CI-sized

This is a standalone script, not a pytest-benchmark module: the
quantity of interest is the relative wall-clock of whole operator
runs.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.core.config import GeneratorSpec
from repro.core.records import DelimitedFormat, INT, binary_format
from repro.engine.planner import SortEngine

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_ops.json"


def csv_corpus(records: int, keys: int, seed: int) -> List:
    rng = random.Random(seed)
    fmt = DelimitedFormat(",", 0)
    return [
        fmt.decode(
            f"k{rng.randint(0, keys):05d},{rng.randint(-1000, 1000)},"
            f"p{rng.randint(0, 9)}"
        )
        for _ in range(records)
    ]


def int_corpus(records: int, seed: int) -> List[int]:
    rng = random.Random(seed)
    return [rng.randint(0, records) for _ in range(records)]


def engine_for(memory: int, workers: int, record_format) -> SortEngine:
    return SortEngine(
        GeneratorSpec("lss", memory),
        record_format=record_format,
        workers=workers,
    )


def timed(label: str, make_stream, encode) -> dict:
    """Build and drain a record stream, hashing its encoded output.

    ``make_stream`` is a thunk so the clock covers operator start-up
    too — the top-k heap path does all its work eagerly.
    """
    digest = hashlib.sha256()
    count = 0
    started = time.perf_counter()
    for record in make_stream():
        digest.update(f"{encode(record)}\n".encode("utf-8"))
        count += 1
    wall = time.perf_counter() - started
    print(f"  {label}: wall={wall:.3f}s rows_out={count}", flush=True)
    return {
        "wall_seconds": round(wall, 3),
        "rows_out": count,
        "sha256": digest.hexdigest(),
    }


def sweep_operator(
    name: str,
    runner,
    memory: int,
    record_format,
    binary_runner=None,
    binary_format_=None,
) -> dict:
    """One operator, serial and workers=2; assert identical digests.

    When a binary runner is given, the operator also runs serially over
    the binary spill encoding of the same corpus, and its output digest
    must match the text path's byte for byte.
    """
    print(f"{name}:", flush=True)
    rows = {}
    for label, workers in (("serial", 1), ("workers_2", 2)):
        engine = engine_for(memory, workers, record_format)
        row = runner(engine)
        report = engine.operator_report
        row["rows_in"] = report.rows_in
        row["groups"] = report.groups
        rows[label] = row
    identical = rows["serial"]["sha256"] == rows["workers_2"]["sha256"]
    if binary_runner is not None:
        engine = engine_for(memory, 1, binary_format_)
        row = binary_runner(engine)
        report = engine.operator_report
        row["rows_in"] = report.rows_in
        row["groups"] = report.groups
        row["identical_to_text"] = (
            row["sha256"] == rows["serial"]["sha256"]
        )
        row["speedup_vs_text"] = round(
            rows["serial"]["wall_seconds"] / row["wall_seconds"], 3
        ) if row["wall_seconds"] else None
        rows["serial_binary"] = row
        identical = identical and row["identical_to_text"]
    return {"operator": name, "identical_across_workers": identical, **rows}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=200_000)
    parser.add_argument("--memory", type=int, default=2_000)
    parser.add_argument("--keys", type=int, default=5_000,
                        help="distinct key values in the csv corpora")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (overrides --records)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    if args.smoke:
        args.records = min(args.records, 20_000)
        args.keys = min(args.keys, 500)

    csv_fmt = DelimitedFormat(",", 0)
    csv_rows = csv_corpus(args.records, args.keys, args.seed)
    right_rows = csv_corpus(args.records // 4, args.keys, args.seed + 1)
    ints = int_corpus(args.records, args.seed + 2)
    k = min(1_000, args.memory)

    # The same corpora under the binary spill encoding: identical row
    # text, normalised key bytes.  Each operator's binary leg must hash
    # identically to its text leg.
    bin_csv_fmt = binary_format(csv_fmt)
    bin_int_fmt = binary_format(INT)
    bin_csv_rows = [bin_csv_fmt.decode(csv_fmt.encode(r)) for r in csv_rows]
    bin_right_rows = [
        bin_csv_fmt.decode(csv_fmt.encode(r)) for r in right_rows
    ]
    bin_ints = [bin_int_fmt.decode(str(v)) for v in ints]

    results = [
        sweep_operator(
            "distinct",
            lambda e: timed(
                f"distinct workers={e.workers}",
                lambda: e.distinct(list(csv_rows)), csv_fmt.encode,
            ),
            args.memory, csv_fmt,
            lambda e: timed(
                "distinct binary",
                lambda: e.distinct(list(bin_csv_rows)), bin_csv_fmt.encode,
            ),
            bin_csv_fmt,
        ),
        sweep_operator(
            "aggregate",
            lambda e: timed(
                f"agg workers={e.workers}",
                lambda: e.aggregate(
                    list(csv_rows), ("count", "sum", "min", "max", "avg"),
                    value_column=1,
                ),
                str,
            ),
            args.memory, csv_fmt,
            lambda e: timed(
                "agg binary",
                lambda: e.aggregate(
                    list(bin_csv_rows),
                    ("count", "sum", "min", "max", "avg"),
                    value_column=1,
                ),
                str,
            ),
            bin_csv_fmt,
        ),
        sweep_operator(
            "join",
            lambda e: timed(
                f"join workers={e.workers}",
                lambda: e.join(
                    list(csv_rows), list(right_rows),
                    right_format=DelimitedFormat(",", 0),
                ),
                str,
            ),
            args.memory, csv_fmt,
            lambda e: timed(
                "join binary",
                lambda: e.join(
                    list(bin_csv_rows), list(bin_right_rows),
                    right_format=bin_csv_fmt,
                ),
                str,
            ),
            bin_csv_fmt,
        ),
        sweep_operator(
            "topk",
            lambda e: timed(
                f"topk workers={e.workers}",
                lambda: e.topk(list(ints), k), INT.encode,
            ),
            args.memory, INT,
            lambda e: timed(
                "topk binary",
                lambda: e.topk(list(bin_ints), k), bin_int_fmt.encode,
            ),
            bin_int_fmt,
        ),
    ]

    # The serial top-k above took the heap path (k <= memory); time the
    # external-sort fallback too by shrinking the budget below k.
    print("topk sorted-path (memory < k):", flush=True)
    small = engine_for(max(2, k // 4), 1, INT)
    sorted_path = timed(
        "topk sorted", lambda: small.topk(list(ints), k), INT.encode
    )
    heap_sha = next(r for r in results if r["operator"] == "topk")
    sorted_path["identical_to_heap_path"] = (
        sorted_path["sha256"] == heap_sha["serial"]["sha256"]
    )

    identical = all(r["identical_across_workers"] for r in results)
    payload = {
        "benchmark": "repro.ops operator sweep (serial vs workers=2)",
        "records": args.records,
        "memory": args.memory,
        "keys": args.keys,
        "seed": args.seed,
        "k": k,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "output_identical_across_workers": identical,
        "topk_heap_vs_sorted_identical":
            sorted_path["identical_to_heap_path"],
        "operators": results,
        "topk_sorted_path": sorted_path,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not identical or not sorted_path["identical_to_heap_path"]:
        print("ERROR: outputs differ across settings", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
