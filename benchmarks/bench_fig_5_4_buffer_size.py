"""Benchmark: Figure 5.4 — run length falls linearly with buffer size."""

from conftest import run_once

from repro.experiments.fig_5_4_buffer_size import run


def test_bench_fig_5_4_buffer_size(benchmark):
    points = run_once(benchmark, run)
    print("\nFigure 5.4 run length vs buffer size:")
    for p in points:
        print(
            f"  {100 * p.buffer_fraction:6.2f}% -> {p.relative_run_length:5.2f}"
        )
    # Tiny buffers leave the classic 2x-memory run length intact.
    assert 1.7 <= points[0].relative_run_length <= 2.2
    # Run length decreases monotonically (within noise) with buffer share.
    assert points[-1].relative_run_length < points[0].relative_run_length
    # 20% buffers cost roughly 20% of the run length, not more than ~35%.
    drop = 1 - points[-1].relative_run_length / points[0].relative_run_length
    assert 0.05 <= drop <= 0.40
