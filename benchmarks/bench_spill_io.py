"""Spill codec sweep: compressed + front-coded runs vs raw spill bytes.

Sorts the same dataset through the real-file spill backend under every
``--spill-codec`` setting, for both the text block format and the
binary (order-preserving key bytes) spill format, at several memory
budgets.  Each run records wall seconds, the engine's raw-vs-on-disk
spill byte counters, and a sha256 digest of the sorted output — every
codec must produce byte-identical output, compression is framing only.
Results go to ``BENCH_spillio.json`` at the repo root.

The quantity of interest is the CPU-vs-I/O tradeoff the planner's
``auto`` codec row encodes: how many spill bytes each codec saves
(``ratio = raw / on_disk``) against how much wall time it costs on
this machine's storage.  Wall times are honest — they include the
compression work, and on fast local disks the compressed modes are
usually *slower*; the ratio column is what transfers to bandwidth-
starved spill devices.

Usage::

    PYTHONPATH=src python benchmarks/bench_spill_io.py \
        --records 500000 --memories 10000 50000

    PYTHONPATH=src python benchmarks/bench_spill_io.py --smoke

``--smoke`` shrinks the sweep (20k records, one memory budget) so CI
can assert the digest invariant and the codec plumbing end to end in
seconds; it writes to a temporary file unless --output is given.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.core.config import GeneratorSpec
from repro.core.records import INT, binary_format
from repro.engine.planner import SortEngine
from repro.engine.spill_codec import SPILL_CODECS
from repro.workloads.generators import random_input

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_spillio.json"


def run_once(
    records: int,
    memory: int,
    algorithm: str,
    fan_in: int,
    block_records: int,
    codec: str,
    binary: bool,
    seed: int,
) -> dict:
    """One full spilling sort; returns wall, spill bytes, and a digest."""
    record_format = binary_format(INT) if binary else INT
    engine = SortEngine(
        GeneratorSpec(algorithm, memory),
        record_format=record_format,
        fan_in=fan_in,
        buffer_records=block_records,
        block_records=block_records,
        reading="naive",
        spill_codec=codec,
    )
    source = random_input(records, seed=seed)
    if binary:
        decode = record_format.decode
        source = [decode(str(value)) for value in source]
    encode = record_format.encode
    digest = hashlib.sha256()
    count = 0
    started = time.perf_counter()
    for value in engine.sort(source):
        digest.update((encode(value) + "\n").encode("ascii"))
        count += 1
    wall = time.perf_counter() - started
    assert count == records, f"lost records: {count} != {records}"
    report = engine.report
    assert report is not None, "spilling sort must publish a SortReport"
    return {
        "codec": codec,
        "format": "binary" if binary else "text",
        "memory": memory,
        "wall_seconds": round(wall, 3),
        "merge_passes": engine.merge_passes,
        "spill_raw_bytes": report.spill_raw_bytes,
        "spill_disk_bytes": report.spill_disk_bytes,
        "spill_ratio": round(report.spill_ratio, 3),
        "sha256": digest.hexdigest(),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=500_000)
    parser.add_argument("--memories", type=int, nargs="+",
                        default=[10_000, 50_000])
    parser.add_argument("--algorithm", default="lss",
                        choices=("rs", "2wrs", "lss", "brs"))
    parser.add_argument("--fan-in", type=int, default=10)
    parser.add_argument("--block-records", type=int, default=4096)
    parser.add_argument("--codecs", nargs="+", default=list(SPILL_CODECS),
                        choices=SPILL_CODECS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=None)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep for CI: 20k records, one memory "
                             "budget, temporary output file")
    args = parser.parse_args(argv)

    if args.smoke:
        args.records = 20_000
        args.memories = [2_000]
    output = args.output
    if output is None:
        if args.smoke:
            fd, name = tempfile.mkstemp(prefix="bench-spillio-",
                                        suffix=".json")
            os.close(fd)
            output = Path(name)
        else:
            output = DEFAULT_OUTPUT

    rows = []
    for memory in args.memories:
        for binary in (False, True):
            for codec in args.codecs:
                label = "binary" if binary else "text"
                print(f"memory={memory} format={label} codec={codec} ...",
                      flush=True)
                row = run_once(
                    records=args.records, memory=memory,
                    algorithm=args.algorithm, fan_in=args.fan_in,
                    block_records=args.block_records, codec=codec,
                    binary=binary, seed=args.seed,
                )
                rows.append(row)
                print(f"  wall={row['wall_seconds']}s "
                      f"raw={row['spill_raw_bytes']} "
                      f"disk={row['spill_disk_bytes']} "
                      f"(x{row['spill_ratio']})", flush=True)

    digests = {r["sha256"] for r in rows}
    identical = len(digests) == 1
    best = max(rows, key=lambda r: r["spill_ratio"])
    # Per-format baselines: the reduction each codec buys over the
    # codec=none run of the *same* format and memory budget.
    baselines = {
        (r["memory"], r["format"]): r["spill_disk_bytes"]
        for r in rows if r["codec"] == "none"
    }
    for row in rows:
        base = baselines.get((row["memory"], row["format"]))
        if base and row["spill_disk_bytes"]:
            row["disk_reduction_vs_none"] = round(
                base / row["spill_disk_bytes"], 3
            )
    best_reduction = max(
        (r.get("disk_reduction_vs_none", 1.0) for r in rows), default=1.0
    )

    payload = {
        "benchmark": "spill codec sweep (codec x format x memory)",
        "records": args.records,
        "algorithm": args.algorithm,
        "fan_in": args.fan_in,
        "block_records": args.block_records,
        "seed": args.seed,
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "output_identical_across_codecs": identical,
        "best_spill_ratio": {
            "codec": best["codec"], "format": best["format"],
            "memory": best["memory"], "ratio": best["spill_ratio"],
        },
        "best_disk_reduction_vs_none": best_reduction,
        "sweep": rows,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    if not identical:
        print("ERROR: outputs differ across codecs", file=sys.stderr)
        return 1
    if best_reduction < 2.0 and not args.smoke:
        print("WARNING: no codec reached a 2x on-disk spill reduction",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
