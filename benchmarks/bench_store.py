"""Storage-engine benchmark: the LSM cost triangle (DESIGN.md §17).

Loads each compaction policy with the same deterministic workload —
random puts over a bounded key space (so overwrites and, later,
tombstones actually collide) followed by a delete pass — then measures
the three quantities a compaction policy trades against each other:

* **write throughput** — operations/s through ``put``/``delete``
  (WAL + memtable + whatever flush/compaction work the policy does
  inline);
* **read cost** — point-``get`` latency quantiles and a full-scan
  rate against the final table layout (more live tables = more heap
  ways per read);
* **amplification** — write amplification (bytes written to SSTables
  ÷ logical bytes the workload produced) and space amplification
  (bytes on disk ÷ live logical bytes).

Policies: ``wal-only`` (no flushes — the degenerate baseline),
``no-compact`` (flush but never merge), leveled compaction at fan-in
2/4/8, and ``full`` (one compaction to a single table at the end,
read-optimal).  Every run is digest-checked against a plain dict
replay of the same workload, so the bench cannot quietly measure a
store that lost writes.

WAL fsync is off (``sync=False``): the bench measures engine work,
not the host's fsync latency, and the service ingest path runs the
same way.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py
    PYTHONPATH=src python benchmarks/bench_store.py --smoke
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import random
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.store import Store

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_store.json"

#: (name, store options, compact at end).  ``memory`` is set per run.
POLICIES = [
    ("wal-only", {"auto_compact": False}, False),
    ("no-compact", {"auto_compact": False}, False),
    ("leveled-fan2", {"fan_in": 2}, False),
    ("leveled-fan4", {"fan_in": 4}, False),
    ("leveled-fan8", {"fan_in": 8}, False),
    ("full", {"fan_in": 8}, True),
]


def workload(seed: int, operations: int, key_space: int):
    """Deterministic op stream: 85% puts, 15% deletes, colliding keys."""
    rng = random.Random(seed)
    for _ in range(operations):
        key = b"key-%08d" % rng.randrange(key_space)
        if rng.random() < 0.85:
            yield "put", key, b"value-%064d" % rng.getrandbits(48)
        else:
            yield "del", key, b""


def replay_oracle(seed: int, operations: int, key_space: int) -> Dict:
    state: Dict[bytes, bytes] = {}
    logical_bytes = 0
    for op, key, value in workload(seed, operations, key_space):
        logical_bytes += len(key) + len(value)
        if op == "put":
            state[key] = value
        else:
            state.pop(key, None)
    digest = hashlib.sha256()
    for key in sorted(state):
        digest.update(key)
        digest.update(state[key])
    return {
        "live_keys": len(state),
        "live_bytes": sum(len(k) + len(v) for k, v in state.items()),
        "logical_bytes": logical_bytes,
        "digest": digest.hexdigest(),
    }


def _quantile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def disk_bytes(path: str) -> int:
    return sum(
        os.path.getsize(os.path.join(path, name))
        for name in os.listdir(path)
        if name.startswith("sst-")
    )


def bench_policy(
    name: str,
    options: Dict,
    compact_at_end: bool,
    *,
    work: str,
    oracle: Dict,
    seed: int,
    operations: int,
    key_space: int,
    memory: int,
    gets: int,
) -> Dict:
    path = os.path.join(work, name)
    store_memory = operations * 2 if name == "wal-only" else memory
    store = Store(path, memory=store_memory, sync=False, **options)
    try:
        start = time.perf_counter()
        for op, key, value in workload(seed, operations, key_space):
            if op == "put":
                store.put(key, value)
            else:
                store.delete(key)
        if compact_at_end:
            store.compact()
        else:
            store.flush()
        load_wall = time.perf_counter() - start

        # Correctness gate: the scan must replay to the oracle digest.
        digest = hashlib.sha256()
        scan_start = time.perf_counter()
        scanned = 0
        for key, value in store.scan():
            digest.update(key)
            digest.update(value)
            scanned += 1
        scan_wall = time.perf_counter() - scan_start
        if digest.hexdigest() != oracle["digest"]:
            raise SystemExit(
                f"policy {name}: scan diverged from the oracle "
                f"({scanned} vs {oracle['live_keys']} keys)"
            )

        rng = random.Random(seed + 1)
        latencies = []
        hits = 0
        for _ in range(gets):
            key = b"key-%08d" % rng.randrange(key_space)
            probe_start = time.perf_counter()
            if store.get(key) is not None:
                hits += 1
            latencies.append(time.perf_counter() - probe_start)
        latencies.sort()

        table_bytes = disk_bytes(path)
        written = store.flushed_bytes + store.compacted_bytes
        summary = store.verify()
        return {
            "policy": name,
            "tables": summary["tables"],
            "levels": summary["levels"],
            "ops_per_s": round(operations / load_wall, 1),
            "load_wall_s": round(load_wall, 3),
            "scan_keys_per_s": round(scanned / scan_wall, 1)
            if scan_wall
            else None,
            "get_p50_us": round(_quantile(latencies, 0.50) * 1e6, 1),
            "get_p99_us": round(_quantile(latencies, 0.99) * 1e6, 1),
            "get_hit_rate": round(hits / gets, 3) if gets else None,
            "write_amplification": round(
                written / oracle["logical_bytes"], 3
            ),
            "space_amplification": round(
                table_bytes / oracle["live_bytes"], 3
            )
            if table_bytes
            else None,
            "table_bytes": table_bytes,
            "wal_bytes": store.wal_bytes,
        }
    finally:
        store.close()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--operations", type=int, default=200_000,
                        help="workload operations per policy "
                             "(default 200000)")
    parser.add_argument("--key-space", type=int, default=50_000,
                        help="distinct keys; smaller = more overwrite "
                             "pressure (default 50000)")
    parser.add_argument("--memory", type=int, default=8_192,
                        help="memtable budget in records (default 8192)")
    parser.add_argument("--gets", type=int, default=5_000,
                        help="point reads per policy (default 5000)")
    parser.add_argument("--seed", type=int, default=20260807)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI: proves the harness "
                             "runs, not the numbers")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    if args.smoke:
        args.operations = 5_000
        args.key_space = 1_000
        args.memory = 256
        args.gets = 1_000

    oracle = replay_oracle(args.seed, args.operations, args.key_space)
    rows = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as work:
        for name, options, compact_at_end in POLICIES:
            row = bench_policy(
                name, options, compact_at_end,
                work=work, oracle=oracle, seed=args.seed,
                operations=args.operations, key_space=args.key_space,
                memory=args.memory, gets=args.gets,
            )
            print(
                f"{row['policy']:>13}  tables={row['tables']:>3}  "
                f"load={row['ops_per_s']:>9.1f} ops/s  "
                f"get p50={row['get_p50_us']:>7.1f}us "
                f"p99={row['get_p99_us']:>8.1f}us  "
                f"W-amp={row['write_amplification']:<6}  "
                f"S-amp={row['space_amplification']}",
                flush=True,
            )
            rows.append(row)

    result = {
        "benchmark": "store-lsm",
        "smoke": bool(args.smoke),
        "operations": args.operations,
        "key_space": args.key_space,
        "memory": args.memory,
        "gets": args.gets,
        "seed": args.seed,
        "live_keys": oracle["live_keys"],
        "logical_mb": round(oracle["logical_bytes"] / 1e6, 2),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "policies": rows,
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
