"""Benchmark: Figure 6.4 — mixed input, memory sweep (2WRS ~3x faster)."""

from conftest import run_once

from repro.experiments.common import timing_table
from repro.experiments.fig_6_4_mixed_memory import run

# Keep the input >= 25x the largest memory: the paper's sweep never
# reaches the regime where RS's run count drops below the fan-in.
MEMORIES = (250, 500, 1_000, 2_000)
INPUT = 50_000


def test_bench_fig_6_4_mixed_memory(benchmark):
    rows = run_once(
        benchmark, run, memories=MEMORIES, input_records=INPUT
    )
    print("\n" + timing_table(rows, "memory"))
    for row in rows:
        # 2WRS collapses mixed data to very few runs and wins clearly.
        assert row.twrs_runs <= 4
        assert row.speedup > 1.3, f"memory={row.x}: speedup {row.speedup}"
    # Somewhere in the sweep the advantage reaches the paper's ~2-3x.
    assert max(row.speedup for row in rows) > 1.8
