"""Benchmark: Figure 6.1 — merge time vs fan-in has its minimum at 10."""

from conftest import run_once

from repro.experiments.fig_6_1_fan_in import run

FAN_INS = (2, 4, 6, 8, 10, 12, 14, 16, 18)


def test_bench_fig_6_1_fan_in(benchmark):
    points = run_once(benchmark, run, fan_ins=FAN_INS)
    print("\nFigure 6.1 merge times:")
    for point in points:
        print(
            f"  fan-in {point.fan_in:>2}: {point.merge_io_time:8.3f}s "
            f"({point.passes} passes, {point.seeks} seeks)"
        )
    by_fan_in = {p.fan_in: p.merge_io_time for p in points}
    best = min(by_fan_in, key=by_fan_in.get)
    # The paper's optimum: fan-in 10 (allow its immediate neighbours).
    assert best in (8, 10, 12), f"minimum at {best}"
    # U-shape: the extremes are clearly worse than the optimum.
    assert by_fan_in[2] > 1.5 * by_fan_in[best]
    assert by_fan_in[18] > 1.5 * by_fan_in[best]
