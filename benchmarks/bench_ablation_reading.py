"""Ablation: merge-phase reading strategies (Section 3.7.2).

Reproduces the qualitative result of the related-work systems: planning
(Zheng & Larson) reads with the fewest stalls and the best total time;
forecasting never loses to the naive reader; double buffering pays for
its hidden latency with twice the refills.
"""

from conftest import run_once

from repro.merge.reading import ReadingSimulator
from repro.workloads.generators import random_input

NUM_RUNS = 12
RUN_RECORDS = 4_000
MEMORY = 8_192


def _sweep():
    runs = [sorted(random_input(RUN_RECORDS, seed=i)) for i in range(NUM_RUNS)]
    simulator = ReadingSimulator(runs, memory_records=MEMORY)
    return simulator.compare()


def test_bench_ablation_reading(benchmark):
    reports = run_once(benchmark, _sweep)
    print("\nReading strategies (simulated merge of "
          f"{NUM_RUNS} x {RUN_RECORDS} records):")
    for name, report in reports.items():
        print(
            f"  {name:<16} total={report.total_time:8.4f}s "
            f"stall={report.stall_time:8.4f}s reads={report.block_reads:4d} "
            f"seeks={report.seeks:4d}"
        )
    assert reports["planning"].total_time < reports["naive"].total_time
    assert (
        reports["forecasting"].total_time
        <= reports["naive"].total_time * 1.05
    )
    assert reports["planning"].stall_time == min(
        r.stall_time for r in reports.values()
    )
