"""Ablation: what the victim buffer contributes per distribution.

The paper's ANOVA finds the victim buffer essential for the mixed
datasets and irrelevant (slightly harmful, through lost heap memory)
for random input.  This bench compares run counts with and without the
victim buffer at a fixed 2% buffer share.
"""

from conftest import run_once

from repro.core.config import TwoWayConfig
from repro.core.two_way import TwoWayReplacementSelection
from repro.workloads.generators import make_input

MEMORY = 1_000
INPUT = 50_000
DATASETS = ("random", "mixed_balanced", "mixed_imbalanced", "alternating")

WITH_VICTIM = TwoWayConfig(buffer_setup="both", buffer_fraction=0.02)
WITHOUT_VICTIM = TwoWayConfig(buffer_setup="input", buffer_fraction=0.02)


def _sweep():
    rows = []
    for dataset in DATASETS:
        data = list(make_input(dataset, INPUT, seed=9))
        with_victim = TwoWayReplacementSelection(MEMORY, WITH_VICTIM).count_runs(data)
        without = TwoWayReplacementSelection(MEMORY, WITHOUT_VICTIM).count_runs(data)
        rows.append((dataset, with_victim, without))
    return rows


def test_bench_ablation_victim(benchmark):
    rows = run_once(benchmark, _sweep)
    print("\nVictim-buffer ablation (runs generated):")
    for dataset, with_victim, without in rows:
        print(f"  {dataset:<18} victim={with_victim:4d}  no-victim={without:4d}")
    table = {dataset: (w, wo) for dataset, w, wo in rows}
    # Mixed data: the victim buffer is what collapses runs to ~2.
    assert table["mixed_balanced"][0] < table["mixed_balanced"][1]
    assert table["mixed_balanced"][0] <= 4
    # Random data: no benefit (within one run either way).
    assert abs(table["random"][0] - table["random"][1]) <= max(
        3, table["random"][1] // 4
    )
