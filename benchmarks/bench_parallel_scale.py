"""Speedup sweep for the parallel partitioned sort.

Sorts the same random dataset at several ``--workers`` settings and
records wall-clock, speedup vs the first setting, and an output
digest (all settings must produce byte-identical output) into
``BENCH_parallel.json`` at the repo root.

The machine's CPU count is recorded alongside the numbers: on a
single-core box the workers serialise and the sweep measures the
partitioning overhead instead of a speedup, which is exactly what the
JSON should say for that machine.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scale.py \
        --records 2000000 --workers 1 2 4

This is a standalone script, not a pytest-benchmark module: one run
at production scale takes minutes, and the quantity of interest is the
relative wall-clock of whole sorts, not a microbenchmark statistic.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.core.config import GeneratorSpec
from repro.core.records import INT, binary_format
from repro.sort.parallel import PartitionedSort, usable_cpus
from repro.workloads.generators import random_input

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def run_once(
    records: int,
    memory: int,
    algorithm: str,
    partition: str,
    workers: int,
    seed: int,
    binary: bool = False,
) -> dict:
    """One full sort; returns wall time and an output digest.

    With ``binary=True`` the shards spill the length-prefixed binary
    block format (normalised key bytes compared with memcmp in every
    worker's run generation and merge); the input key normalisation is
    timed separately, mirroring the CLI's input decode stage.  The
    digest is over the encoded text either way, so the text and binary
    sweeps must hash identically.
    """
    record_format = binary_format(INT) if binary else None
    sorter = PartitionedSort(
        GeneratorSpec(algorithm, memory), workers=workers,
        partition=partition, record_format=record_format,
    )
    source = random_input(records, seed=seed)
    normalize_wall = None
    if binary:
        decode = record_format.decode
        started = time.perf_counter()
        source = [decode(str(value)) for value in source]
        normalize_wall = round(time.perf_counter() - started, 3)
        encode = record_format.encode
    else:
        encode = str
    digest = hashlib.sha256()
    count = 0
    started = time.perf_counter()
    for value in sorter.sort(source):
        digest.update((encode(value) + "\n").encode("ascii"))
        count += 1
    wall = time.perf_counter() - started
    assert count == records, f"lost records: {count} != {records}"
    row = {
        "workers": workers,
        "wall_seconds": round(wall, 3),
        "partition_seconds": round(sorter.partition_wall, 3),
        "runs": sorter.report.runs,
        "sha256": digest.hexdigest(),
    }
    if normalize_wall is not None:
        row["normalize_seconds"] = normalize_wall
    return row


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=2_000_000)
    parser.add_argument("--memory", type=int, default=20_000)
    parser.add_argument("--algorithm", default="lss",
                        choices=("rs", "2wrs", "lss", "brs"))
    parser.add_argument("--partition", default="hash",
                        choices=("hash", "range"))
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    results = []
    binary_results = []
    for binary, rows in ((False, results), (True, binary_results)):
        label = "binary" if binary else "text"
        for workers in args.workers:
            print(f"workers={workers} ({label}): sorting {args.records} "
                  f"records ...", flush=True)
            row = run_once(
                args.records, args.memory, args.algorithm, args.partition,
                workers, args.seed, binary=binary,
            )
            rows.append(row)
            print(f"  wall={row['wall_seconds']}s", flush=True)

    for rows in (results, binary_results):
        baseline = rows[0]["wall_seconds"]
        for row in rows:
            row["speedup"] = round(baseline / row["wall_seconds"], 3)
    for text_row, binary_row in zip(results, binary_results):
        binary_row["speedup_vs_text"] = round(
            text_row["wall_seconds"] / binary_row["wall_seconds"], 3
        )
    digests = {row["sha256"] for row in results + binary_results}
    identical = len(digests) == 1

    payload = {
        "benchmark": "parallel partitioned sort, wall-clock vs workers",
        "records": args.records,
        "memory": args.memory,
        "algorithm": args.algorithm,
        "partition": args.partition,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpus(),
        "python": sys.version.split()[0],
        "output_identical_across_worker_counts": identical,
        "results": results,
        "binary_results": binary_results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not identical:
        print("ERROR: outputs differ across worker counts", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
