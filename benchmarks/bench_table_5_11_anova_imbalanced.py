"""Benchmark: Tables 5.10-5.12 — mixed imbalanced ANOVA."""

from conftest import run_once

from repro.experiments.table_5_11_anova_imbalanced import run


def test_bench_table_5_11_anova_imbalanced(benchmark):
    result = run_once(benchmark, run)
    print("\nTable 5.11 (WLS model):")
    print(result.wls_model.format_table())
    print(f"setup means: {result.setup_means}")
    print(f"best setups: {result.best_setups}")
    print(f"minimum runs: {result.minimum_runs:.0f}")
    # The buffer setup is significant here (unlike the balanced case).
    assert result.wls_model.term("i").is_significant()
    # Using both buffers gives the best mean number of runs (Fig 5.11).
    best_mean_setup = min(result.setup_means, key=result.setup_means.get)
    assert best_mean_setup == "both"
    # Optimal configurations reach the minimum possible two runs.
    assert result.minimum_runs == 2
