"""Benchmark: Figure 6.5 — mixed input, input sweep (sustained speedup)."""

from conftest import run_once

from repro.experiments.common import timing_table
from repro.experiments.fig_6_5_mixed_scale import run

SIZES = (25_000, 50_000, 100_000)


def test_bench_fig_6_5_mixed_scale(benchmark):
    rows = run_once(benchmark, run, input_sizes=SIZES)
    print("\n" + timing_table(rows, "input"))
    for row in rows:
        assert row.twrs_runs <= 4
        assert row.speedup > 1.3, f"input={row.x}: speedup {row.speedup}"
        # The paper notes even the 2WRS *run phase* wins on mixed data.
        assert row.twrs_run_time < row.rs_run_time
