"""Benchmark: Table 5.13 — run lengths of RS vs three 2WRS configs."""

from conftest import run_once

from repro.experiments.table_5_13_run_lengths import run

MEMORY = 1_000
INPUT = 100_000


def test_bench_table_5_13_run_lengths(benchmark):
    rows = run_once(
        benchmark, run, memory_capacity=MEMORY, input_records=INPUT
    )
    table = {row.dataset: row for row in rows}
    single = INPUT / MEMORY

    print("\nTable 5.13 (relative run lengths):")
    for row in rows:
        print(
            f"  {row.dataset:<18} RS={row.rs:7.2f} cfg1={row.cfg1:7.2f} "
            f"cfg2={row.cfg2:7.2f} cfg3={row.cfg3:7.2f}"
        )

    # Sorted input: everyone produces a single run (Theorems 1-2).
    for value in (table["sorted"].rs, table["sorted"].cfg3):
        assert value == single
    # Reverse sorted: RS worst case (1.0), 2WRS single run (Theorems 3-4).
    assert abs(table["reverse_sorted"].rs - 1.0) < 0.05
    assert table["reverse_sorted"].cfg1 == single
    assert table["reverse_sorted"].cfg3 == single
    # Alternating: RS ~2.0 (Theorem 5), 2WRS one run per section (Thm 6).
    assert 1.5 <= table["alternating"].rs <= 2.2
    assert table["alternating"].cfg3 >= 4.5
    # Random: all close to 2.0; cfg2 (20% buffers) visibly lower.
    assert 1.6 <= table["random"].rs <= 2.2
    assert 1.6 <= table["random"].cfg3 <= 2.2
    assert table["random"].cfg2 < table["random"].cfg3
    # Mixed: cfg2/cfg3 collapse to the minimum possible two runs.
    assert table["mixed_balanced"].cfg_runs["cfg3"] == 2
    assert table["mixed_imbalanced"].cfg_runs["cfg3"] == 2
    assert table["mixed_balanced"].rs <= 2.2
