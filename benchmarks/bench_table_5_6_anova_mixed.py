"""Benchmark: Tables 5.5-5.8 — mixed balanced ANOVA + Tukey."""

from conftest import run_once

from repro.experiments.table_5_6_anova_mixed import run


def test_bench_table_5_6_anova_mixed(benchmark):
    result = run_once(benchmark, run)
    print("\nTable 5.6 (WLS model):")
    print(result.wls_model.format_table())
    print(f"best input heuristics:  {result.best_input_heuristics}")
    print(f"best output heuristics: {result.best_output_heuristics}")
    print(f"minimum runs: {result.minimum_runs:.0f}")
    # Heuristics are significant for mixed data (unlike random input).
    assert result.wls_model.term("k").is_significant()
    assert result.wls_model.term("l").is_significant()
    # The paper's optimum (Mean input) is among the best input levels.
    assert "mean" in result.best_input_heuristics
    # Optimal configurations reach the minimum possible two runs.
    assert result.minimum_runs == 2
    # The model fits well.
    assert result.wls_model.r_squared > 0.8
