"""Benchmark: Figure 6.3 — random input, input sweep (identical scaling)."""

from conftest import run_once

from repro.experiments.common import timing_table
from repro.experiments.fig_6_3_random_scale import run

SIZES = (25_000, 50_000, 100_000)


def test_bench_fig_6_3_random_scale(benchmark):
    rows = run_once(benchmark, run, input_sizes=SIZES)
    print("\n" + timing_table(rows, "input"))
    # Times grow with the input for both algorithms.
    assert rows[-1].rs_total_time > rows[0].rs_total_time
    assert rows[-1].twrs_total_time > rows[0].twrs_total_time
    # Speedup stays flat (parallel trends in the paper's log plot).
    speedups = [row.speedup for row in rows]
    assert max(speedups) - min(speedups) < 1.0
    for speedup in speedups:
        assert 0.4 <= speedup <= 2.5
