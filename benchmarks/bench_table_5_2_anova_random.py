"""Benchmark: Tables 5.2/5.3 — ANOVA on random input (buffer size wins)."""

from conftest import run_once

from repro.experiments.table_5_2_anova_random import run


def test_bench_table_5_2_anova_random(benchmark):
    result = run_once(benchmark, run)
    print("\nTable 5.2 (full model):")
    print(result.full_model.format_table())
    print("\nTable 5.3 (j-only model):")
    print(result.j_only_model.format_table())
    # The buffer size dominates every other factor by far.
    assert result.dominant_factor == "j"
    j_term = result.full_model.term("j")
    for term in result.full_model.terms:
        if term.label != "j":
            assert j_term.f_value > 10 * term.f_value
    # The single-factor model still explains the data (paper: R2 = 1.0;
    # at our scale per-seed noise is relatively larger, so the bound is
    # looser — see EXPERIMENTS.md).
    assert result.j_only_model.r_squared > 0.8
    assert result.j_only_model.term("j").is_significant()
