"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures; the
row data is printed (run pytest with ``-s`` to see it) and checked
against the paper's qualitative shape with assertions.

Benchmarks run the underlying experiment exactly once
(``benchmark.pedantic(rounds=1)``): the measured quantity of interest
is the *simulated* time inside the harness, not the wall-clock of the
Python loop, so repeated rounds would only add runtime.
"""


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` a single time under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
