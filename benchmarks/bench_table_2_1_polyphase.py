"""Benchmark: Table 2.1 — polyphase merge schedule (exact match)."""

from conftest import run_once

from repro.experiments.table_2_1_polyphase import PAPER_TABLE_2_1, run


def test_bench_table_2_1_polyphase(benchmark):
    steps = run_once(benchmark, run)
    observed = tuple(step.counts for step in steps)
    assert observed == PAPER_TABLE_2_1
    print("\nTable 2.1 counts per step:")
    for step in steps:
        print(f"  step {step.step}: {step.counts}")
