"""A whole query as composed streaming operators: distinct → join → topk.

The query, in SQL::

    SELECT u.name, e.page, e.latency_ms
    FROM (SELECT DISTINCT user_id, page, latency_ms FROM events) e
    JOIN users u ON u.user_id = e.user_id
    ORDER BY e.latency_ms
    LIMIT 10

Every stage is a :mod:`repro.ops` operator over its own
:class:`~repro.engine.SortEngine`, chained through plain Python
iterators: the dedup'd event stream feeds the join as it is produced,
and the join's output rows feed the top-k — which here fits its
bounded heap, so the final stage never sorts at all.  Peak memory
stays within each engine's budget no matter how large the tables get.

Run with::

    python examples/query_pipeline.py
"""

import random

from repro.core.config import GeneratorSpec
from repro.core.records import DelimitedFormat
from repro.engine import SortEngine

MEMORY = 1_000
EVENTS = 50_000
USERS = 400
PAGES = ("home", "search", "cart", "checkout", "help")


def events_table(rows, seed=3):
    """csv ``user_id,page,latency_ms`` — duplicated events on purpose
    (retries, at-least-once delivery), which DISTINCT must fold."""
    rng = random.Random(seed)
    for _ in range(rows):
        user = rng.randint(0, USERS * 2)  # some users have no account
        page = PAGES[rng.randrange(len(PAGES))]
        latency = rng.randint(1, 2_000)
        row = f"{user},{page},{latency}"
        yield row
        if rng.random() < 0.3:
            yield row  # duplicate delivery


def users_table(seed=4):
    """csv ``user_id,name`` for the registered users only."""
    rng = random.Random(seed)
    for user in range(USERS):
        yield f"{user},user{user:04d}-{rng.randint(100, 999)}"


def main():
    # Stage 1: DISTINCT over events, keyed (and sorted) by user_id.
    events_fmt = DelimitedFormat(",", key_column=0)
    distinct_engine = SortEngine(
        GeneratorSpec("2wrs", MEMORY), record_format=events_fmt
    )
    distinct_rows = distinct_engine.distinct(
        events_fmt.decode(line) for line in events_table(EVENTS)
    )

    # Stage 2: JOIN the dedup'd events with users on user_id.  The
    # left stream is stage 1's iterator — no intermediate file.
    users_fmt = DelimitedFormat(",", key_column=0)
    join_engine = SortEngine(
        GeneratorSpec("2wrs", MEMORY), record_format=events_fmt
    )
    joined_rows = join_engine.join(
        distinct_rows,
        (users_fmt.decode(line) for line in users_table()),
        right_format=users_fmt,
    )

    # Stage 3: TOP 10 by latency.  Join output rows are csv text
    # ``user_id,page,latency_ms,name``; re-key them on the latency
    # column.  k=10 <= memory, so the planner short-circuits to a
    # bounded heap — this stage does no sorting and no disk I/O.
    out_fmt = DelimitedFormat(",", key_column=2)
    topk_engine = SortEngine(
        GeneratorSpec("2wrs", MEMORY), record_format=out_fmt
    )
    fastest = topk_engine.topk(
        (out_fmt.decode(row) for row in joined_rows), k=10
    )

    print("fastest 10 joined page views (user, page, latency, name):")
    for record in fastest:
        print("  " + out_fmt.encode(record))

    print()
    for label, engine in (
        ("distinct", distinct_engine),
        ("join", join_engine),
        ("topk", topk_engine),
    ):
        report = engine.operator_report
        print(
            f"{label:<9} rows_in={report.rows_in:>6}  "
            f"rows_out={report.rows_out:>6}  groups={report.groups:>5}  "
            f"algorithm={report.algorithm}"
        )


if __name__ == "__main__":
    main()
