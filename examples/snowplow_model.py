"""Explore the snowplow differential model of RS (Section 3.6).

The paper models replacement selection as a system of differential
equations over the memory-content density m(x, t) and solves it with
Runge-Kutta.  This example renders the Figure 3.8 story as ASCII plots:
starting from a uniformly filled memory, the density at run starts
converges to the stable 2 - 2x profile and run lengths converge to
twice the memory.

It then solves the model for a *non-uniform* input distribution — the
kind of question the model was built to answer analytically.

Run with::

    python examples/snowplow_model.py
"""

from repro.model import SnowplowModel, stable_density

WIDTH = 60
HEIGHT = 12


def ascii_plot(profile, grid, title):
    print(f"\n{title}")
    top = 2.2
    rows = []
    for level in range(HEIGHT, 0, -1):
        threshold = top * level / HEIGHT
        line = "".join(
            "#" if value >= threshold else " "
            for value, _ in _resample(profile, grid)
        )
        rows.append(f"{threshold:4.1f} |{line}")
    print("\n".join(rows))
    print("     +" + "-" * WIDTH + "  x: 0 .. 1")


def _resample(profile, grid):
    step = max(1, len(grid) // WIDTH)
    return [(profile[i], grid[i]) for i in range(0, len(grid), step)][:WIDTH]


def main():
    model = SnowplowModel(cells=256)
    runs = model.solve(num_runs=4, dt=5e-4)

    print("Run lengths (x total memory):",
          [round(r.length, 3) for r in runs])
    ascii_plot(runs[0].density_at_start, model.grid,
               "density at run 1 start (uniform initial fill)")
    ascii_plot(runs[-1].density_at_start, model.grid,
               "density at run 4 start (converged)")
    reference = [stable_density(x) for x in model.grid]
    ascii_plot(reference, model.grid, "stable solution 2 - 2x (theory)")

    # The model also answers what-if questions analytically out of
    # reach: e.g. input skewed toward large keys.
    skewed = SnowplowModel(data=lambda x: 0.5 + 1.5 * x, cells=256)
    skewed_runs = skewed.solve(num_runs=4, dt=5e-4)
    print("\nSkewed input data(x) = 0.5 + 1.5x — run lengths:",
          [round(r.length, 3) for r in skewed_runs])
    print("(run lengths still converge, but to a distribution-specific value)")


if __name__ == "__main__":
    main()
