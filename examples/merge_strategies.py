"""Compare merge-phase strategies on the simulated disk (Chapters 2, 6).

Three ways to combine runs into the final sorted output:

* a k-way merge tree with a tuned fan-in (Section 6.1.1),
* the same tree with extreme fan-ins, to see both failure modes,
* polyphase merge (Section 2.1.2), the classic tape-era scheduler.

Run with::

    python examples/merge_strategies.py
"""

from repro.experiments.common import experiment_filesystem
from repro.merge import MergeTree, PolyphaseMerger, polyphase_schedule
from repro.workloads import random_input

NUM_RUNS = 64
RUN_RECORDS = 1_024
MERGE_MEMORY = 12_800


def make_run_files(fs):
    return [
        fs.create_from(f"run-{i}", sorted(random_input(RUN_RECORDS, seed=i)))
        for i in range(NUM_RUNS)
    ]


def merge_with_fan_in(fan_in):
    fs = experiment_filesystem()
    files = make_run_files(fs)
    fs.disk.reset_stats()
    tree = MergeTree(fs, fan_in=fan_in, memory_capacity=MERGE_MEMORY)
    out = tree.merge(files)
    assert len(out) == NUM_RUNS * RUN_RECORDS
    return fs.disk.elapsed, fs.disk.stats.random_accesses


def main():
    print(f"merging {NUM_RUNS} runs of {RUN_RECORDS} records "
          f"({MERGE_MEMORY}-record merge memory)\n")
    print(f"{'fan-in':>7} {'sim time':>10} {'seeks':>7}")
    for fan_in in (2, 4, 8, 10, 16):
        elapsed, seeks = merge_with_fan_in(fan_in)
        print(f"{fan_in:>7} {elapsed:>9.3f}s {seeks:>7}")
    print("\nsmall fan-in = more passes; large fan-in = tiny buffers and "
          "more seeks (Figure 6.1)")

    # Polyphase merge: run counts per step for an uneven distribution.
    initial = (20, 24, 0, 20)
    print(f"\npolyphase schedule for 4 tapes starting {initial}:")
    for step in polyphase_schedule(initial):
        print(f"  step {step.step}: {step.counts}")

    tapes = [
        [sorted(random_input(100, seed=100 + i)) for i in range(3)],
        [sorted(random_input(100, seed=200 + i)) for i in range(5)],
        [],
    ]
    merged = PolyphaseMerger(tapes).merge()
    assert merged == sorted(merged)
    print(f"\npolyphase merged {8} in-memory runs into one of {len(merged)} records")


if __name__ == "__main__":
    main()
