"""Tour of the Section 3.7 / 7.1 extensions built into the library.

The paper's related-work chapter surveys techniques that compose with
RS/2WRS; all of them are implemented here:

* batched replacement selection (miniruns, Section 3.7.1),
* reading strategies for the merge phase (Section 3.7.2),
* dynamic memory adjustment for concurrent sorts (Section 3.7.3),
* hierarchical-data sorting (Section 3.7.4),
* record compression during run generation (Section 3.7.5),
* the adaptive input heuristic (Section 7.1, future work).

Run with::

    python examples/related_work_extensions.py
"""

import random

from repro import BatchedReplacementSelection, ReplacementSelection
from repro.core import TwoWayConfig
from repro.core.two_way import TwoWayReplacementSelection
from repro.merge import ReadingSimulator
from repro.runs import CompressedReplacementSelection, SubstringCodec
from repro.sort import ConcurrentSortSimulator, HierarchicalSorter, SortJob, TreeNode
from repro.workloads import alternating_input, random_input


def batched_rs():
    data = list(random_input(20_000, seed=1))
    rs = ReplacementSelection(1_000)
    brs = BatchedReplacementSelection(1_000, minirun_length=50)
    rs_runs = len(list(rs.generate_runs(data)))
    brs_runs = len(list(brs.generate_runs(data)))
    print(f"batched RS:      heap of {brs.num_miniruns} entries instead of "
          f"1000; runs {brs_runs} vs {rs_runs} for plain RS")


def reading_strategies():
    runs = [sorted(random_input(2_000, seed=i)) for i in range(10)]
    reports = ReadingSimulator(runs, memory_records=4_096).compare()
    ranked = sorted(reports.values(), key=lambda r: r.total_time)
    order = " < ".join(r.strategy for r in ranked)
    print(f"reading:         {order} (total simulated time)")


def dynamic_memory():
    def jobs():
        out = [SortJob("big", list(random_input(40_000, seed=9)),
                       minimum_memory=64, maximum_memory=4_096)]
        out += [SortJob(f"s{i}", list(random_input(1_000, seed=i)),
                        minimum_memory=64, maximum_memory=512) for i in range(3)]
        return out

    static = ConcurrentSortSimulator(jobs(), 2_048, dynamic=False).run()
    dynamic = ConcurrentSortSimulator(jobs(), 2_048, dynamic=True).run()
    print(f"memory broker:   makespan {max(dynamic.values()):.3f}s dynamic "
          f"vs {max(static.values()):.3f}s static")


def hierarchical():
    rng = random.Random(0)
    root = TreeNode("catalog")
    for _ in range(3_000):
        item = root.add(TreeNode(rng.randrange(10**6)))
        item.add(TreeNode(rng.randrange(100)))
    sorter = HierarchicalSorter(memory_capacity=256)
    out = sorter.sort(root)
    print(f"hierarchical:    {out.descendant_count()} nodes sorted, "
          f"{sorter.external_sorts} sibling list(s) went external")


def compression():
    rng = random.Random(2)
    cities = ["Barcelona", "Tarragona", "Girona", "Lleida"]
    records = [
        (rng.randrange(10**6), f"customer-{rng.choice(cities)}-{rng.randint(1, 99)}")
        for _ in range(5_000)
    ]
    codec = SubstringCodec((p for _, p in records[:300]), max_codes=32)
    plain = len(list(CompressedReplacementSelection(4_000).generate_runs(records)))
    packed = len(list(CompressedReplacementSelection(4_000, codec).generate_runs(records)))
    ratio = codec.ratio(p for _, p in records[:500])
    print(f"compression:     payloads at {ratio:.0%} of original size -> "
          f"{packed} runs vs {plain} uncompressed")


def adaptive():
    data = list(alternating_input(40_000, sections=8, seed=1, noise=100))
    fixed = TwoWayReplacementSelection(500, TwoWayConfig(input_heuristic="mean"))
    smart = TwoWayReplacementSelection(500, TwoWayConfig(input_heuristic="adaptive"))
    print(f"adaptive:        alternating input, {smart.count_runs(data)} runs "
          f"adaptive vs {fixed.count_runs(iter(data))} with fixed Mean")


def main():
    batched_rs()
    reading_strategies()
    dynamic_memory()
    hierarchical()
    compression()
    adaptive()


if __name__ == "__main__":
    main()
