"""Database operators under a fixed memory quantum, on ``repro.ops``.

The paper motivates 2WRS with database workloads: operators receive a
stream of tuples from upstream operators (scans, joins) under a fixed
memory grant, spill runs to disk, and merge them.  This example runs
two real operators over a synthetic "orders" table through the
:class:`~repro.engine.SortEngine` and the :mod:`repro.ops` subsystem
(DESIGN.md §12), with real files and real wall-clock timings:

* **ORDER BY priority** — the paper's Chapter 7 scenario: a table
  stored by ``order_id`` scanned and sorted on an *anticorrelated*
  column yields a (noisy) descending key stream, RS's worst case and
  2WRS's headline win.
* **GROUP BY region** — the same scan folded through
  :class:`~repro.ops.GroupByAggregate`: counts, revenue sums and
  averages per region computed during the final merge pass, no group
  ever materialised.

Run with::

    python examples/database_sort_operator.py
"""

import random

from repro.core.config import GeneratorSpec
from repro.core.records import DelimitedFormat
from repro.engine import SortEngine

MEMORY_QUANTUM = 2_000  # records the DBMS grants each operator
TABLE_ROWS = 100_000
REGIONS = ("emea", "apac", "amer", "latam")


def orders_table(rows, seed=7):
    """csv rows ``order_id,priority,region,revenue``.

    The table is stored sorted by ``order_id``; ``priority`` is
    anticorrelated with it, so an ORDER BY priority scan sees a noisy
    descending key stream.
    """
    rng = random.Random(seed)
    for order_id in range(rows):
        priority = (rows - order_id) * 1_000 + rng.randint(1, 999)
        region = REGIONS[rng.randrange(len(REGIONS))]
        revenue = rng.randint(1, 500)
        yield f"{order_id},{priority},{region},{revenue}"


def order_by_priority(algorithm):
    """ORDER BY priority with one generator algorithm; print its report."""
    fmt = DelimitedFormat(",", key_column=1)
    engine = SortEngine(
        GeneratorSpec(algorithm, MEMORY_QUANTUM), record_format=fmt
    )
    rows = (fmt.decode(line) for line in orders_table(TABLE_ROWS))
    first = None
    for record in engine.sort(rows, input_records=TABLE_ROWS):
        if first is None:
            first = fmt.encode(record)
    report = engine.report
    print(
        f"{report.algorithm:<6} runs={report.runs:4d}  "
        f"run wall={report.run_phase.wall_time:6.2f}s  "
        f"merge wall={report.merge_phase.wall_time:6.2f}s  "
        f"(first row out: {first})"
    )
    return report


def group_by_region():
    """GROUP BY region: count, revenue sum and average per region."""
    fmt = DelimitedFormat(",", key_column=2)
    engine = SortEngine(
        GeneratorSpec("2wrs", MEMORY_QUANTUM), record_format=fmt
    )
    rows = (fmt.decode(line) for line in orders_table(TABLE_ROWS))
    print("region  orders  revenue  avg")
    for row in engine.aggregate(
        rows, aggregates=("count", "sum", "avg"), value_column=3
    ):
        region, count, total, avg = row.split(",")
        print(f"{region:<7} {count:>6}  {total:>7}  {float(avg):6.1f}")
    report = engine.operator_report
    print(
        f"({report.rows_in} rows in, {report.groups} groups, "
        f"peak buffered {engine.max_resident_records} records)"
    )


def main():
    print(
        f"ORDER BY priority over {TABLE_ROWS} rows, "
        f"{MEMORY_QUANTUM}-record memory quantum\n"
    )
    rs = order_by_priority("rs")
    twrs = order_by_priority("2wrs")
    ratio = rs.runs / max(twrs.runs, 1)
    print(
        f"\n2WRS emits {ratio:.1f}x fewer runs — its BottomHeap absorbs "
        "the descending stream (paper measures ~2.5x end-to-end, "
        "Figure 6.7).\n"
    )
    print(f"GROUP BY region over the same scan:\n")
    group_by_region()


if __name__ == "__main__":
    main()
