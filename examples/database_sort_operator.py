"""A database ORDER BY operator built on the full external-sort pipeline.

The paper motivates 2WRS with database workloads: a sort operator
receives a stream of tuples from upstream operators (scans, joins) under
a fixed memory quantum, spills runs to disk, and merges them.  This
example sorts a synthetic "orders" table by an *anticorrelated* column —
the paper's Chapter 7 scenario where sorting a table stored by column A
on column B yields a reverse-sorted stream, RS's worst case.

The pipeline runs over the simulated storage stack, so the printed times
are simulated seconds (DESIGN.md section 3).

Run with::

    python examples/database_sort_operator.py
"""

import random

from repro import ReplacementSelection, TwoWayReplacementSelection
from repro.experiments.common import experiment_filesystem
from repro.sort import ExternalSort

MEMORY_QUANTUM = 2_000  # records the DBMS grants this operator
TABLE_ROWS = 100_000


def orders_table(rows, seed=7):
    """Rows of (order_id, priority): priority anticorrelated with id.

    The table is stored sorted by ``order_id``; scanning it and sorting
    by ``priority`` therefore produces a (noisy) descending key stream.
    """
    rng = random.Random(seed)
    for order_id in range(rows):
        priority = (rows - order_id) * 1_000 + rng.randint(1, 999)
        yield priority  # the sort key the operator sees


def run_operator(name, generator):
    pipeline = ExternalSort(generator, fs=experiment_filesystem(), fan_in=10)
    sorted_file, report = pipeline.sort(orders_table(TABLE_ROWS))
    first = sorted_file.read_page(0)[0]
    print(
        f"{name:<6} runs={report.runs:4d}  "
        f"run phase={report.run_time:7.2f}s  "
        f"merge={report.merge_phase.time:7.2f}s  "
        f"total={report.total_time:7.2f}s  "
        f"(first key out: {first})"
    )
    return report


def main():
    print(
        f"ORDER BY priority over {TABLE_ROWS} rows, "
        f"{MEMORY_QUANTUM}-record memory quantum\n"
    )
    rs = run_operator("RS", ReplacementSelection(MEMORY_QUANTUM))
    twrs = run_operator("2WRS", TwoWayReplacementSelection(MEMORY_QUANTUM))
    speedup = rs.total_time / twrs.total_time
    print(
        f"\n2WRS speedup: {speedup:.2f}x — its BottomHeap absorbs the "
        "descending stream into a single run (paper measures ~2.5x, "
        "Figure 6.7)."
    )


if __name__ == "__main__":
    main()
