"""Quickstart: generate runs with RS and 2WRS and see why 2WRS wins.

Run generation is the first phase of external mergesort: the fewer the
runs, the cheaper the merge.  This example feeds the same three inputs
to classic replacement selection (RS) and to two-way replacement
selection (2WRS) and compares the number of runs each produces.

Run with::

    python examples/quickstart.py
"""

from repro import ReplacementSelection, TwoWayReplacementSelection
from repro.workloads import (
    mixed_balanced_input,
    random_input,
    reverse_sorted_input,
)

MEMORY = 1_000  # records of working memory
INPUT = 50_000  # records to sort


def describe(name, records):
    records = list(records)
    rs = ReplacementSelection(MEMORY)
    twrs = TwoWayReplacementSelection(MEMORY)  # paper-recommended config

    rs_runs = list(rs.generate_runs(records))
    twrs_runs = list(twrs.generate_runs(records))

    # Every run is sorted, and together they contain the whole input.
    assert all(run == sorted(run) for run in rs_runs)
    assert all(run == sorted(run) for run in twrs_runs)
    assert sum(map(len, twrs_runs)) == len(records)

    print(f"{name:<16} RS: {len(rs_runs):3d} runs "
          f"(avg {rs.stats.average_run_length:8.0f} records)   "
          f"2WRS: {len(twrs_runs):3d} runs "
          f"(avg {twrs.stats.average_run_length:8.0f} records)")


def main():
    print(f"memory = {MEMORY} records, input = {INPUT} records\n")
    describe("random", random_input(INPUT, seed=1))
    describe("reverse sorted", reverse_sorted_input(INPUT, seed=1))
    describe("mixed", mixed_balanced_input(INPUT, seed=1, noise=1000))
    print(
        "\nOn random data the two algorithms tie (both ~2x memory per run);"
        "\non reverse-sorted data 2WRS needs a single run where RS produces"
        "\none run per memory-full; on mixed data the victim buffer captures"
        "\nboth trends at once."
    )


if __name__ == "__main__":
    main()
