"""Pick a 2WRS configuration with the paper's ANOVA machinery.

Chapter 5 selects the recommended configuration by running a crossed
factorial experiment and analysing it with ANOVA and Tukey tests.  This
example replays that methodology at laptop scale on the mixed dataset:
it sweeps configurations, fits the model, and reports which factors
matter and which heuristics are statistically tied for best — the same
story as Tables 5.6-5.8.

Run with::

    python examples/tune_configuration.py
"""

from repro.stats import (
    FactorialSettings,
    anova,
    run_factorial,
    tukey_hsd,
    wls_weights_by_factor,
)

SETTINGS = FactorialSettings(
    memory_capacity=1_000,
    input_records=20_000,
    seeds=(11, 22, 33),
    buffer_setups=("both", "victim"),
    buffer_sizes=(0.02, 0.20),
    input_heuristics=("random", "alternate", "mean", "median"),
    output_heuristics=("random", "balancing"),
)

MODEL_TERMS = [("j",), ("k",), ("l",), ("k", "l")]


def main():
    print(
        f"sweeping {SETTINGS.cells} configurations x "
        f"{len(SETTINGS.seeds)} seeds on the mixed dataset..."
    )
    design = run_factorial("mixed_balanced", SETTINGS)

    weights = wls_weights_by_factor(design, "j")
    model = anova(design, MODEL_TERMS, weights=weights)
    print("\nWLS ANOVA (response: number of runs generated):")
    print(model.format_table())

    input_tukey = tukey_hsd(design, model, ["k"])
    output_tukey = tukey_hsd(design, model, ["l"])
    print("\nmean runs by input heuristic: ", {
        k: round(v, 1) for k, v in sorted(design.level_means("k").items())
    })
    print("statistically-best input heuristics: ", input_tukey.best_levels())
    print("statistically-best output heuristics:", output_tukey.best_levels())
    print(
        "\nThe paper's choice (Mean input, Random output) should be inside "
        "both best sets; pick it — Mean costs O(1) per record while Median "
        "costs O(log n) (Section 5.3)."
    )


if __name__ == "__main__":
    main()
