"""Command-line interface: sort files and inspect run generation.

Examples::

    # external-sort newline-separated integers
    python -m repro.cli sort --algorithm 2wrs --memory 1000 in.txt -o out.txt

    # same sort, partitioned across 4 worker processes sharing the
    # 1000-record memory budget through the memory broker
    python -m repro.cli sort --memory 1000 --workers 4 in.txt -o out.txt

    # typed records: floats, opaque strings, or delimited rows sorted
    # by one column (0-based; csv and tsv fix the separator)
    python -m repro.cli sort --format float measurements.txt
    python -m repro.cli sort --format str words.txt
    python -m repro.cli sort --format csv --key 2 events.csv -o by_time.csv

    # choose how the final merge reads its run files (default: the
    # planner picks; see DESIGN.md §9)
    python -m repro.cli sort --reading double_buffering --report in.txt

    # crash-safe sorting: checksummed spill blocks, journaled progress
    # under out.txt.sortwork, restartable after any failure with the
    # same command (DESIGN.md §11)
    python -m repro.cli sort --resume --checksum in.txt -o out.txt

    # relational operators on the sort engine (DESIGN.md §12):
    # dedup, group-by aggregation, sort-merge equi-join, top-k
    python -m repro.cli distinct --format str words.txt
    python -m repro.cli agg --format csv --key 0 --value 1 \
        --agg count,sum,avg events.csv
    python -m repro.cli join --format csv --key 0 orders.csv users.csv
    python -m repro.cli topk -k 100 --memory 10000 in.txt

    # merge already-sorted files without re-sorting (like sort -m)
    python -m repro.cli merge run1.txt run2.txt -o merged.txt

    # LSM key-value store built on the sort engine (DESIGN.md §17):
    # WAL-durable puts/deletes, SSTable flushes, merge-compaction
    python -m repro.cli store put db user:1 alice
    python -m repro.cli store get db user:1
    python -m repro.cli store ingest db oplog.txt
    python -m repro.cli store scan db -o items.txt

    # compare run generation across algorithms without sorting
    python -m repro.cli runs --memory 1000 in.txt

    # regenerate a paper experiment
    python -m repro.cli experiment table_5_13_run_lengths

    # generate one of the paper's datasets
    python -m repro.cli dataset mixed_balanced --records 100000 > in.txt

All sorting routes through :class:`repro.engine.SortEngine`
(DESIGN.md §9), which plans in-memory vs spill vs partitioned-parallel
execution and moves records in blocks through the configured
``--format``; the operator subcommands stream over the engine
(DESIGN.md §12) and share its memory bounds, checksums and ``--resume``
work directories.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
from contextlib import nullcontext
from typing import ContextManager, List, Optional, TextIO

from repro.core.config import ALGORITHMS, GeneratorSpec, RECOMMENDED, TwoWayConfig
from repro.core.heuristics import INPUT_HEURISTICS, OUTPUT_HEURISTICS
from repro.core.records import FORMAT_NAMES, STR, resolve_format
from repro.engine.block_io import (
    BlockWriter,
    DEFAULT_BLOCK_RECORDS,
    iter_records,
)
from repro.engine.errors import SortError
from repro.engine.merge_reading import READING_STRATEGIES
from repro.engine.resilience import JOURNAL_NAME, atomic_output
from repro.engine.planner import AUTO_READING, SortEngine, spec_for_format
from repro.engine.spill_codec import AUTO_CODEC, SPILL_CODECS
from repro.experiments import EXPERIMENTS
from repro.merge.merge_tree import DEFAULT_FAN_IN
from repro.ops import (
    AGGREGATES,
    DISTINCT_MODES,
    Distinct,
    GroupByAggregate,
    SortMergeJoin,
    TopK,
)
from repro.sort.parallel import PARTITION_STRATEGIES
from repro.sort.spill import DEFAULT_BUFFER_RECORDS
from repro.store import Store
from repro.store.oplog import (
    escape_bytes,
    format_item,
    parse_op_line,
    unescape_bytes,
)
from repro.store.store import DEFAULT_MEMTABLE_RECORDS
from repro.workloads.generators import DISTRIBUTIONS, make_input


def _make_spec(args: argparse.Namespace) -> GeneratorSpec:
    two_way = None
    if args.algorithm == "2wrs":
        two_way = TwoWayConfig(
            buffer_setup=args.buffer_setup,
            buffer_fraction=args.buffer_fraction,
            input_heuristic=args.input_heuristic,
            output_heuristic=args.output_heuristic,
            seed=args.seed,
        )
    return GeneratorSpec(
        algorithm=args.algorithm, memory=args.memory, two_way=two_way
    )


def _record_format(args: argparse.Namespace, key=None):
    key = key if key is not None else args.key
    if key is not None and args.format not in ("csv", "tsv"):
        # Silently ignoring --key would sort by the wrong thing.
        raise SystemExit(
            f"repro: error: --key only applies to the delimited formats "
            f"(csv, tsv), not --format {args.format}"
        )
    return resolve_format(args.format, key=key if key is not None else 0)


def _open_input(path: Optional[str]) -> ContextManager[TextIO]:
    """Context manager over the input; never closes handles it did not open.

    stdin is wrapped in :func:`~contextlib.nullcontext` so ``with``
    leaves it open — the CLI must only close files it opened itself.
    """
    if path is None or path == "-":
        return nullcontext(sys.stdin)
    return open(path, "r", encoding="utf-8")


def _open_output(path: Optional[str]) -> ContextManager[TextIO]:
    """stdout passthrough, or an atomic publish of ``path``.

    Every file-bound subcommand (sort, merge, distinct, agg, join,
    topk) publishes through :func:`~repro.engine.resilience
    .atomic_output`: the output is written as ``path + ".tmp"`` and
    renamed into place only after an fsync, so a job killed mid-final-
    merge never leaves a truncated file at the target path.
    """
    if path is None:
        return nullcontext(sys.stdout)
    return atomic_output(path)


def _durable_work_dir(
    args: argparse.Namespace,
    inputs: Optional[tuple] = None,
    suffix: str = ".sortwork",
) -> Optional[str]:
    """The stable work directory of a ``--resume`` run, or None.

    Derived from the output path (``out.txt`` -> ``out.txt.sortwork``)
    unless ``--work-dir`` names one explicitly.  Resuming needs real
    input files (the journal skips *re-sorting*, not re-reading) and a
    stable place for the journal, so stdin/stdout pipes are rejected
    with a clear message instead of a confusing failure later.  The
    two-input join passes its own ``inputs`` and derives
    ``OUTPUT.joinwork``.
    """
    if args.work_dir is None and not args.resume:
        return None
    if inputs is None:
        inputs = (args.input,)
    if args.resume and any(path in (None, "-") for path in inputs):
        raise SystemExit(
            "repro: error: --resume requires real input files (the "
            "resumed attempt re-reads them); stdin cannot be replayed"
        )
    if args.work_dir is not None:
        return args.work_dir
    if args.output is None:
        raise SystemExit(
            "repro: error: --resume needs -o/--output (the work "
            "directory is derived from it) or an explicit --work-dir"
        )
    return args.output + suffix


def _input_fingerprint(path: Optional[str]) -> Optional[str]:
    """Identity of the input file, tying a journal to one input."""
    if path in (None, "-"):
        return None
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return f"{os.path.abspath(path)}:{stat.st_size}:{stat.st_mtime_ns}"


def _engine_for(
    args: argparse.Namespace,
    record_format,
    work_dir: Optional[str] = None,
    fingerprint: Optional[str] = None,
) -> SortEngine:
    """One configured engine from a sort-or-operator namespace.

    ``merge`` namespaces carry no parallel knobs (the command cannot
    honour them), hence the defaults.
    """
    return SortEngine(
        _make_spec(args),
        record_format=record_format,
        binary_spill=getattr(args, "binary_spill", False),
        workers=getattr(args, "workers", 1),
        partition=getattr(args, "partition", "hash"),
        fan_in=args.fan_in,
        buffer_records=args.merge_buffer,
        block_records=args.block_records,
        reading=args.reading,
        checksum=args.checksum,
        spill_codec=getattr(args, "spill_codec", "none"),
        work_dir=work_dir,
        input_fingerprint=fingerprint,
    )


def _sort_failure(command: str, exc: Exception, *work_dirs) -> int:
    """Report a controlled failure (corrupt block, injected fault, dead
    worker, disk error) cleanly; in durable mode the journal and
    surviving runs are kept for ``--resume``.  The hint only prints for
    work directories where a sort journal actually exists — a failure
    *before* durable work started (unreadable input, a foreign
    ``--work-dir`` the journal refused to wipe) has nothing to resume.
    """
    print(f"repro: {command} failed: {exc}", file=sys.stderr)
    for work_dir in work_dirs:
        if work_dir is not None and os.path.isfile(
            os.path.join(work_dir, JOURNAL_NAME)
        ):
            print(
                f"repro: completed work kept in {work_dir!r}; rerun "
                f"with --resume to continue from it",
                file=sys.stderr,
            )
    return 1


def cmd_sort(args: argparse.Namespace) -> int:
    work_dir = _durable_work_dir(args)
    engine = _engine_for(
        args,
        _record_format(args),
        work_dir,
        _input_fingerprint(args.input) if work_dir else None,
    )
    try:
        with _open_input(args.input) as handle, _open_output(args.output) as out:
            # End-to-end streaming: records decode and encode in blocks,
            # runs spill to temp files as they are generated, and the
            # merge reads them back lazily, so no list of all runs (or
            # of the merged output) is ever materialised.
            engine.sort_stream(handle, out, resume=args.resume)
    except (SortError, OSError) as exc:
        return _sort_failure("sort", exc, work_dir)
    _print_sort_report(engine, args.report)
    return 0


def _print_sort_report(engine: SortEngine, verbose: bool) -> None:
    """Unified ``--report`` rendering for every execution mode."""
    report = engine.report
    if not verbose:
        print(
            f"{report.algorithm}: {report.records} records in "
            f"{report.runs} runs "
            f"(avg {report.average_run_length:.0f} records)",
            file=sys.stderr,
        )
        return
    # summary() opens with the same records/runs header line, so the
    # plain stats line would print twice with --report.
    print(report.summary(), file=sys.stderr)
    plan = engine.plan
    backend = engine.backend
    if plan.mode == "in_memory":
        print(f"  plan   in-memory: {plan.reason}", file=sys.stderr)
        return
    if plan.mode == "parallel":
        # Combined report first (cpu_ops summed across shards, wall
        # times measured in the parent), then one line per worker.
        print(
            f"  partition strategy={backend.partition}  "
            f"wall={backend.partition_wall:.3f}s  "
            f"shards={backend.shard_records}",
            file=sys.stderr,
        )
        for i, worker in enumerate(backend.worker_reports):
            print(
                f"  worker {i}: {worker.records} records in "
                f"{worker.runs} runs  "
                f"memory={backend.granted_memories[i]}  "
                f"run_wall={worker.run_phase.wall_time:.3f}s  "
                f"merge_wall={worker.merge_phase.wall_time:.3f}s",
                file=sys.stderr,
            )
    print(
        f"  spill  passes={engine.merge_passes}  "
        f"peak_buffered={engine.max_resident_records} records  "
        f"readers<={engine.max_open_readers}",
        file=sys.stderr,
    )
    if engine.work_dir is not None:
        print(
            f"  resume runs_reused={engine.runs_reused}  "
            f"merges_reused={engine.merges_reused}  "
            f"shards_reused={engine.shards_reused}",
            file=sys.stderr,
        )
    stats = engine.reading_stats
    if stats is not None:
        print(
            f"  read   strategy={stats.strategy}  "
            f"blocks={stats.block_reads}  "
            f"prefetched={stats.prefetches}  hits={stats.prefetch_hits}",
            file=sys.stderr,
        )


def _engine_detail_lines(engine: Optional[SortEngine], label: str) -> None:
    """The spill/read instrumentation lines of one engine's last sort.

    In-memory sorts have no spill structure to show; ``merge_files``
    sets no plan at all but always merges, so a missing plan prints.
    """
    if engine is None:
        return
    if engine.plan is not None and engine.plan.mode == "in_memory":
        return
    print(
        f"  {label:<6} passes={engine.merge_passes}  "
        f"peak_buffered={engine.max_resident_records} records  "
        f"readers<={engine.max_open_readers}",
        file=sys.stderr,
    )
    stats = engine.reading_stats
    if stats is not None:
        print(
            f"  read   strategy={stats.strategy}  "
            f"blocks={stats.block_reads}  "
            f"prefetched={stats.prefetches}  hits={stats.prefetch_hits}",
            file=sys.stderr,
        )


def _print_operator_report(op, engines, verbose: bool) -> None:
    """Unified ``--report`` rendering for the operator subcommands.

    ``engines`` lists ``(label, engine)`` pairs whose spill/read
    instrumentation should print in verbose mode (empty for the
    top-k heap path, two entries for the join).
    """
    report = op.report
    if not verbose:
        print(
            f"{report.algorithm}: {report.rows_in} rows in, "
            f"{report.rows_out} rows out ({report.groups} groups)",
            file=sys.stderr,
        )
        return
    print(report.summary(), file=sys.stderr)
    plan = op.plan
    print(f"  plan   {plan.mode}: {plan.reason}", file=sys.stderr)
    for label, engine in engines:
        _engine_detail_lines(engine, label)


def _run_unary_operator(
    args: argparse.Namespace,
    command: str,
    make_op,
    output_format=None,
) -> int:
    """Shared body of the single-input operator subcommands.

    ``make_op(engine)`` builds the operator (constructor ValueErrors
    become usage errors); ``output_format`` overrides the writer's
    record format for operators whose output rows are plain text.
    """
    record_format = _record_format(args)
    work_dir = _durable_work_dir(args)
    engine = _engine_for(
        args, record_format, work_dir,
        _input_fingerprint(args.input) if work_dir else None,
    )
    try:
        op = make_op(engine)
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}")
    try:
        with _open_input(args.input) as handle, _open_output(args.output) as out:
            # The operator consumes and emits records of the *engine's*
            # format (the binary wrapper under --binary-spill); both CLI
            # boundaries stay plain text whatever the working format.
            records = iter_records(
                handle, engine.record_format, args.block_records,
                skip_blank=True, binary=False,
            )
            writer = BlockWriter(
                out, output_format or engine.record_format,
                args.block_records, binary=False,
            )
            writer.write_all(op.run(records, resume=args.resume))
            writer.flush()
    except ValueError as exc:
        # Data-level failure: non-numeric value under sum/avg, ragged
        # rows, undecodable records.
        print(f"repro: {command} failed: {exc}", file=sys.stderr)
        return 1
    except (SortError, OSError) as exc:
        return _sort_failure(command, exc, work_dir)
    engines = [] if op.plan.mode == "heap" else [("spill", engine)]
    _print_operator_report(op, engines, args.report)
    return 0


def cmd_distinct(args: argparse.Namespace) -> int:
    return _run_unary_operator(
        args, "distinct", lambda engine: Distinct(engine, by=args.by)
    )


def cmd_agg(args: argparse.Namespace) -> int:
    return _run_unary_operator(
        args, "agg",
        lambda engine: GroupByAggregate(
            engine, aggregates=args.agg, value_column=args.value
        ),
        # Output rows are delimited text, whatever the input format.
        output_format=STR,
    )


def cmd_topk(args: argparse.Namespace) -> int:
    return _run_unary_operator(
        args, "topk", lambda engine: TopK(engine, args.k)
    )


def _join_work_dirs(args: argparse.Namespace):
    """Per-side durable work directories for a ``--resume`` join."""
    base = _durable_work_dir(
        args, inputs=(args.left, args.right), suffix=".joinwork"
    )
    if base is None:
        return None, None
    return os.path.join(base, "left"), os.path.join(base, "right")


def cmd_join(args: argparse.Namespace) -> int:
    if args.left == "-" and args.right == "-":
        raise SystemExit(
            "repro: error: at most one join input may be stdin ('-')"
        )
    left_format = _record_format(args)
    right_format = _record_format(
        args, key=args.right_key if args.right_key is not None else args.key
    )
    left_work, right_work = _join_work_dirs(args)
    left_engine = _engine_for(
        args, left_format, left_work,
        _input_fingerprint(args.left) if left_work else None,
    )
    right_engine = _engine_for(
        args, right_format, right_work,
        _input_fingerprint(args.right) if right_work else None,
    )
    try:
        op = SortMergeJoin(
            left_engine, right_engine, buffer_limit=args.buffer_limit
        )
    except ValueError as exc:
        raise SystemExit(f"repro: error: {exc}")
    try:
        with _open_input(args.left) as left_handle, \
                _open_input(args.right) as right_handle, \
                _open_output(args.output) as out:
            left_records = iter_records(
                left_handle, left_engine.record_format, args.block_records,
                skip_blank=True, binary=False,
            )
            right_records = iter_records(
                right_handle, right_engine.record_format, args.block_records,
                skip_blank=True, binary=False,
            )
            writer = BlockWriter(out, STR, args.block_records, binary=False)
            writer.write_all(
                op.run(left_records, right_records, resume=args.resume)
            )
            writer.flush()
    except ValueError as exc:
        # Data-level failure: undecodable rows, missing key columns.
        print(f"repro: join failed: {exc}", file=sys.stderr)
        return 1
    except (SortError, OSError) as exc:
        return _sort_failure("join", exc, left_work, right_work)
    # A fully successful durable join leaves two empty side dirs under
    # the base; tidy the base away (rmdir refuses non-empty).
    if left_work is not None:
        base = os.path.dirname(left_work)
        try:
            os.rmdir(base)
        except OSError:
            pass
    _print_operator_report(
        op, [("left", left_engine), ("right", right_engine)], args.report
    )
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    """Merge already-sorted files without re-sorting (like ``sort -m``)."""
    record_format = _record_format(args)
    engine = _engine_for(args, record_format)
    try:
        with _open_output(args.output) as out:
            writer = BlockWriter(
                out, engine.record_format, args.block_records, binary=False
            )
            if args.inputs:
                writer.write_all(engine.merge_files(args.inputs))
            writer.flush()
    except ValueError as exc:
        # Data-level failure: undecodable records in an input file.
        print(f"repro: merge failed: {exc}", file=sys.stderr)
        return 1
    except (SortError, OSError) as exc:
        return _sort_failure("merge", exc)
    report = engine.report
    if report is None:
        # Zero input files: nothing merged, empty output, exit 0 —
        # the same contract as `sort` over empty input.
        print("MERGE[0]: 0 records from 0 files", file=sys.stderr)
        return 0
    if not args.report:
        print(
            f"{report.algorithm}: {report.records} records from "
            f"{len(args.inputs)} files",
            file=sys.stderr,
        )
        return 0
    print(report.summary(), file=sys.stderr)
    _engine_detail_lines(engine, "spill")
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    record_format = _record_format(args)
    with _open_input(args.input) as handle:
        data = list(
            iter_records(
                handle, record_format, DEFAULT_BLOCK_RECORDS, skip_blank=True
            )
        )
    header = f"{'algorithm':<10} {'runs':>6} {'avg length':>12} {'cpu ops':>12}"
    if args.report:
        header += f" {'run time':>10} {'total time':>11}"
    print(header)
    for name in ALGORITHMS:
        namespace = argparse.Namespace(**vars(args))
        namespace.algorithm = name
        spec = spec_for_format(_make_spec(namespace), record_format)
        if args.report:
            # Full simulated pipeline (the engine's fourth backend), so
            # the paper's two headline timings (run phase, run+merge)
            # appear per algorithm.
            report = SortEngine.simulate(spec, data, fan_in=args.fan_in)
            print(
                f"{report.algorithm:<10} {report.runs:>6} "
                f"{report.average_run_length:>12.1f} "
                f"{report.run_phase.cpu_ops:>12}"
                f" {report.run_time:>9.3f}s {report.total_time:>10.3f}s"
            )
        else:
            generator = spec.build()
            for _ in generator.generate_runs(iter(data)):
                pass
            stats = generator.stats
            print(
                f"{generator.name:<10} {stats.runs_out:>6} "
                f"{stats.average_run_length:>12.1f} {stats.cpu_ops:>12}"
            )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.name not in EXPERIMENTS:
        known = "\n  ".join(EXPERIMENTS)
        print(f"unknown experiment {args.name!r}; known:\n  {known}", file=sys.stderr)
        return 2
    module = importlib.import_module(f"repro.experiments.{args.name}")
    module.main()
    return 0


def cmd_dataset(args: argparse.Namespace) -> int:
    records = make_input(args.name, args.records, seed=args.seed)
    for value in records:
        sys.stdout.write(f"{value}\n")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    # Deferred import: the linter (and its dynamic R005 imports) should
    # not load for ordinary sort commands.
    from repro.lint import main as lint_main

    # Always pass the (possibly empty) list: None would make the lint
    # main() fall back to sys.argv, which here still holds 'lint'.
    return lint_main(args.paths)


def _service_client(args: argparse.Namespace):
    """A client for ``--server`` or the server's ``--endpoint-file``."""
    from repro.service.client import ServiceClient, read_endpoint

    if args.server:
        return ServiceClient(args.server)
    return ServiceClient(read_endpoint(args.endpoint_file))


def _print_json(payload) -> None:
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def cmd_serve(args: argparse.Namespace) -> int:
    # Deferred import: asyncio/service machinery only loads for the
    # service subcommands, not for plain sorts.
    import asyncio

    from repro.service.server import SortService

    quotas = {}
    for item in args.tenant_quota or ():
        tenant, sep, limit = item.partition("=")
        if not sep or not tenant or not limit.isdigit():
            raise SystemExit(
                f"--tenant-quota expects TENANT=RECORDS, got {item!r}"
            )
        quotas[tenant] = int(limit)
    service = SortService(
        args.spool,
        host=args.host,
        port=args.port,
        total_memory=args.memory,
        job_workers=args.job_workers,
        tenant_quotas=quotas or None,
        default_quota=args.default_quota,
    )
    try:
        asyncio.run(service.run(endpoint_file=args.endpoint_file))
    except KeyboardInterrupt:
        # A Ctrl-C'd server is the crash-recovery story working as
        # designed: jobs re-attach by id on the next serve.
        return 130
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    needs_input = args.op not in ("store_scan", "store_compact")
    if not args.id and not args.input and needs_input:
        sys.stderr.write("submit needs an input file (or --id)\n")
        return 2
    if not args.id and args.op.startswith("store_") and not args.store:
        sys.stderr.write(f"submit --op {args.op} needs --store DIR\n")
        return 2
    client = _service_client(args)
    try:
        if args.id:
            payload = client.submit_id(args.id)
        else:
            # Abspath here, client-side: the server may well run in a
            # different working directory than the submitting shell.
            job = {
                "op": args.op,
                "tenant": args.tenant,
                "memory": args.memory,
                "algorithm": args.algorithm,
                "fan_in": args.fan_in,
                "format": args.format,
                "binary_spill": args.binary_spill,
                "spill_codec": args.spill_codec,
                "checksum": args.checksum,
            }
            if args.input:
                job["input"] = os.path.abspath(args.input)
            if args.store:
                job["store"] = os.path.abspath(args.store)
            if args.output:
                job["output"] = os.path.abspath(args.output)
            if args.key is not None:
                job["key"] = args.key
            if args.right_key is not None:
                job["right_key"] = args.right_key
            if args.right_input:
                job["right_input"] = os.path.abspath(args.right_input)
            if args.by != "record":
                job["by"] = args.by
            if args.agg != ("count",):
                job["aggregates"] = list(args.agg)
            if args.value is not None:
                job["value"] = args.value
            if args.k:
                job["k"] = args.k
            payload = client.submit(job)
        if args.wait:
            payload = client.wait(payload["id"])
    except (ServiceError, TimeoutError, ConnectionError) as exc:
        sys.stderr.write(f"submit failed: {exc}\n")
        return 1
    _print_json(payload)
    return 0 if payload.get("status") != "failed" else 1


def cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    client = _service_client(args)
    try:
        if args.id:
            _print_json(client.status(args.id))
        else:
            _print_json(client.jobs())
    except (ServiceError, ConnectionError) as exc:
        sys.stderr.write(f"status failed: {exc}\n")
        return 1
    return 0


def cmd_result(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    client = _service_client(args)
    try:
        # _open_output publishes the local copy atomically too: a
        # killed fetch must not leave a truncated file that looks done.
        with _open_output(args.output) as sink:
            client.result(args.id, sink)
    except (ServiceError, ConnectionError) as exc:
        sys.stderr.write(f"result failed: {exc}\n")
        return 1
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    client = _service_client(args)
    try:
        _print_json(client.cancel(args.id))
    except (ServiceError, ConnectionError) as exc:
        sys.stderr.write(f"cancel failed: {exc}\n")
        return 1
    return 0


def _store_open(args: argparse.Namespace) -> Store:
    return Store(
        args.dir,
        memory=args.memory,
        block_records=args.block_records,
        codec=args.codec,
        fan_in=args.fan_in,
        sync=not args.no_sync,
        auto_compact=not args.no_auto_compact,
    )


def _store_put(store: Store, args: argparse.Namespace) -> int:
    store.put(unescape_bytes(args.key), unescape_bytes(args.value))
    return 0


def _store_get(store: Store, args: argparse.Namespace) -> int:
    key = unescape_bytes(args.key)
    value = store.get(key)
    if value is None:
        # Distinct from failure (1): the store is healthy, the key is
        # simply absent or deleted — the grep-style "no match" exit.
        print(
            f"repro: store get: key {args.key!r} not found",
            file=sys.stderr,
        )
        return 2
    sys.stdout.write(escape_bytes(value) + "\n")
    return 0


def _store_delete(store: Store, args: argparse.Namespace) -> int:
    store.delete(unescape_bytes(args.key))
    return 0


def _store_scan(store: Store, args: argparse.Namespace) -> int:
    start = unescape_bytes(args.start) if args.start is not None else None
    end = unescape_bytes(args.end) if args.end is not None else None
    count = 0
    with _open_output(args.output) as out:
        for key, value in store.scan(start, end):
            out.write(format_item(key, value) + "\n")
            count += 1
    print(f"store scan: {count} item(s)", file=sys.stderr)
    return 0


def _store_ingest(store: Store, args: argparse.Namespace) -> int:
    applied = 0
    with _open_input(args.input) as handle:
        for lineno, line in enumerate(handle, start=1):
            parsed = parse_op_line(line, lineno)
            if parsed is None:
                continue
            op, key, value = parsed
            if op == "put":
                store.put(key, value)
            else:
                store.delete(key)
            applied += 1
    print(f"store ingest: {applied} operation(s) applied", file=sys.stderr)
    return 0


def _store_flush(store: Store, args: argparse.Namespace) -> int:
    name = store.flush()
    if name is None:
        print("store flush: memtable empty, nothing to write",
              file=sys.stderr)
    else:
        print(f"store flush: wrote {name}", file=sys.stderr)
    return 0


def _store_compact(store: Store, args: argparse.Namespace) -> int:
    name = store.compact()
    if name is None:
        print("store compact: store is empty", file=sys.stderr)
    else:
        print(f"store compact: merged into {name}", file=sys.stderr)
    return 0


def _store_verify(store: Store, args: argparse.Namespace) -> int:
    _print_json(store.verify())
    return 0


_STORE_ACTIONS = {
    "put": _store_put,
    "get": _store_get,
    "delete": _store_delete,
    "scan": _store_scan,
    "ingest": _store_ingest,
    "flush": _store_flush,
    "compact": _store_compact,
    "verify": _store_verify,
}


def cmd_store(args: argparse.Namespace) -> int:
    command = f"store {args.store_cmd}"
    try:
        with _store_open(args) as store:
            return _STORE_ACTIONS[args.store_cmd](store, args)
    except ValueError as exc:
        # Data-level failure: malformed escape in a key/value token or
        # a bad oplog line.
        print(f"repro: {command} failed: {exc}", file=sys.stderr)
        return 1
    except (SortError, OSError) as exc:
        # StoreError/ManifestError are SortErrors; nothing here is
        # resumable from a sort journal, so no work-dir hint.
        return _sort_failure(command, exc)


def _fan_in(text: str) -> int:
    value = int(text)
    if value < 2:
        raise argparse.ArgumentTypeError(f"fan-in must be >= 2, got {value}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a value >= 1, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a value >= 0, got {value}")
    return value


def _key_columns(text: str):
    """``--key`` value: one column (``2``) or several (``0,2``)."""
    try:
        columns = tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a column number or comma-separated column "
            f"numbers (e.g. '2' or '0,2'), got {text!r}"
        ) from None
    if any(column < 0 for column in columns):
        raise argparse.ArgumentTypeError(
            f"key columns must be >= 0, got {text!r}"
        )
    return columns[0] if len(columns) == 1 else columns


def _aggregate_list(text: str):
    """``--agg`` value: comma-separated aggregate names."""
    names = tuple(part.strip() for part in text.split(",") if part.strip())
    unknown = [name for name in names if name not in AGGREGATES]
    if not names or unknown:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated aggregates from "
            f"{', '.join(AGGREGATES)}, got {text!r}"
        )
    return names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Two-way replacement selection: external sorting toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_generator_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--memory", type=int, default=10_000,
                       help="working memory in records (default 10000)")
        p.add_argument("--algorithm", choices=ALGORITHMS, default="2wrs")
        p.add_argument("--buffer-setup", choices=("input", "both", "victim"),
                       default=RECOMMENDED.buffer_setup)
        p.add_argument("--buffer-fraction", type=float,
                       default=RECOMMENDED.buffer_fraction)
        p.add_argument("--input-heuristic", choices=sorted(INPUT_HEURISTICS),
                       default=RECOMMENDED.input_heuristic)
        p.add_argument("--output-heuristic", choices=sorted(OUTPUT_HEURISTICS),
                       default=RECOMMENDED.output_heuristic)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--fan-in", type=_fan_in, default=DEFAULT_FAN_IN,
                       help=f"merge fan-in (default {DEFAULT_FAN_IN})")
        p.add_argument("--format", choices=FORMAT_NAMES, default="int",
                       help="record type: one int/float/str per line, or "
                            "csv/tsv rows sorted by --key (default int)")
        p.add_argument("--key", type=_key_columns, default=None,
                       help="0-based key column (or comma-separated "
                            "columns, compared left to right), only valid "
                            "with --format csv/tsv (default 0); e.g. "
                            "--format csv --key 2 sorts rows by their "
                            "third field")
        p.add_argument("--report", action="store_true",
                       help="print phase timings (SortReport) to stderr")

    def add_engine_options(
        p: argparse.ArgumentParser,
        durable: bool = True,
        parallel: bool = True,
    ) -> None:
        """Execution knobs shared by sort and the operator subcommands.

        ``merge`` opts out of the knobs it cannot honour: it never
        partitions (``parallel=False``) and never journals
        (``durable=False``) — accepting those flags and silently
        ignoring them would mislead.
        """
        p.add_argument("--merge-buffer", type=_positive_int,
                       default=DEFAULT_BUFFER_RECORDS,
                       help="records buffered per run reader during the "
                            f"merge (default {DEFAULT_BUFFER_RECORDS})")
        p.add_argument("--block-records", type=_positive_int,
                       default=DEFAULT_BLOCK_RECORDS,
                       help="records encoded/decoded per block on the "
                            "input and output streams "
                            f"(default {DEFAULT_BLOCK_RECORDS})")
        p.add_argument("--reading",
                       choices=(AUTO_READING,) + READING_STRATEGIES,
                       default=AUTO_READING,
                       help="final-merge reading strategy over the run "
                            "files; 'auto' lets the planner choose "
                            "(default auto)")
        if parallel:
            p.add_argument("--workers", type=_positive_int, default=1,
                           help="partition the input and sort the shards "
                                "in this many worker processes; they "
                                "share the --memory budget through the "
                                "memory broker (default 1 = serial)")
            p.add_argument("--partition", choices=PARTITION_STRATEGIES,
                           default="hash",
                           help="how records map to workers: 'hash' "
                                "balances any distribution, 'range' gives "
                                "each worker a disjoint key band from "
                                "sampled cut points (default hash)")
        p.add_argument("--binary-spill", action="store_true",
                       help="spill runs/shards as length-prefixed binary "
                            "blocks with order-preserving key bytes, so "
                            "the merge heap compares raw bytes instead of "
                            "decoded records; output is byte-identical to "
                            "the text path (DESIGN.md §14)")
        p.add_argument("--spill-codec",
                       choices=(AUTO_CODEC,) + SPILL_CODECS,
                       default="none",
                       help="per-block compression of spill/shard files "
                            "(DESIGN.md §15): 'zlib'/'lzma' are byte "
                            "compressors, 'front' delta-codes shared "
                            "record prefixes (near-free on sorted runs, "
                            "strongest with --binary-spill keys), "
                            "'front+zlib' stacks both; 'auto' lets the "
                            "planner trade CPU for I/O from the input "
                            "size and memory budget (default none)")
        p.add_argument("--checksum", action="store_true",
                       help="write per-block CRC-32 headers into every "
                            "spill/shard file and verify them during the "
                            "merge; corruption fails loudly with file + "
                            "offset (DESIGN.md §11)")
        if not durable:
            return
        p.add_argument("--resume", action="store_true",
                       help="run durably under a stable work directory "
                            "(journaled runs, shard completion markers) "
                            "and resume any compatible previous attempt "
                            "found there; output is byte-identical to an "
                            "uninterrupted run")
        p.add_argument("--work-dir", default=None,
                       help="stable directory for the durable sort "
                            "journal and spill files (default: derived "
                            "from the output path as OUTPUT.sortwork)")

    def add_io_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("input", nargs="?", help="input file ('-' = stdin)")
        p.add_argument("-o", "--output",
                       help="output file (default stdout)")

    p_sort = sub.add_parser("sort", help="externally sort typed records")
    add_generator_options(p_sort)
    add_engine_options(p_sort)
    add_io_arguments(p_sort)
    p_sort.set_defaults(func=cmd_sort)

    p_distinct = sub.add_parser(
        "distinct",
        help="drop duplicate records via an external sort (like sort -u)",
    )
    add_generator_options(p_distinct)
    add_engine_options(p_distinct)
    p_distinct.add_argument(
        "--by", choices=DISTINCT_MODES, default="record",
        help="what counts as a duplicate: the whole record, or just its "
             "sort key (first record per key wins; default record)")
    add_io_arguments(p_distinct)
    p_distinct.set_defaults(func=cmd_distinct)

    p_agg = sub.add_parser(
        "agg",
        help="group records by key and aggregate a value column",
    )
    add_generator_options(p_agg)
    add_engine_options(p_agg)
    p_agg.add_argument(
        "--agg", type=_aggregate_list, default=("count",),
        help="comma-separated aggregates per key group: "
             f"{', '.join(AGGREGATES)} (default count)")
    p_agg.add_argument(
        "--value", type=_non_negative_int, default=None,
        help="0-based column holding the aggregated value (required for "
             "sum/min/max/avg over delimited rows)")
    add_io_arguments(p_agg)
    p_agg.set_defaults(func=cmd_agg)

    p_join = sub.add_parser(
        "join",
        help="sort-merge equi-join of two inputs on their key columns",
    )
    add_generator_options(p_join)
    add_engine_options(p_join)
    p_join.add_argument(
        "--right-key", type=_key_columns, default=None,
        help="0-based key column(s) of the RIGHT input when they differ "
             "from --key")
    p_join.add_argument(
        "--buffer-limit", type=_positive_int, default=None,
        help="right-side records buffered per key group before the skew "
             "fallback spills to disk (default: the --memory budget)")
    p_join.add_argument("left", help="left input file ('-' = stdin)")
    p_join.add_argument("right", help="right input file ('-' = stdin)")
    p_join.add_argument("-o", "--output",
                        help="output file (default stdout)")
    p_join.set_defaults(func=cmd_join)

    p_topk = sub.add_parser(
        "topk",
        help="the k smallest records, ascending (like sort | head -k)",
    )
    add_generator_options(p_topk)
    add_engine_options(p_topk)
    p_topk.add_argument(
        "-k", type=_non_negative_int, required=True,
        help="how many records to keep; k <= --memory short-circuits to "
             "a bounded heap scan with no sort at all")
    add_io_arguments(p_topk)
    p_topk.set_defaults(func=cmd_topk)

    p_merge = sub.add_parser(
        "merge",
        help="merge already-sorted files without re-sorting (like sort -m)",
    )
    add_generator_options(p_merge)
    add_engine_options(p_merge, durable=False, parallel=False)
    p_merge.add_argument("inputs", nargs="*",
                         help="pre-sorted input files (empty = empty "
                              "output, exit 0)")
    p_merge.add_argument("-o", "--output",
                         help="output file (default stdout)")
    p_merge.set_defaults(func=cmd_merge)

    p_runs = sub.add_parser("runs", help="compare run generation across algorithms")
    add_generator_options(p_runs)
    p_runs.add_argument("input", nargs="?", help="input file ('-' = stdin)")
    p_runs.set_defaults(func=cmd_runs)

    p_exp = sub.add_parser("experiment", help="regenerate a paper experiment")
    p_exp.add_argument("name", help="experiment module name")
    p_exp.set_defaults(func=cmd_experiment)

    p_data = sub.add_parser("dataset", help="emit one of the paper's datasets")
    p_data.add_argument("name", choices=sorted(DISTRIBUTIONS))
    p_data.add_argument("--records", type=int, default=100_000)
    p_data.add_argument("--seed", type=int, default=0)
    p_data.set_defaults(func=cmd_dataset)

    p_lint = sub.add_parser(
        "lint",
        help="run the project-invariant linter (same as python -m repro.lint)",
    )
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories (default: src/ tests/)")
    p_lint.set_defaults(func=cmd_lint)

    p_store = sub.add_parser(
        "store",
        help="LSM key-value store built on the sort engine (DESIGN.md §17)",
    )
    store_sub = p_store.add_subparsers(dest="store_cmd", required=True)

    def add_store_options(p: argparse.ArgumentParser) -> None:
        """Shared store knobs.  Every subcommand opens the same way —
        reads take the single-writer lock too, keeping the CLI a strict
        one-process-at-a-time tool over the directory."""
        p.add_argument("dir", help="store directory (created on first use)")
        p.add_argument("--memory", type=_positive_int,
                       default=DEFAULT_MEMTABLE_RECORDS,
                       help="memtable budget in records; reaching it "
                            "flushes an SSTable "
                            f"(default {DEFAULT_MEMTABLE_RECORDS})")
        p.add_argument("--block-records", type=_positive_int,
                       default=DEFAULT_BLOCK_RECORDS,
                       help="records per SSTable block — the unit of "
                            "sparse indexing and point-lookup I/O "
                            f"(default {DEFAULT_BLOCK_RECORDS})")
        p.add_argument("--codec", choices=("none",) + SPILL_CODECS,
                       default="none",
                       help="per-block compression of SSTable data, "
                            "same codecs as --spill-codec "
                            "(default none)")
        p.add_argument("--fan-in", type=_fan_in, default=DEFAULT_FAN_IN,
                       help="compaction fan-in: a level holding more "
                            "tables than this merges into the next "
                            f"(default {DEFAULT_FAN_IN})")
        p.add_argument("--no-sync", action="store_true",
                       help="skip the per-write WAL fsync (bulk loads: "
                            "much faster, but a crash may lose the "
                            "unsynced tail)")
        p.add_argument("--no-auto-compact", action="store_true",
                       help="never compact on flush; run 'store "
                            "compact' explicitly instead")

    key_help = ("key as escaped text: printable ASCII plus "
                "\\t \\n \\r \\\\ \\xNN for everything else")
    p_s_put = store_sub.add_parser("put", help="store one key/value pair")
    add_store_options(p_s_put)
    p_s_put.add_argument("key", help=key_help)
    p_s_put.add_argument("value", help="value (escaped like the key)")
    p_s_put.set_defaults(func=cmd_store)

    p_s_get = store_sub.add_parser(
        "get", help="print one key's value (exit 2 when absent)"
    )
    add_store_options(p_s_get)
    p_s_get.add_argument("key", help=key_help)
    p_s_get.set_defaults(func=cmd_store)

    p_s_del = store_sub.add_parser(
        "delete", help="delete one key (a tombstone shadows older puts)"
    )
    add_store_options(p_s_del)
    p_s_del.add_argument("key", help=key_help)
    p_s_del.set_defaults(func=cmd_store)

    p_s_scan = store_sub.add_parser(
        "scan",
        help="emit live KEY<TAB>VALUE lines in key order",
    )
    add_store_options(p_s_scan)
    p_s_scan.add_argument("--start", default=None,
                          help="first key to include (escaped text)")
    p_s_scan.add_argument("--end", default=None,
                          help="first key to exclude (escaped text)")
    p_s_scan.add_argument("-o", "--output",
                          help="output file (default stdout); published "
                               "atomically")
    p_s_scan.set_defaults(func=cmd_store)

    p_s_ingest = store_sub.add_parser(
        "ingest",
        help="apply an operation log: 'put<TAB>KEY<TAB>VALUE' / "
             "'del<TAB>KEY' lines",
    )
    add_store_options(p_s_ingest)
    p_s_ingest.add_argument("input", nargs="?",
                            help="oplog file ('-' = stdin)")
    p_s_ingest.set_defaults(func=cmd_store)

    p_s_flush = store_sub.add_parser(
        "flush", help="persist the memtable as a level-0 SSTable now"
    )
    add_store_options(p_s_flush)
    p_s_flush.set_defaults(func=cmd_store)

    p_s_compact = store_sub.add_parser(
        "compact",
        help="merge every table into one and reclaim deleted space",
    )
    add_store_options(p_s_compact)
    p_s_compact.set_defaults(func=cmd_store)

    p_s_verify = store_sub.add_parser(
        "verify",
        help="re-hash every table against the manifest and walk all "
             "blocks; prints a summary JSON",
    )
    add_store_options(p_s_verify)
    p_s_verify.set_defaults(func=cmd_store)

    def add_server_address(p: argparse.ArgumentParser) -> None:
        p.add_argument("--server", default=None, metavar="HOST:PORT",
                       help="address of a running repro serve instance")
        p.add_argument("--endpoint-file", default="repro-service.json",
                       help="endpoint file written by `repro serve`; used "
                            "when --server is not given (default "
                            "repro-service.json)")

    p_serve = sub.add_parser(
        "serve",
        help="run the resident sort service (DESIGN.md §16)",
    )
    p_serve.add_argument("--spool", default="repro-spool",
                         help="directory for job specs, work dirs and "
                              "results; re-attachable job state lives "
                              "here across restarts (default repro-spool)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=_non_negative_int, default=0,
                         help="TCP port (default 0 = pick a free one and "
                              "publish it in --endpoint-file)")
    p_serve.add_argument("--memory", type=_positive_int, default=100_000,
                         help="total broker memory in records, shared by "
                              "all running jobs (default 100000)")
    p_serve.add_argument("--job-workers", type=_positive_int, default=8,
                         help="concurrent job threads (default 8)")
    p_serve.add_argument("--tenant-quota", action="append", default=None,
                         metavar="TENANT=RECORDS",
                         help="per-tenant memory cap; repeatable")
    p_serve.add_argument("--default-quota", type=_positive_int,
                         default=None,
                         help="memory cap for tenants without an explicit "
                              "--tenant-quota (default: no cap)")
    p_serve.add_argument("--endpoint-file", default="repro-service.json",
                         help="publish the bound host:port here, "
                              "atomically (default repro-service.json)")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit a job to a running service; prints its status JSON",
    )
    add_server_address(p_submit)
    p_submit.add_argument("--id", default=None,
                          help="re-attach to a persisted job by id "
                               "instead of sending a spec (crash "
                               "recovery; resumes from its journal)")
    # Mirrors service.jobs.JOB_OPS; importing it here would load the
    # whole service package for every CLI run (a test pins the two).
    p_submit.add_argument("--op",
                          choices=("sort", "distinct", "agg", "topk",
                                   "join", "store_ingest", "store_scan",
                                   "store_compact"),
                          default="sort")
    p_submit.add_argument("--store", default=None,
                          help="server-side store directory for the "
                               "store_* ops")
    p_submit.add_argument("--tenant", default="default")
    p_submit.add_argument("--memory", type=_positive_int, default=10_000)
    p_submit.add_argument("--algorithm", choices=ALGORITHMS, default="2wrs")
    p_submit.add_argument("--fan-in", type=_fan_in, default=8)
    p_submit.add_argument("--format", choices=FORMAT_NAMES, default="int")
    p_submit.add_argument("--key", type=_key_columns, default=None)
    p_submit.add_argument("--right-key", type=_key_columns, default=None)
    p_submit.add_argument("--right-input", default=None,
                          help="right side of a join")
    p_submit.add_argument("--by", choices=DISTINCT_MODES, default="record")
    p_submit.add_argument("--agg", type=_aggregate_list,
                          default=("count",))
    p_submit.add_argument("--value", type=_non_negative_int, default=None)
    p_submit.add_argument("-k", type=_non_negative_int, default=0)
    p_submit.add_argument("--binary-spill", action="store_true")
    p_submit.add_argument("--spill-codec",
                          choices=(AUTO_CODEC,) + SPILL_CODECS,
                          default="none")
    p_submit.add_argument("--checksum", action="store_true")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the job reaches a terminal "
                               "state; exit 1 if it failed")
    p_submit.add_argument("input", nargs="?", default=None,
                          help="input file (not used with --id)")
    p_submit.add_argument("-o", "--output", default=None,
                          help="server-side output path (default: the "
                               "job's spool directory)")
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser(
        "status",
        help="status of one job (or all jobs) on a running service",
    )
    add_server_address(p_status)
    p_status.add_argument("id", nargs="?", default=None,
                          help="job id (omit to list every job)")
    p_status.set_defaults(func=cmd_status)

    p_result = sub.add_parser(
        "result",
        help="stream a finished job's output from a running service",
    )
    add_server_address(p_result)
    p_result.add_argument("id", help="job id")
    p_result.add_argument("-o", "--output", default=None,
                          help="local file (default stdout); published "
                               "atomically")
    p_result.set_defaults(func=cmd_result)

    p_cancel = sub.add_parser(
        "cancel", help="cancel a queued or running job",
    )
    add_server_address(p_cancel)
    p_cancel.add_argument("id", help="job id")
    p_cancel.set_defaults(func=cmd_cancel)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if os.environ.get("REPRO_FAULT_PLAN"):
        # Deterministic fault injection for subprocess-level tests:
        # arm the plan found in the environment (no-op otherwise).
        from repro.testing.faults import activate_from_env

        activate_from_env()
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
