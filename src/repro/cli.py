"""Command-line interface: sort files and inspect run generation.

Examples::

    # external-sort newline-separated integers
    python -m repro.cli sort --algorithm 2wrs --memory 1000 in.txt -o out.txt

    # same sort, partitioned across 4 worker processes sharing the
    # 1000-record memory budget through the memory broker
    python -m repro.cli sort --memory 1000 --workers 4 in.txt -o out.txt

    # typed records: floats, opaque strings, or delimited rows sorted
    # by one column (0-based; csv and tsv fix the separator)
    python -m repro.cli sort --format float measurements.txt
    python -m repro.cli sort --format str words.txt
    python -m repro.cli sort --format csv --key 2 events.csv -o by_time.csv

    # choose how the final merge reads its run files (default: the
    # planner picks; see DESIGN.md §9)
    python -m repro.cli sort --reading double_buffering --report in.txt

    # crash-safe sorting: checksummed spill blocks, journaled progress
    # under out.txt.sortwork, restartable after any failure with the
    # same command (DESIGN.md §11)
    python -m repro.cli sort --resume --checksum in.txt -o out.txt

    # compare run generation across algorithms without sorting
    python -m repro.cli runs --memory 1000 in.txt

    # regenerate a paper experiment
    python -m repro.cli experiment table_5_13_run_lengths

    # generate one of the paper's datasets
    python -m repro.cli dataset mixed_balanced --records 100000 > in.txt

All sorting routes through :class:`repro.engine.SortEngine`
(DESIGN.md §9), which plans in-memory vs spill vs partitioned-parallel
execution and moves records in blocks through the configured
``--format``.
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
from contextlib import nullcontext
from typing import ContextManager, List, Optional, TextIO

from repro.core.config import ALGORITHMS, GeneratorSpec, RECOMMENDED, TwoWayConfig
from repro.core.heuristics import INPUT_HEURISTICS, OUTPUT_HEURISTICS
from repro.core.records import FORMAT_NAMES, resolve_format
from repro.engine.block_io import DEFAULT_BLOCK_RECORDS, iter_records
from repro.engine.errors import SortError
from repro.engine.merge_reading import READING_STRATEGIES
from repro.engine.resilience import JOURNAL_NAME
from repro.engine.planner import AUTO_READING, SortEngine, spec_for_format
from repro.experiments import EXPERIMENTS
from repro.merge.merge_tree import DEFAULT_FAN_IN
from repro.sort.parallel import PARTITION_STRATEGIES
from repro.sort.spill import DEFAULT_BUFFER_RECORDS
from repro.workloads.generators import DISTRIBUTIONS, make_input


def _make_spec(args: argparse.Namespace) -> GeneratorSpec:
    two_way = None
    if args.algorithm == "2wrs":
        two_way = TwoWayConfig(
            buffer_setup=args.buffer_setup,
            buffer_fraction=args.buffer_fraction,
            input_heuristic=args.input_heuristic,
            output_heuristic=args.output_heuristic,
            seed=args.seed,
        )
    return GeneratorSpec(
        algorithm=args.algorithm, memory=args.memory, two_way=two_way
    )


def _record_format(args: argparse.Namespace):
    if args.key is not None and args.format not in ("csv", "tsv"):
        # Silently ignoring --key would sort by the wrong thing.
        raise SystemExit(
            f"repro: error: --key only applies to the delimited formats "
            f"(csv, tsv), not --format {args.format}"
        )
    return resolve_format(args.format, key=args.key if args.key else 0)


def _open_input(path: Optional[str]) -> ContextManager[TextIO]:
    """Context manager over the input; never closes handles it did not open.

    stdin is wrapped in :func:`~contextlib.nullcontext` so ``with``
    leaves it open — the CLI must only close files it opened itself.
    """
    if path is None or path == "-":
        return nullcontext(sys.stdin)
    return open(path, "r", encoding="utf-8")


def _open_output(path: Optional[str]) -> ContextManager[TextIO]:
    if path is None:
        return nullcontext(sys.stdout)
    return open(path, "w", encoding="utf-8")


def _durable_work_dir(args: argparse.Namespace) -> Optional[str]:
    """The stable work directory of a ``--resume`` sort, or None.

    Derived from the output path (``out.txt`` -> ``out.txt.sortwork``)
    unless ``--work-dir`` names one explicitly.  Resuming needs a real
    input file (the journal skips *re-sorting*, not re-reading) and a
    stable place for the journal, so stdin/stdout pipes are rejected
    with a clear message instead of a confusing failure later.
    """
    if args.work_dir is None and not args.resume:
        return None
    if args.resume and args.input in (None, "-"):
        raise SystemExit(
            "repro: error: --resume requires a real input file (the "
            "resumed attempt re-reads it); stdin cannot be replayed"
        )
    if args.work_dir is not None:
        return args.work_dir
    if args.output is None:
        raise SystemExit(
            "repro: error: --resume needs -o/--output (the work "
            "directory is derived from it) or an explicit --work-dir"
        )
    return args.output + ".sortwork"


def _input_fingerprint(path: Optional[str]) -> Optional[str]:
    """Identity of the input file, tying a journal to one input."""
    if path in (None, "-"):
        return None
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return f"{os.path.abspath(path)}:{stat.st_size}:{stat.st_mtime_ns}"


def cmd_sort(args: argparse.Namespace) -> int:
    work_dir = _durable_work_dir(args)
    engine = SortEngine(
        _make_spec(args),
        record_format=_record_format(args),
        workers=args.workers,
        partition=args.partition,
        fan_in=args.fan_in,
        buffer_records=args.merge_buffer,
        block_records=args.block_records,
        reading=args.reading,
        checksum=args.checksum,
        work_dir=work_dir,
        input_fingerprint=_input_fingerprint(args.input) if work_dir else None,
    )
    try:
        with _open_input(args.input) as handle, _open_output(args.output) as out:
            # End-to-end streaming: records decode and encode in blocks,
            # runs spill to temp files as they are generated, and the
            # merge reads them back lazily, so no list of all runs (or
            # of the merged output) is ever materialised.
            engine.sort_stream(handle, out, resume=args.resume)
    except (SortError, OSError) as exc:
        # A controlled failure: corrupt block, injected fault, dead
        # worker, disk error.  Report it cleanly; in durable mode the
        # journal and surviving runs are kept for --resume.  The hint
        # only prints when a sort journal actually exists there — a
        # failure *before* durable work started (unreadable input, a
        # foreign --work-dir the journal refused to wipe) has nothing
        # to resume.
        print(f"repro: sort failed: {exc}", file=sys.stderr)
        if work_dir is not None and os.path.isfile(
            os.path.join(work_dir, JOURNAL_NAME)
        ):
            print(
                f"repro: completed work kept in {work_dir!r}; rerun "
                f"with --resume to continue from it",
                file=sys.stderr,
            )
        return 1
    _print_sort_report(engine, args.report)
    return 0


def _print_sort_report(engine: SortEngine, verbose: bool) -> None:
    """Unified ``--report`` rendering for every execution mode."""
    report = engine.report
    if not verbose:
        print(
            f"{report.algorithm}: {report.records} records in "
            f"{report.runs} runs "
            f"(avg {report.average_run_length:.0f} records)",
            file=sys.stderr,
        )
        return
    # summary() opens with the same records/runs header line, so the
    # plain stats line would print twice with --report.
    print(report.summary(), file=sys.stderr)
    plan = engine.plan
    backend = engine.backend
    if plan.mode == "in_memory":
        print(f"  plan   in-memory: {plan.reason}", file=sys.stderr)
        return
    if plan.mode == "parallel":
        # Combined report first (cpu_ops summed across shards, wall
        # times measured in the parent), then one line per worker.
        print(
            f"  partition strategy={backend.partition}  "
            f"wall={backend.partition_wall:.3f}s  "
            f"shards={backend.shard_records}",
            file=sys.stderr,
        )
        for i, worker in enumerate(backend.worker_reports):
            print(
                f"  worker {i}: {worker.records} records in "
                f"{worker.runs} runs  "
                f"memory={backend.granted_memories[i]}  "
                f"run_wall={worker.run_phase.wall_time:.3f}s  "
                f"merge_wall={worker.merge_phase.wall_time:.3f}s",
                file=sys.stderr,
            )
    print(
        f"  spill  passes={engine.merge_passes}  "
        f"peak_buffered={engine.max_resident_records} records  "
        f"readers<={engine.max_open_readers}",
        file=sys.stderr,
    )
    if engine.work_dir is not None:
        print(
            f"  resume runs_reused={engine.runs_reused}  "
            f"merges_reused={engine.merges_reused}  "
            f"shards_reused={engine.shards_reused}",
            file=sys.stderr,
        )
    stats = engine.reading_stats
    if stats is not None:
        print(
            f"  read   strategy={stats.strategy}  "
            f"blocks={stats.block_reads}  "
            f"prefetched={stats.prefetches}  hits={stats.prefetch_hits}",
            file=sys.stderr,
        )


def cmd_runs(args: argparse.Namespace) -> int:
    record_format = _record_format(args)
    with _open_input(args.input) as handle:
        data = list(
            iter_records(
                handle, record_format, DEFAULT_BLOCK_RECORDS, skip_blank=True
            )
        )
    header = f"{'algorithm':<10} {'runs':>6} {'avg length':>12} {'cpu ops':>12}"
    if args.report:
        header += f" {'run time':>10} {'total time':>11}"
    print(header)
    for name in ALGORITHMS:
        namespace = argparse.Namespace(**vars(args))
        namespace.algorithm = name
        spec = spec_for_format(_make_spec(namespace), record_format)
        if args.report:
            # Full simulated pipeline (the engine's fourth backend), so
            # the paper's two headline timings (run phase, run+merge)
            # appear per algorithm.
            report = SortEngine.simulate(spec, data, fan_in=args.fan_in)
            print(
                f"{report.algorithm:<10} {report.runs:>6} "
                f"{report.average_run_length:>12.1f} "
                f"{report.run_phase.cpu_ops:>12}"
                f" {report.run_time:>9.3f}s {report.total_time:>10.3f}s"
            )
        else:
            generator = spec.build()
            for _ in generator.generate_runs(iter(data)):
                pass
            stats = generator.stats
            print(
                f"{generator.name:<10} {stats.runs_out:>6} "
                f"{stats.average_run_length:>12.1f} {stats.cpu_ops:>12}"
            )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.name not in EXPERIMENTS:
        known = "\n  ".join(EXPERIMENTS)
        print(f"unknown experiment {args.name!r}; known:\n  {known}", file=sys.stderr)
        return 2
    module = importlib.import_module(f"repro.experiments.{args.name}")
    module.main()
    return 0


def cmd_dataset(args: argparse.Namespace) -> int:
    records = make_input(args.name, args.records, seed=args.seed)
    for value in records:
        sys.stdout.write(f"{value}\n")
    return 0


def _fan_in(text: str) -> int:
    value = int(text)
    if value < 2:
        raise argparse.ArgumentTypeError(f"fan-in must be >= 2, got {value}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a value >= 1, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a value >= 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Two-way replacement selection: external sorting toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_generator_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--memory", type=int, default=10_000,
                       help="working memory in records (default 10000)")
        p.add_argument("--algorithm", choices=ALGORITHMS, default="2wrs")
        p.add_argument("--buffer-setup", choices=("input", "both", "victim"),
                       default=RECOMMENDED.buffer_setup)
        p.add_argument("--buffer-fraction", type=float,
                       default=RECOMMENDED.buffer_fraction)
        p.add_argument("--input-heuristic", choices=sorted(INPUT_HEURISTICS),
                       default=RECOMMENDED.input_heuristic)
        p.add_argument("--output-heuristic", choices=sorted(OUTPUT_HEURISTICS),
                       default=RECOMMENDED.output_heuristic)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--fan-in", type=_fan_in, default=DEFAULT_FAN_IN,
                       help=f"merge fan-in (default {DEFAULT_FAN_IN})")
        p.add_argument("--format", choices=FORMAT_NAMES, default="int",
                       help="record type: one int/float/str per line, or "
                            "csv/tsv rows sorted by --key (default int)")
        p.add_argument("--key", type=_non_negative_int, default=None,
                       help="0-based key column, only valid with --format "
                            "csv/tsv (default 0); e.g. --format csv --key 2 "
                            "sorts rows by their third field")
        p.add_argument("--report", action="store_true",
                       help="print phase timings (SortReport) to stderr")

    p_sort = sub.add_parser("sort", help="externally sort typed records")
    add_generator_options(p_sort)
    p_sort.add_argument("--merge-buffer", type=_positive_int,
                        default=DEFAULT_BUFFER_RECORDS,
                        help="records buffered per run reader during the "
                             f"merge (default {DEFAULT_BUFFER_RECORDS})")
    p_sort.add_argument("--block-records", type=_positive_int,
                        default=DEFAULT_BLOCK_RECORDS,
                        help="records encoded/decoded per block on the "
                             "input and output streams "
                             f"(default {DEFAULT_BLOCK_RECORDS})")
    p_sort.add_argument("--reading",
                        choices=(AUTO_READING,) + READING_STRATEGIES,
                        default=AUTO_READING,
                        help="final-merge reading strategy over the run "
                             "files; 'auto' lets the planner choose "
                             "(default auto)")
    p_sort.add_argument("--workers", type=_positive_int, default=1,
                        help="partition the input and sort the shards in "
                             "this many worker processes; they share the "
                             "--memory budget through the memory broker "
                             "(default 1 = serial)")
    p_sort.add_argument("--partition", choices=PARTITION_STRATEGIES,
                        default="hash",
                        help="how records map to workers: 'hash' balances "
                             "any distribution, 'range' gives each worker "
                             "a disjoint key band from sampled cut points "
                             "(default hash)")
    p_sort.add_argument("--checksum", action="store_true",
                        help="write per-block CRC-32 headers into every "
                             "spill/shard file and verify them during the "
                             "merge; corruption fails loudly with file + "
                             "offset (DESIGN.md §11)")
    p_sort.add_argument("--resume", action="store_true",
                        help="sort durably under a stable work directory "
                             "(journaled runs, shard completion markers) "
                             "and resume any compatible previous attempt "
                             "found there; output is byte-identical to an "
                             "uninterrupted sort")
    p_sort.add_argument("--work-dir", default=None,
                        help="stable directory for the durable sort "
                             "journal and spill files (default: derived "
                             "from the output path as OUTPUT.sortwork)")
    p_sort.add_argument("input", nargs="?", help="input file ('-' = stdin)")
    p_sort.add_argument("-o", "--output", help="output file (default stdout)")
    p_sort.set_defaults(func=cmd_sort)

    p_runs = sub.add_parser("runs", help="compare run generation across algorithms")
    add_generator_options(p_runs)
    p_runs.add_argument("input", nargs="?", help="input file ('-' = stdin)")
    p_runs.set_defaults(func=cmd_runs)

    p_exp = sub.add_parser("experiment", help="regenerate a paper experiment")
    p_exp.add_argument("name", help="experiment module name")
    p_exp.set_defaults(func=cmd_experiment)

    p_data = sub.add_parser("dataset", help="emit one of the paper's datasets")
    p_data.add_argument("name", choices=sorted(DISTRIBUTIONS))
    p_data.add_argument("--records", type=int, default=100_000)
    p_data.add_argument("--seed", type=int, default=0)
    p_data.set_defaults(func=cmd_dataset)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    if os.environ.get("REPRO_FAULT_PLAN"):
        # Deterministic fault injection for subprocess-level tests:
        # arm the plan found in the environment (no-op otherwise).
        from repro.testing.faults import activate_from_env

        activate_from_env()
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
