"""Two-way replacement selection: the paper's core contribution."""

from repro.core.adaptive import AdaptiveInput, Trend, classify_trend, recommend_config
from repro.core.config import (
    BUFFER_FRACTIONS,
    BUFFER_SETUPS,
    RECOMMENDED,
    TABLE_5_13_CONFIGS,
    TwoWayConfig,
)
from repro.core.heuristics import (
    INPUT_HEURISTICS,
    OUTPUT_HEURISTICS,
    HeuristicContext,
    InputHeuristic,
    OutputHeuristic,
    Side,
    make_input_heuristic,
    make_output_heuristic,
)
from repro.core.input_buffer import InputBuffer
from repro.core.records import (
    FLOAT,
    FORMAT_NAMES,
    INT,
    STR,
    CallableFormat,
    DelimitedFormat,
    RecordFormat,
    resolve_format,
)
from repro.core.streams import RunStreams
from repro.core.two_way import TwoWayReplacementSelection
from repro.core.victim_buffer import VictimBuffer, VictimPhase, largest_gap

__all__ = [
    "AdaptiveInput",
    "BUFFER_FRACTIONS",
    "BUFFER_SETUPS",
    "CallableFormat",
    "DelimitedFormat",
    "FLOAT",
    "FORMAT_NAMES",
    "INT",
    "RecordFormat",
    "STR",
    "resolve_format",
    "HeuristicContext",
    "INPUT_HEURISTICS",
    "InputBuffer",
    "InputHeuristic",
    "OUTPUT_HEURISTICS",
    "OutputHeuristic",
    "RECOMMENDED",
    "RunStreams",
    "Side",
    "TABLE_5_13_CONFIGS",
    "TwoWayConfig",
    "Trend",
    "TwoWayReplacementSelection",
    "VictimBuffer",
    "VictimPhase",
    "classify_trend",
    "largest_gap",
    "make_input_heuristic",
    "recommend_config",
    "make_output_heuristic",
]
