"""The 2WRS input buffer (Section 4.2).

A FIFO queue between the input stream and the heaps.  Records are read
into the buffer in input order; the algorithm always consumes the head.
The buffer's purpose is to *sample* the upcoming input so the Mean and
Median input heuristics can infer the local distribution.

When the configured capacity is zero (the paper's "victim buffer only"
setup still crosses all heuristics), the buffer degenerates to a direct
pass-through but keeps a small shadow window of recently read records so
Mean/Median remain defined — a documented deviation (DESIGN.md §5).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, Iterator, List, Optional

#: Size of the shadow sample kept when the buffer capacity is zero.
SHADOW_WINDOW = 16


class InputBuffer:
    """FIFO read-ahead buffer with distribution statistics.

    Parameters
    ----------
    stream:
        The record source.
    capacity:
        Number of records held; 0 disables buffering (pass-through with
        a shadow sample window).
    """

    def __init__(self, stream: Iterable[Any], capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._stream: Iterator[Any] = iter(stream)
        self.capacity = capacity
        self._queue: Deque[Any] = deque()
        self._shadow: Deque[Any] = deque(maxlen=SHADOW_WINDOW)
        self._exhausted = False
        self.records_read = 0
        self._fill()

    def _pull(self) -> Optional[Any]:
        """Read one record from the underlying stream."""
        if self._exhausted:
            return None
        try:
            value = next(self._stream)
        except StopIteration:
            self._exhausted = True
            return None
        self.records_read += 1
        self._shadow.append(value)
        return value

    def _fill(self) -> None:
        while len(self._queue) < self.capacity:
            value = self._pull()
            if value is None:
                break
            self._queue.append(value)

    def next(self) -> Optional[Any]:
        """Pop the head record (refilling the tail), or None at EOF."""
        if self._queue:
            head = self._queue.popleft()
            refill = self._pull()
            if refill is not None:
                self._queue.append(refill)
            return head
        return self._pull()

    def __bool__(self) -> bool:
        return bool(self._queue) or not self._exhausted

    # -- statistics for the Mean / Median heuristics ---------------------------

    def sample(self) -> List[Any]:
        """Current buffer contents, or the shadow window when unbuffered."""
        if self._queue:
            return list(self._queue)
        return list(self._shadow)

    def mean(self) -> Optional[float]:
        """Mean of the sample, or None when unavailable.

        None is also returned for non-numeric keys (the paper assumes
        numeric sort keys; the Mean heuristic then degrades to a coin
        flip while order-based heuristics keep working).
        """
        values = self.sample()
        if not values:
            return None
        try:
            return sum(values) / len(values)
        except TypeError:
            return None

    def median(self) -> Optional[Any]:
        """Median of the sample (lower middle), or None when empty."""
        values = sorted(self.sample())
        if not values:
            return None
        return values[(len(values) - 1) // 2]
