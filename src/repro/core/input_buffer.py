"""The 2WRS input buffer (Section 4.2).

A FIFO queue between the input stream and the heaps.  Records are read
into the buffer in input order; the algorithm always consumes the head.
The buffer's purpose is to *sample* the upcoming input so the Mean and
Median input heuristics can infer the local distribution.

When the configured capacity is zero (the paper's "victim buffer only"
setup still crosses all heuristics), the buffer degenerates to a direct
pass-through but keeps a small shadow window of recently read records so
Mean/Median remain defined — a documented deviation (DESIGN.md §5).

The statistics are *memoized per generation*: every mutation of the
buffer bumps :attr:`generation`, and ``sample``/``mean``/``median`` are
recomputed at most once per generation and only when actually asked
for.  Heuristics that ignore the distribution therefore never pay for
the statistics at all; the :attr:`mean_computations` /
:attr:`median_computations` counters make that observable in tests and
benchmarks.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from typing import Any, Deque, Iterable, Iterator, List, Optional, Tuple

#: Size of the shadow sample kept when the buffer capacity is zero.
SHADOW_WINDOW = 16


class InputBuffer:
    """FIFO read-ahead buffer with distribution statistics.

    Parameters
    ----------
    stream:
        The record source.
    capacity:
        Number of records held; 0 disables buffering (pass-through with
        a shadow sample window).
    """

    def __init__(self, stream: Iterable[Any], capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._stream: Iterator[Any] = iter(stream)
        self.capacity = capacity
        self._queue: Deque[Any] = deque()
        self._shadow: Deque[Any] = deque(maxlen=SHADOW_WINDOW)
        self._exhausted = False
        self.records_read = 0
        #: Bumped on every mutation; invalidates the memoized statistics.
        self.generation = 0
        #: Number of times the mean / median were actually recomputed.
        self.mean_computations = 0
        self.median_computations = 0
        self._sample_cache: Optional[Tuple[int, List[Any]]] = None
        self._mean_cache: Optional[Tuple[int, Optional[float]]] = None
        self._median_cache: Optional[Tuple[int, Optional[Any]]] = None
        # Sorted mirror of the queue, activated by the first median()
        # call and maintained incrementally from then on, so the Median
        # heuristic costs O(log n) bookkeeping per record instead of an
        # O(n log n) re-sort per lookup.  None = never asked for.
        self._sorted_queue: Optional[List[Any]] = None
        # Running sum of the queue, activated by the first mean() call
        # (same pattern): the generation changes on every record, so
        # without it each mean() would re-sum the whole buffer.  Exact
        # for the paper's integer keys.  None = never asked for, or
        # non-numeric keys.
        self._queue_sum: Optional[Any] = None
        self._fill()

    def _pull(self) -> Optional[Any]:
        """Read one record from the underlying stream."""
        if self._exhausted:
            return None
        try:
            value = next(self._stream)
        except StopIteration:
            self._exhausted = True
            return None
        self.records_read += 1
        self._shadow.append(value)
        self.generation += 1
        return value

    def _fill(self) -> None:
        while len(self._queue) < self.capacity:
            value = self._pull()
            if value is None:
                break
            self._queue.append(value)

    def next(self) -> Optional[Any]:
        """Pop the head record (refilling the tail), or None at EOF."""
        if self._queue:
            head = self._queue.popleft()
            if self._sorted_queue is not None:
                del self._sorted_queue[bisect_left(self._sorted_queue, head)]
            if self._queue_sum is not None:
                self._queue_sum -= head
            self.generation += 1
            refill = self._pull()
            if refill is not None:
                self._queue.append(refill)
                if self._sorted_queue is not None:
                    insort(self._sorted_queue, refill)
                if self._queue_sum is not None:
                    self._queue_sum += refill
            return head
        return self._pull()

    def __bool__(self) -> bool:
        return bool(self._queue) or not self._exhausted

    # -- statistics for the Mean / Median heuristics ---------------------------

    def sample(self) -> List[Any]:
        """Current buffer contents, or the shadow window when unbuffered.

        The returned list is memoized until the next mutation — treat it
        as read-only.
        """
        if self._sample_cache is None or self._sample_cache[0] != self.generation:
            values = list(self._queue) if self._queue else list(self._shadow)
            self._sample_cache = (self.generation, values)
        return self._sample_cache[1]

    def mean(self) -> Optional[float]:
        """Mean of the sample, or None when unavailable.

        None is also returned for non-numeric keys (the paper assumes
        numeric sort keys; the Mean heuristic then degrades to a coin
        flip while order-based heuristics keep working).
        """
        if self._mean_cache is None or self._mean_cache[0] != self.generation:
            result: Optional[float]
            if self._queue:
                # First call sums the buffer once and activates the
                # running sum; later calls are O(1) per record.
                if self._queue_sum is None:
                    try:
                        self._queue_sum = sum(self._queue)
                    except TypeError:
                        self._queue_sum = None
                result = (
                    self._queue_sum / len(self._queue)
                    if self._queue_sum is not None
                    else None
                )
            else:
                values = self.sample()
                if not values:
                    result = None
                else:
                    try:
                        result = sum(values) / len(values)
                    except TypeError:
                        result = None
            self.mean_computations += 1
            self._mean_cache = (self.generation, result)
        return self._mean_cache[1]

    def median(self) -> Optional[Any]:
        """Median of the sample (lower middle), or None when empty.

        The first call sorts the buffer once and activates an
        incrementally-maintained sorted mirror; later calls are O(1)
        lookups.  The shadow window (≤ :data:`SHADOW_WINDOW` records)
        falls back to a memoized sort.
        """
        if self._median_cache is None or self._median_cache[0] != self.generation:
            if self._queue:
                mirror = self._sorted_queue
                if mirror is None or len(mirror) != len(self._queue):
                    mirror = self._sorted_queue = sorted(self._queue)
                result = mirror[(len(mirror) - 1) // 2]
            else:
                values = sorted(self._shadow)
                result = values[(len(values) - 1) // 2] if values else None
            self.median_computations += 1
            self._median_cache = (self.generation, result)
        return self._median_cache[1]
