"""The 2WRS victim buffer (Section 4.3).

The two heaps release an increasing stream (stream 1) and a decreasing
stream (stream 4); between the last record released on each side lies a
*gap* of values that can no longer join the current run through either
heap.  The victim buffer captures records falling in that gap, sorts
them when full, and flushes them to two more streams: the part below the
largest internal gap extends stream 3 (increasing), the part above it
extends stream 2 (decreasing).  The largest internal gap becomes the new
(narrower) valid range.

At the start of each run the buffer plays a second role: it collects the
first heap outputs (from both heaps), and its first flush chooses the
widest gap available instead of just the gap between the two heap tops —
a wider valid range makes the victim more likely to capture records.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Any, List, Optional, Tuple


class VictimPhase(Enum):
    """Lifecycle of the victim buffer within one run."""

    DISABLED = "disabled"
    INITIAL_FILL = "initial_fill"
    ACTIVE = "active"


def largest_gap(sorted_values: List[Any]) -> Tuple[int, Any, Any]:
    """Find the widest gap between consecutive sorted values.

    Returns ``(split_index, low, high)`` where values ``[:split_index]``
    lie at or below the gap and values ``[split_index:]`` at or above it.
    Requires at least two values.
    """
    if len(sorted_values) < 2:
        raise ValueError("need at least two values to find a gap")
    best_index = 1
    best_width = sorted_values[1] - sorted_values[0]
    for i in range(2, len(sorted_values)):
        width = sorted_values[i] - sorted_values[i - 1]
        if width > best_width:
            best_width = width
            best_index = i
    return best_index, sorted_values[best_index - 1], sorted_values[best_index]


class VictimBuffer:
    """Gap-capturing buffer with a valid range and flush bookkeeping.

    The buffer itself does not own the output streams; flushes return
    ``(to_stream3, to_stream2)`` lists (ascending and descending
    respectively) for the caller to route.

    Parameters
    ----------
    capacity:
        Records held before a flush; 0 disables the buffer entirely.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self._records: List[Any] = []
        self._range: Optional[Tuple[Any, Any]] = None
        self.phase = (
            VictimPhase.DISABLED if capacity == 0 else VictimPhase.INITIAL_FILL
        )
        #: analytic comparisons spent sorting flushes
        self.cpu_ops = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def valid_range(self) -> Optional[Tuple[Any, Any]]:
        """Current inclusive (low, high) acceptance range, if established."""
        return self._range

    @property
    def is_full(self) -> bool:
        return self.capacity > 0 and len(self._records) >= self.capacity

    def start_run(self) -> None:
        """Reset for a new run (records must have been flushed already)."""
        if self._records:
            raise RuntimeError("victim buffer restarted while holding records")
        self._range = None
        if self.capacity > 0:
            self.phase = VictimPhase.INITIAL_FILL

    # -- initial fill (first heap outputs of the run) --------------------------

    def add_initial(self, value: Any) -> None:
        """Stash one of the run's first heap outputs."""
        if self.phase is not VictimPhase.INITIAL_FILL:
            raise RuntimeError(f"add_initial in phase {self.phase}")
        self._records.append(value)

    def flush_initial(self) -> Tuple[List[Any], List[Any]]:
        """Establish the valid range from the buffered first outputs.

        Returns ``(to_stream3, to_stream2)``: the records below the
        widest gap (ascending) and above it (descending).  After this
        call the buffer is ACTIVE with the gap as its valid range.
        """
        if self.phase is not VictimPhase.INITIAL_FILL:
            raise RuntimeError(f"flush_initial in phase {self.phase}")
        records = self._sorted_and_cleared()
        self.phase = VictimPhase.ACTIVE
        if len(records) < 2:
            # Degenerate: no gap to exploit; accept nothing until run end.
            self._range = None
            return records, []
        split, low, high = largest_gap(records)
        self._range = (low, high)
        return records[:split], list(reversed(records[split:]))

    # -- active phase -------------------------------------------------------------

    def fits(self, value: Any) -> bool:
        """True when ``value`` may be stored in the victim buffer now."""
        if self.phase is not VictimPhase.ACTIVE or self._range is None:
            return False
        if self.is_full:
            return False
        low, high = self._range
        return low <= value <= high

    def add(self, value: Any) -> None:
        """Store a record previously accepted by :meth:`fits`."""
        if self.phase is not VictimPhase.ACTIVE:
            raise RuntimeError(f"add in phase {self.phase}")
        self._records.append(value)

    def flush_full(self) -> Tuple[List[Any], List[Any]]:
        """Flush a full buffer, narrowing the valid range to its widest gap."""
        records = self._sorted_and_cleared()
        if len(records) < 2:
            self._range = None
            return records, []
        split, low, high = largest_gap(records)
        self._range = (low, high)
        return records[:split], list(reversed(records[split:]))

    def flush_run_end(self) -> List[Any]:
        """Flush everything ascending at a run boundary.

        All held records lie inside the previous valid range, so they
        slot between streams 3 and 2 of the finishing run.
        """
        records = self._sorted_and_cleared()
        self._range = None
        if self.capacity > 0:
            self.phase = VictimPhase.INITIAL_FILL
        return records

    def _sorted_and_cleared(self) -> List[Any]:
        records = self._records
        self._records = []
        if len(records) > 1:
            self.cpu_ops += int(len(records) * max(1.0, math.log2(len(records))))
            records.sort()
        return records
