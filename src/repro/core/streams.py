"""The four output streams of a 2WRS run (Section 4.1, Figure 4.1).

Every run is released as four streams with pairwise non-overlapping
ranges:

* stream 1 — increasing, from the TopHeap (the largest values),
* stream 2 — decreasing, victim-buffer records above its gaps,
* stream 3 — increasing, victim-buffer records below its gaps,
* stream 4 — decreasing, from the BottomHeap (the smallest values).

Concatenating streams 4, 3, 2, 1 — reading the decreasing ones backwards
— yields the ascending run.  On disk the decreasing streams use the
backwards-written format of Appendix A so the merge still reads forward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List


@dataclass
class RunStreams:
    """In-memory representation of one 2WRS run before assembly."""

    run_index: int
    stream1: List[Any] = field(default_factory=list)  # increasing (TopHeap)
    stream2: List[Any] = field(default_factory=list)  # decreasing (victim, high)
    stream3: List[Any] = field(default_factory=list)  # increasing (victim, low)
    stream4: List[Any] = field(default_factory=list)  # decreasing (BottomHeap)

    def __len__(self) -> int:
        return (
            len(self.stream1)
            + len(self.stream2)
            + len(self.stream3)
            + len(self.stream4)
        )

    def assemble(self) -> List[Any]:
        """Concatenate streams 4‖3‖2‖1 into the ascending run."""
        out: List[Any] = []
        out.extend(reversed(self.stream4))
        out.extend(self.stream3)
        out.extend(reversed(self.stream2))
        out.extend(self.stream1)
        return out

    def check_invariants(self) -> bool:
        """Verify monotonicity and pairwise range separation (for tests)."""
        increasing = lambda s: all(a <= b for a, b in zip(s, s[1:]))
        decreasing = lambda s: all(a >= b for a, b in zip(s, s[1:]))
        if not (increasing(self.stream1) and increasing(self.stream3)):
            return False
        if not (decreasing(self.stream2) and decreasing(self.stream4)):
            return False
        run = self.assemble()
        return all(a <= b for a, b in zip(run, run[1:]))
