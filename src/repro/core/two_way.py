"""Two-way replacement selection (Chapter 4, Algorithm 2).

2WRS generalises replacement selection with a second heap so the
algorithm captures decreasing trends as well as increasing ones:

* the **TopHeap** (a min-heap) releases an increasing stream, exactly
  like classic RS;
* the **BottomHeap** (a max-heap) releases a decreasing stream, turning
  reverse-sorted input from RS's worst case into a single run;
* both heaps share one fixed array (:class:`~repro.heaps.double_heap.
  DoubleHeap`) so either may grow at the other's expense;
* an **input buffer** samples the input for the routing heuristics;
* a **victim buffer** captures records that fall in the value gap
  between the two released streams and would otherwise be pushed to the
  next run.

Each run leaves the algorithm as four non-overlapping streams
(:class:`~repro.core.streams.RunStreams`); their 4‖3‖2‖1 concatenation
is the ascending run.

Cross-stream correctness
------------------------
The four streams of a run must keep pairwise disjoint ranges (Section
4.1), but the routing heuristics are free — the Random heuristic may
well put large records in the BottomHeap.  We therefore maintain two
per-run frontiers:

* ``bottom_ceiling`` — the smallest value already committed to streams
  1, 2 or 3; a BottomHeap release must stay at or below it;
* ``top_floor`` — the largest value committed to streams 2, 3 or 4; a
  TopHeap release must stay at or above it.

A popped record that would violate its frontier is *migrated* to the
other heap when that side can still release it, stored in the victim
buffer when it falls inside the current gap, and otherwise demoted to
the next run — which is precisely the accounting behind the paper's
run-length theorems (e.g. Theorem 6: each monotone section of the
alternating dataset becomes its own run because the opposite stream's
frontier blocks the turn-around records).

The class implements the common :class:`~repro.runs.base.RunGenerator`
interface; :meth:`generate_run_streams` additionally exposes the four
per-run streams for pipelines that persist decreasing streams in the
Appendix A backwards file format.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Iterator, List, Optional

from repro.core.config import TwoWayConfig
from repro.core.heuristics import (
    HeuristicContext,
    Side,
    make_input_heuristic,
    make_output_heuristic,
)
from repro.core.input_buffer import InputBuffer
from repro.core.streams import RunStreams
from repro.core.victim_buffer import VictimBuffer, VictimPhase
from repro.heaps.double_heap import DoubleHeap, HeapSide
from repro.heaps.run_heap import TaggedRecord, bottom_before, top_before
from repro.runs.base import RunGenerator, log_cost


class TwoWayReplacementSelection(RunGenerator):
    """The 2WRS run generator.

    Parameters
    ----------
    memory_capacity:
        Total working memory in records, covering the two heaps *and*
        both buffers (partitioned by the configuration).
    config:
        A :class:`~repro.core.config.TwoWayConfig`; defaults to the
        paper's recommended configuration (Section 5.3).
    """

    name = "2WRS"

    def __init__(
        self, memory_capacity: int, config: Optional[TwoWayConfig] = None
    ) -> None:
        super().__init__(memory_capacity)
        self.config = config if config is not None else TwoWayConfig()
        heap, input_buf, victim_buf = self.config.partition_memory(memory_capacity)
        if heap < 1:
            raise ValueError(
                f"memory_capacity {memory_capacity} leaves no room for the heaps"
            )
        self.heap_capacity = heap
        self.input_buffer_capacity = input_buf
        self.victim_buffer_capacity = victim_buf
        self.last_input_buffer: Optional[InputBuffer] = None

    # -- public API ---------------------------------------------------------------

    def generate_runs(self, records: Iterable[Any]) -> Iterator[List[Any]]:
        """Yield each run as one ascending list (4‖3‖2‖1 assembly)."""
        for streams in self.generate_run_streams(records):
            yield streams.assemble()

    def generate_run_streams(self, records: Iterable[Any]) -> Iterator[RunStreams]:
        """Yield each run as its four constituent streams."""
        self.stats.reset()
        state = _RunState(self, records)
        #: The live InputBuffer of the most recent generation, exposed so
        #: callers can inspect its statistics counters (e.g. how many
        #: mean/median computations the configured heuristics triggered).
        self.last_input_buffer = state.source
        yield from state.run()

    # -- internals -------------------------------------------------------------------

    def _rebalance(self, heaps: DoubleHeap[TaggedRecord]) -> None:
        """Equalise heap sizes at a run boundary (Balancing heuristic).

        At a boundary every record in memory belongs to the incoming
        run, so records can migrate between the heaps freely.
        """
        while abs(len(heaps.top) - len(heaps.bottom)) > 1:
            src, dst = (
                (heaps.top, heaps.bottom)
                if len(heaps.top) > len(heaps.bottom)
                else (heaps.bottom, heaps.top)
            )
            self.stats.cpu_ops += log_cost(len(src)) + log_cost(len(dst) + 1)
            dst.push(src.pop())


class _RunState:
    """Mutable execution state of one ``generate_run_streams`` call."""

    def __init__(
        self, algo: TwoWayReplacementSelection, records: Iterable[Any]
    ) -> None:
        self.algo = algo
        self.stats = algo.stats
        self.rng = random.Random(algo.config.seed)
        self.input_heuristic = make_input_heuristic(algo.config.input_heuristic)
        self.output_heuristic = make_output_heuristic(algo.config.output_heuristic)
        self.source = InputBuffer(records, algo.input_buffer_capacity)
        self.victim = VictimBuffer(algo.victim_buffer_capacity)
        self.heaps: DoubleHeap[TaggedRecord] = DoubleHeap(
            algo.heap_capacity, bottom_before, top_before
        )
        self.current_run = 0
        self.streams = RunStreams(0)
        self._reset_run_state()

    def _reset_run_state(self) -> None:
        self.last_top: Optional[Any] = None
        self.last_bottom: Optional[Any] = None
        self.first_output: Optional[Any] = None
        self.outputs_top = 0
        self.outputs_bottom = 0
        self.bottom_ceiling: Optional[Any] = None  # None = +inf
        self.top_floor: Optional[Any] = None  # None = -inf
        # Range trackers for records already routed to the *next* run:
        # keeping next-run bottom records below next-run top records is
        # what lets the following run start from a clean frontier.
        self.next_bottom_max: Optional[Any] = None
        self.next_top_min: Optional[Any] = None

    # -- helpers ---------------------------------------------------------------

    def context(self) -> HeuristicContext:
        # The distribution statistics are deliberately NOT computed here:
        # the context holds a reference to the input buffer and fetches
        # mean/median/sample lazily, only if the configured heuristic
        # actually reads them (the buffer memoizes per generation).
        heaps = self.heaps
        return HeuristicContext(
            rng=self.rng,
            top_size=len(heaps.top),
            bottom_size=len(heaps.bottom),
            top_outputs=self.outputs_top,
            bottom_outputs=self.outputs_bottom,
            top_head=heaps.top.peek().key if heaps.top else None,
            bottom_head=heaps.bottom.peek().key if heaps.bottom else None,
            stats=self.source,
            first_output=self.first_output,
        )

    def side_of(self, side: Side) -> HeapSide[TaggedRecord]:
        return self.heaps.top if side is Side.TOP else self.heaps.bottom

    def push(self, side: Side, record: TaggedRecord) -> None:
        heap_side = self.side_of(side)
        self.stats.cpu_ops += log_cost(len(heap_side) + 1)
        heap_side.push(record)

    def pop(self, side: Side) -> TaggedRecord:
        heap_side = self.side_of(side)
        self.stats.cpu_ops += log_cost(len(heap_side))
        return heap_side.pop()

    def top_releasable(self, value: Any) -> bool:
        """Can ``value`` legally extend stream 1 right now?"""
        if self.last_top is not None and value < self.last_top:
            return False
        return self.top_floor is None or value >= self.top_floor

    def bottom_releasable(self, value: Any) -> bool:
        """Can ``value`` legally extend stream 4 right now?"""
        if self.last_bottom is not None and value > self.last_bottom:
            return False
        return self.bottom_ceiling is None or value <= self.bottom_ceiling

    def _commit_middle(self, to3: List[Any], to2: List[Any]) -> None:
        """Route a victim flush to streams 3 and 2, updating frontiers."""
        self.streams.stream3.extend(to3)
        self.streams.stream2.extend(to2)
        committed = to3 + to2
        if not committed:
            return
        low = min(committed)
        high = max(committed)
        if self.bottom_ceiling is None or low < self.bottom_ceiling:
            self.bottom_ceiling = low
        if self.top_floor is None or high > self.top_floor:
            self.top_floor = high
        self.stats.cpu_ops += self.victim.cpu_ops
        self.victim.cpu_ops = 0

    def release_top(self, value: Any) -> None:
        self.streams.stream1.append(value)
        self.last_top = value
        self.outputs_top += 1
        if self.bottom_ceiling is None or value < self.bottom_ceiling:
            self.bottom_ceiling = value

    def release_bottom(self, value: Any) -> None:
        self.streams.stream4.append(value)
        self.last_bottom = value
        self.outputs_bottom += 1
        if self.top_floor is None or value > self.top_floor:
            self.top_floor = value

    # -- main loop --------------------------------------------------------------

    def run(self) -> Iterator[RunStreams]:
        self._fill_heaps()
        # From here on the trackers describe run 1 (the next run); the
        # fill used them for run 0's contents.
        self.next_bottom_max = None
        self.next_top_min = None
        heaps = self.heaps
        while len(heaps) > 0:
            top_ready = bool(heaps.top) and heaps.top.peek().run == self.current_run
            bottom_ready = (
                bool(heaps.bottom)
                and heaps.bottom.peek().run == self.current_run
            )

            if not top_ready and not bottom_ready:
                # doubleHeap.nextRun: everything in memory belongs to the
                # next run; close out the current one.
                finished = self._finish_run()
                if finished is not None:
                    yield finished
                continue

            released = self._output_step(top_ready, bottom_ready)
            if released:
                self._read_step()

        finished = self._finish_run(final=True)
        if finished is not None:
            yield finished

    def _route_disjoint(self, value: Any) -> Side:
        """Pick a heap for a record without an output-order constraint.

        Used while filling the heaps and when demoting records to the
        next run.  A record may be placed in either heap only while that
        keeps the BottomHeap's range below the TopHeap's (Section 4.1:
        the four stream ranges "do not overlap pairwise"); the input
        heuristic decides inside the gap between the heaps, exactly the
        "can be inserted into both heaps" case of Section 4.2.
        """
        can_bottom = self.next_top_min is None or value <= self.next_top_min
        can_top = self.next_bottom_max is None or value >= self.next_bottom_max
        if can_bottom and can_top:
            side = self.input_heuristic.choose(value, self.context())
        elif can_bottom:
            side = Side.BOTTOM
        else:
            side = Side.TOP
        if side is Side.BOTTOM:
            if self.next_bottom_max is None or value > self.next_bottom_max:
                self.next_bottom_max = value
        else:
            if self.next_top_min is None or value < self.next_top_min:
                self.next_top_min = value
        return side

    def _fill_heaps(self) -> None:
        """doubleHeap.fill: route the first records through the heuristic."""
        while not self.heaps.is_full:
            value = self.source.next()
            if value is None:
                break
            self.stats.records_in += 1
            self.push(self._route_disjoint(value), TaggedRecord(0, value))

    def _finish_run(self, final: bool = False) -> Optional[RunStreams]:
        """Flush the victim, emit the run, and reset per-run state."""
        leftovers = self.victim.flush_run_end()
        self.streams.stream3.extend(leftovers)
        self.stats.cpu_ops += self.victim.cpu_ops
        self.victim.cpu_ops = 0
        finished: Optional[RunStreams] = None
        if len(self.streams) > 0:
            self.stats.note_run(len(self.streams))
            finished = self.streams
        if final:
            return finished
        self.current_run += 1
        self.streams = RunStreams(self.current_run)
        self._reset_run_state()
        self.victim.start_run()
        self.input_heuristic.on_run_start()
        self.output_heuristic.on_run_start()
        if self.input_heuristic.wants_rebalance:
            self.algo._rebalance(self.heaps)
        return finished

    def _output_step(self, top_ready: bool, bottom_ready: bool) -> bool:
        """Pop one record and place it somewhere.

        Returns True when the pop freed memory (stream release, victim
        initial fill, or victim capture) so the caller reads one input
        record; False when the record merely moved between heaps
        (migration or demotion).
        """
        if top_ready and bottom_ready:
            out_side = self.output_heuristic.choose(self.context())
        elif top_ready:
            out_side = Side.TOP
        else:
            out_side = Side.BOTTOM
        record = self.pop(out_side)
        value = record.key
        if self.first_output is None:
            self.first_output = value

        if self.victim.phase is VictimPhase.INITIAL_FILL:
            # The run's first outputs establish the victim's range; any
            # record is welcome here because the flush sorts and splits.
            if out_side is Side.TOP:
                self.last_top = value
                self.outputs_top += 1
            else:
                self.last_bottom = value
                self.outputs_bottom += 1
            self.victim.add_initial(value)
            if len(self.victim) >= self.victim.capacity:
                to3, to2 = self.victim.flush_initial()
                self._commit_middle(to3, to2)
            return True

        if out_side is Side.TOP and self.top_releasable(value):
            self.release_top(value)
            return True
        if out_side is Side.BOTTOM and self.bottom_releasable(value):
            self.release_bottom(value)
            return True

        # The record cannot extend its own stream: migrate it to the
        # other heap when that side can still release it...
        other = out_side.other
        other_ok = (
            self.top_releasable(value)
            if other is Side.TOP
            else self.bottom_releasable(value)
        )
        if other_ok:
            self.push(other, record)
            return False
        # ...or capture it in the victim's gap...
        if self.victim.fits(value):
            self.victim.add(value)
            if self.victim.is_full:
                to3, to2 = self.victim.flush_full()
                self._commit_middle(to3, to2)
            return True
        # ...or concede it to the next run.
        self.push(self._route_disjoint(value), TaggedRecord(self.current_run + 1, value))
        return False

    def _read_step(self) -> None:
        """Read one input record, letting the victim drink its fill."""
        value = self.source.next()
        if value is None:
            return
        self.stats.records_in += 1
        while self.victim.fits(value):
            self.victim.add(value)
            if self.victim.is_full:
                to3, to2 = self.victim.flush_full()
                self._commit_middle(to3, to2)
            value = self.source.next()
            if value is None:
                return
            self.stats.records_in += 1

        top_eligible = self.top_releasable(value)
        bottom_eligible = self.bottom_releasable(value)
        if top_eligible and bottom_eligible:
            in_side = self.input_heuristic.choose(value, self.context())
            run = self.current_run
        elif top_eligible:
            in_side = Side.TOP
            run = self.current_run
        elif bottom_eligible:
            in_side = Side.BOTTOM
            run = self.current_run
        else:
            # Fits neither heap nor victim: next run.
            in_side = self._route_disjoint(value)
            run = self.current_run + 1
        self.push(in_side, TaggedRecord(run, value))
