"""Pluggable record formats: typed keys and block-level serialisation.

Every real-file backend (spill, parallel, engine merge) moves records
through newline-delimited text files.  The seed code hard-wired one
record shape — one integer per line — and paid a Python-level
``decode(line)`` call per record in every hot loop.  A
:class:`RecordFormat` replaces those scattered ``encode``/``decode``
callables with one object that

* decodes and encodes **whole blocks** of lines at a time (the built-in
  formats do it with one C-level ``map`` per block, which is where the
  block-batched I/O win of ``repro.engine.block_io`` comes from), and
* knows how to extract the **sort key** from a record (identity for the
  scalar formats; a configurable column for delimited rows).

Formats are plain, attribute-only, top-level classes so instances cross
process boundaries under the ``spawn`` start method (the parallel
partitioned sort ships one to every worker).

Records must be newline-free: one record is one line, always.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core import keycodec

__all__ = [
    "RecordFormat",
    "IntFormat",
    "FloatFormat",
    "FloatRecord",
    "StrFormat",
    "DelimitedFormat",
    "CallableFormat",
    "BinaryRecordFormat",
    "KeyOnlyRecord",
    "INT",
    "FLOAT",
    "STR",
    "FORMAT_NAMES",
    "resolve_format",
    "binary_format",
    "normalize_key",
    "denormalize",
]


def _strip_line(line: str) -> str:
    """Remove the terminator ``readline``/``islice`` leave on a line."""
    return line[:-1] if line.endswith("\n") else line


class RecordFormat:
    """Base class: key extraction plus line/block serialisation.

    Subclasses override the block methods with bulk (C-level) paths;
    the defaults delegate to the per-record ``encode``/``decode`` so a
    minimal format only needs those two.

    Attributes
    ----------
    name:
        Identifier used by the CLI ``--format`` flag and in reports.
    numeric:
        True when records support arithmetic (mean heuristic, victim
        buffer gap computation).  Non-numeric formats still sort fine;
        the engine just avoids the numeric-only 2WRS machinery.
    blank_input_skippable:
        True when a whitespace-only input line cannot possibly be a
        record (the numeric formats), so the CLI's historical blank-
        line tolerance may drop it.  False for text formats, where a
        blank or whitespace line *is* a record and must survive.
    """

    name: str = "custom"
    numeric: bool = False
    blank_input_skippable: bool = False

    # -- per-record ------------------------------------------------------------

    def decode(self, text: str) -> Any:
        """One line (terminator already stripped) -> one record."""
        raise NotImplementedError

    def encode(self, record: Any) -> str:
        """One record -> one line (no terminator)."""
        raise NotImplementedError

    def key(self, record: Any) -> Any:
        """The sort key of ``record`` (identity unless overridden)."""
        return record

    # -- field projection (repro.ops) -----------------------------------------

    #: Number of components in :meth:`key`'s result (1 for scalar keys,
    #: ``len(key_columns)`` for multi-column delimited keys).  The
    #: sort-merge join refuses to compare keys of different arity.
    key_arity: int = 1

    def fields(self, record: Any) -> List[str]:
        """``record`` as a list of field texts (one field for scalars).

        The relational operators (:mod:`repro.ops`) build their output
        rows from field projections; scalar formats expose exactly one
        field — the encoded record itself.
        """
        return [self.encode(record)]

    def project(self, record: Any, columns: Sequence[int]) -> List[str]:
        """The field texts of ``record`` at ``columns`` (0-based).

        Raises a clear :class:`ValueError` naming the record when any
        requested column does not exist — the group-by value column and
        join key projections hit this on ragged rows.
        """
        fields = self.fields(record)
        # Negative indexes are rejected too: Python's from-the-end
        # semantics would silently project the wrong column.
        missing = [c for c in columns if c < 0 or c >= len(fields)]
        if missing:
            raise ValueError(
                f"record has {len(fields)} column(s), column(s) "
                f"{', '.join(map(str, missing))} do not exist: "
                f"{self.encode(record)!r}"
            )
        return [fields[c] for c in columns]

    # -- whole blocks ---------------------------------------------------------

    def decode_block(self, lines: Sequence[str]) -> List[Any]:
        """Decode a block of raw lines (terminators still attached)."""
        decode = self.decode
        return [decode(_strip_line(line)) for line in lines]

    def encode_block(self, records: Sequence[Any]) -> str:
        """Encode a block of records into one writable string."""
        encode = self.encode
        return "".join([f"{encode(record)}\n" for record in records])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class IntFormat(RecordFormat):
    """One integer per line — the seed CLI's record shape."""

    name = "int"
    numeric = True
    blank_input_skippable = True

    def decode(self, text: str) -> int:
        return int(text)

    def encode(self, record: Any) -> str:
        return str(record)

    def decode_block(self, lines: Sequence[str]) -> List[Any]:
        # int() tolerates the trailing newline, so no per-line strip.
        return list(map(int, lines))

    def encode_block(self, records: Sequence[Any]) -> str:
        if not records:
            return ""
        return "\n".join(map(str, records)) + "\n"


class FloatRecord(float):
    """A float that remembers its input spelling (ISSUE 7 satellite 1).

    ``repr`` canonicalisation hid a round-trip bug behind plain
    ``float`` records: ``1e3`` decoded to ``1000.0`` and was written
    back as ``1000.0``, and ``-0.0`` could come back as ``0.0`` — a
    sort changed the bytes of records it should only reorder
    (``sort(1)`` never rewrites a line).  The original text rides
    along here and ``encode`` emits it untouched.

    Comparison, equality, hashing and arithmetic are exactly
    ``float``'s — the text is cargo, not identity.  ``-0.0`` and
    ``0.0`` (or ``1e3`` and ``1000.0``) still compare *equal*, so
    every backend orders equal values stably (input order under the
    stable in-memory sorts, stream order under the merge heap's
    index tiebreak) and output stays byte-identical across backends
    and with plain-float inputs from API callers.
    """

    __slots__ = ("text",)

    def __new__(cls, value: float, text: Optional[str] = None) -> "FloatRecord":
        self = super().__new__(cls, value)
        self.text = float.__repr__(self) if text is None else text
        return self

    def __reduce__(self) -> Tuple[Any, ...]:
        return (FloatRecord, (float.__float__(self), self.text))


class FloatFormat(RecordFormat):
    """One float per line, spelling-preserving (:class:`FloatRecord`).

    ``encode`` writes back the record's original text (``1e3`` stays
    ``1e3``); records synthesised as plain floats (datasets, tests)
    encode via ``repr``, which round-trips the value exactly.

    NaN is rejected with a :class:`ValueError`: it is unordered
    against everything, so one NaN record would silently break every
    backend's total-order assumption (the merge heap, ``sorted()``,
    and the byte-identical-across-backends guarantee).  Infinities are
    ordered and pass through fine.
    """

    name = "float"
    numeric = True
    blank_input_skippable = True

    def decode(self, text: str) -> float:
        value = float(text)
        if math.isnan(value):
            raise ValueError(
                f"NaN records are unorderable and cannot be sorted: {text!r}"
            )
        return FloatRecord(value, text)

    def encode(self, record: Any) -> str:
        if isinstance(record, FloatRecord):
            return record.text
        return repr(record)

    def decode_block(self, lines: Sequence[str]) -> List[Any]:
        values = list(map(float, lines))
        # One C-level pass; any() short-circuits on the first NaN.
        if any(map(math.isnan, values)):
            bad = next(
                line for line, value in zip(lines, values)
                if math.isnan(value)
            )
            raise ValueError(
                f"NaN records are unorderable and cannot be sorted: "
                f"{_strip_line(bad)!r}"
            )
        return [
            FloatRecord(value, _strip_line(line))
            for value, line in zip(values, lines)
        ]

    def encode_block(self, records: Sequence[Any]) -> str:
        if not records:
            return ""
        encode = self.encode
        return "\n".join([encode(record) for record in records]) + "\n"


class StrFormat(RecordFormat):
    """One opaque (newline-free) string per line, compared as-is."""

    name = "str"
    numeric = False

    def decode(self, text: str) -> str:
        return text

    def encode(self, record: Any) -> str:
        return record

    def decode_block(self, lines: Sequence[str]) -> List[Any]:
        return [_strip_line(line) for line in lines]

    def encode_block(self, records: Sequence[Any]) -> str:
        if not records:
            return ""
        return "\n".join(records) + "\n"


def _parse_key(text: str) -> Any:
    """Key column value as a ``(type_rank, value)`` pair.

    Numeric-looking fields (rank 0) compare numerically and sort
    before text fields (rank 1), which compare lexicographically — a
    *total* order even for columns that mix numbers and text, where a
    bare int-or-str fallback would crash the merge heap with a
    ``TypeError`` on the first cross-type comparison.  A literal NaN
    is rejected — it is unordered against every float, so it would
    silently corrupt the merge order.  Python's underscore numeric
    literals (``int("1_2") == 12``) are NOT honoured: ID-like tokens
    such as ``1_2`` stay text, matching what any sort utility does.
    """
    if "_" in text:
        return (1, text)
    try:
        return (0, int(text))
    except ValueError:
        try:
            value = float(text)
        except ValueError:
            return (1, text)
        if math.isnan(value):
            raise ValueError(
                f"NaN key values are unorderable and cannot be "
                f"sorted: {text!r}"
            )
        return (0, value)


class DelimitedFormat(RecordFormat):
    """Delimited rows sorted by one or more columns (``--key N[,M...]``).

    A decoded record is the tuple ``(key, line)`` — tuple comparison
    orders by the key column(s) first and breaks ties on the full row
    text, so the sort is total and deterministic for any input.  A
    single-column key is a ``(type_rank, value)`` pair from
    :func:`_parse_key` (numeric fields sort before text fields); a
    multi-column key is a tuple of such pairs, compared column by
    column.  The encoded form is the original row, byte-for-byte.

    Blank and whitespace-only input lines are treated as skippable
    separators (``blank_input_skippable``): they are never data rows.

    **Empty vs. missing key columns** (ISSUE 7 satellite 2) — the two
    look alike but are different inputs and take explicitly different,
    backend-independent paths:

    * an *empty* key column (``a,,c`` with ``--key 1``: the delimiter
      is present, the field is ``""``) is data.  It parses as the text
      pair ``(1, "")``, which sorts after every numeric key and before
      every non-empty text key — GNU ``sort -t, -k2`` places empty
      fields the same way.
    * a *missing* key column (``a`` with ``--key 1``: too few
      delimiters) is a malformed row and raises ``ValueError("row has
      N column(s), key column M does not exist: ...")``.

    Both behaviors are identical across the serial, parallel, and ops
    backends because every backend decodes rows through this one
    method — there is no second parse path that could disagree
    (``tests/test_binary_spill.py`` pins this per backend).
    """

    name = "delimited"
    numeric = False  # records are tuples; no arithmetic on them
    blank_input_skippable = True

    def __init__(
        self,
        delimiter: str = ",",
        key_column: Union[int, Sequence[int]] = 0,
    ) -> None:
        if len(delimiter) != 1 or delimiter == "\n":
            raise ValueError(
                f"delimiter must be a single non-newline character, "
                f"got {delimiter!r}"
            )
        if isinstance(key_column, int):
            columns = (key_column,)
        else:
            columns = tuple(key_column)
            if not columns:
                raise ValueError("at least one key column is required")
        for column in columns:
            if not isinstance(column, int) or column < 0:
                raise ValueError(
                    f"key columns must be non-negative integers, "
                    f"got {column!r}"
                )
        self.delimiter = delimiter
        #: All key columns, in comparison order.
        self.key_columns = columns
        #: The first key column (historical single-column attribute).
        self.key_column = columns[0]
        self.key_arity = len(columns)
        spec = ",".join(map(str, columns))
        self.name = f"csv[{spec}]" if delimiter == "," else (
            f"tsv[{spec}]" if delimiter == "\t"
            else f"delimited[{delimiter!r}:{spec}]"
        )

    def _key_of_fields(self, fields: Sequence[str], text: str) -> Any:
        last = max(self.key_columns)
        if last >= len(fields):
            raise ValueError(
                f"row has {len(fields)} column(s), key column "
                f"{last} does not exist: {text!r}"
            )
        if len(self.key_columns) == 1:
            return _parse_key(fields[self.key_columns[0]])
        return tuple(_parse_key(fields[c]) for c in self.key_columns)

    def decode(self, text: str) -> Any:
        fields = text.split(self.delimiter)
        return (self._key_of_fields(fields, text), text)

    def encode(self, record: Any) -> str:
        return record[1]

    def key(self, record: Any) -> Any:
        return record[0]

    def fields(self, record: Any) -> List[str]:
        return record[1].split(self.delimiter)

    def decode_block(self, lines: Sequence[str]) -> List[Any]:
        decode = self.decode
        return [decode(_strip_line(line)) for line in lines]

    def encode_block(self, records: Sequence[Any]) -> str:
        if not records:
            return ""
        return "\n".join([record[1] for record in records]) + "\n"

    def __reduce__(self) -> Tuple[Any, ...]:
        # The name attribute is derived; reconstruct from the inputs so
        # instances stay picklable for spawn workers.
        return (DelimitedFormat, (self.delimiter, self.key_columns))


class CallableFormat(RecordFormat):
    """Adapter for the legacy ``encode``/``decode`` callable pair.

    Keeps :class:`~repro.sort.spill.FileSpillSort`'s original
    constructor contract working; block operations fall back to one
    call per record, which is exactly the seed behaviour (and the
    line-at-a-time baseline ``benchmarks/bench_block_io.py`` measures).
    """

    name = "callable"
    numeric = False
    blank_input_skippable = True  # the seed CLI's integer tolerance

    def __init__(
        self,
        encode: Callable[[Any], str],
        decode: Callable[[str], Any],
    ) -> None:
        self._encode = encode
        self._decode = decode

    def decode(self, text: str) -> Any:
        return self._decode(text)

    def encode(self, record: Any) -> str:
        return self._encode(record)

    def __reduce__(self) -> Tuple[Any, ...]:
        return (CallableFormat, (self._encode, self._decode))


def _key_normalizer(fmt: "RecordFormat") -> Callable[[Any], bytes]:
    """The order-preserving key encoder for ``fmt``'s key type."""
    if isinstance(fmt, BinaryRecordFormat):
        return fmt._normalize
    if isinstance(fmt, IntFormat):
        return keycodec.encode_int_key
    if isinstance(fmt, FloatFormat):
        return keycodec.encode_float_key
    if isinstance(fmt, StrFormat):
        return keycodec.encode_str_key
    if isinstance(fmt, DelimitedFormat):
        arity = fmt.key_arity
        return lambda key: keycodec.encode_column_key(key, arity)
    raise ValueError(
        f"format {fmt.name!r} has no binary key codec; binary spill "
        f"needs one of the built-in formats (int/float/str/delimited)"
    )


def _key_denormalizer(fmt: "RecordFormat") -> Callable[[bytes], Any]:
    """The inverse of :func:`_key_normalizer` (up to ``==``)."""
    if isinstance(fmt, BinaryRecordFormat):
        return fmt._denormalize
    if isinstance(fmt, IntFormat):
        return keycodec.decode_int_key
    if isinstance(fmt, FloatFormat):
        return keycodec.decode_float_key
    if isinstance(fmt, StrFormat):
        return keycodec.decode_str_key
    if isinstance(fmt, DelimitedFormat):
        arity = fmt.key_arity
        return lambda data: keycodec.decode_column_key(data, arity)
    raise ValueError(f"format {fmt.name!r} has no binary key codec")


def normalize_key(fmt: "RecordFormat", key: Any) -> bytes:
    """``fmt``'s sort key as order-preserving bytes (DESIGN.md §14).

    The contract — verified by ``tests/test_keycodec.py`` across all
    formats and input distributions — is order isomorphism
    (``normalize_key(a) < normalize_key(b)`` iff key order says
    ``a < b``) and equality faithfulness (equal keys yield identical
    bytes, so tie-breaks and group boundaries cannot diverge).
    """
    return _key_normalizer(fmt)(key)


def denormalize(fmt: "RecordFormat", data: bytes) -> Any:
    """Decode :func:`normalize_key` bytes back to a key.

    Round-trips up to ``==``: equal keys encode identically by
    design, so e.g. a delimited ``1.0`` comes back as ``1`` (they are
    the same key) and ``-0.0`` comes back as ``0.0``.
    """
    return _key_denormalizer(fmt)(data)


class KeyOnlyRecord:
    """A binary float record whose payload is cargo, not identity.

    Scalar floats are the one built-in format where records with
    *equal* keys can carry different payloads (``-0.0`` vs ``0.0``,
    ``1e3`` vs ``1000.0``) while the text path orders them *stably*:
    equal values compare equal, so the stable in-memory sorts keep
    input order and the merge heap falls through to its stream-index
    tiebreak.  A plain ``(key, payload)`` tuple would tiebreak on the
    payload bytes and diverge from that order, so float binary
    records compare, hash and equate by their key bytes alone — the
    payload rides along for the output stage, exactly like
    :class:`FloatRecord`'s text.

    The record also answers the numeric questions 2WRS asks of float
    records (the Mean heuristic's running sum, the victim buffer's
    gap subtraction, ``value > mean``) through :attr:`value` — the
    float the key bytes encode — so the binary path runs the *same*
    2WRS configuration and makes the *same* routing decisions as the
    text path instead of degrading to the non-numeric coin flip.
    ``value`` is carried from ``decode`` when available and otherwise
    lazily recovered from the key bytes (one ``struct`` unpack, only
    ever paid during run generation — the merge loop compares bytes).
    """

    __slots__ = ("key", "payload", "_value")

    def __init__(
        self, key: bytes, payload: bytes, value: Optional[float] = None
    ) -> None:
        self.key = key
        self.payload = payload
        self._value = value

    @property
    def value(self) -> float:
        v = self._value
        if v is None:
            v = self._value = keycodec.decode_float_key(self.key)
        return v

    def __iter__(self) -> Iterator[bytes]:
        yield self.key
        yield self.payload

    def __getitem__(self, index: int) -> bytes:
        return self.payload if index else self.key

    def __float__(self) -> float:
        return float(self.value)

    # -- ordering: key bytes against peers, value against numbers -------------

    def __lt__(self, other: Any) -> Any:
        if isinstance(other, KeyOnlyRecord):
            return self.key < other.key
        if isinstance(other, (int, float)):
            return self.value < other
        return NotImplemented

    def __le__(self, other: Any) -> Any:
        if isinstance(other, KeyOnlyRecord):
            return self.key <= other.key
        if isinstance(other, (int, float)):
            return self.value <= other
        return NotImplemented

    def __gt__(self, other: Any) -> Any:
        if isinstance(other, KeyOnlyRecord):
            return self.key > other.key
        if isinstance(other, (int, float)):
            return self.value > other
        return NotImplemented

    def __ge__(self, other: Any) -> Any:
        if isinstance(other, KeyOnlyRecord):
            return self.key >= other.key
        if isinstance(other, (int, float)):
            return self.value >= other
        return NotImplemented

    def __eq__(self, other: Any) -> Any:
        if isinstance(other, KeyOnlyRecord):
            return self.key == other.key
        if isinstance(other, (int, float)):
            return self.value == other
        return NotImplemented

    def __ne__(self, other: Any) -> Any:
        if isinstance(other, KeyOnlyRecord):
            return self.key != other.key
        if isinstance(other, (int, float)):
            return self.value != other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.key)

    # -- arithmetic for the 2WRS numeric machinery ----------------------------

    def __add__(self, other: Any) -> Any:
        if isinstance(other, KeyOnlyRecord):
            return self.value + other.value
        if isinstance(other, (int, float)):
            return self.value + other
        return NotImplemented

    def __radd__(self, other: Any) -> Any:
        if isinstance(other, (int, float)):
            return other + self.value
        return NotImplemented

    def __sub__(self, other: Any) -> Any:
        if isinstance(other, KeyOnlyRecord):
            return self.value - other.value
        if isinstance(other, (int, float)):
            return self.value - other
        return NotImplemented

    def __rsub__(self, other: Any) -> Any:
        if isinstance(other, (int, float)):
            return other - self.value
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyOnlyRecord({self.key!r}, {self.payload!r})"

    def __reduce__(self) -> Tuple[Any, ...]:
        return (KeyOnlyRecord, (self.key, self.payload, self._value))


class BinaryRecordFormat(RecordFormat):
    """Wraps a base format so records carry pre-normalised byte keys.

    A binary record is the pair ``(key_bytes, payload_bytes)``:
    ``key_bytes`` is :func:`normalize_key` of the base sort key,
    ``payload_bytes`` the base format's canonical encoded line as
    UTF-8.  Python's tuple comparison then compares raw bytes — key
    first, payload as the tie-break — which is exactly the text
    path's ``(key, row text)`` order, so every downstream consumer
    (run generation, the merge heap, shard cut points, the ops
    operators) orders records with C-level ``bytes`` compares and
    never decodes in a hot loop.

    Two record shapes, one comparison contract — *match the base
    format's order exactly*:

    * int / str / delimited records are plain tuples.  For the
      scalars the payload is determined by the key, so the tuple
      tiebreak is a no-op; for delimited rows the text path itself
      tiebreaks on the full row text, which is what the payload
      bytes compare as.
    * float records are :class:`KeyOnlyRecord`s (``record_factory``),
      because equal float values with different spellings must stay
      *equal* — see that class's docstring.

    The wrapper speaks both boundaries:

    * the *text* side (``decode``/``decode_block`` on input lines,
      ``encode``/``encode_block`` back to output lines) normalises on
      the way in and emits the stored payload untouched on the way
      out, so a binary engine is a drop-in behind the same text
      files;
    * the *binary* side is handled by ``repro.engine.block_io``'s
      length-prefixed ``RBLK`` framing (``spill_binary`` flags it),
      which moves the tuples to and from spill files without any
      re-encoding.

    ``numeric`` mirrors 2WRS behaviour, not record shape.  For a
    float base it is True — :class:`KeyOnlyRecord` answers the 2WRS
    numeric machinery through its ``value``, so the binary path runs
    the same configuration (and produces the same runs) as the text
    path; this matters because equal float keys carry *distinct*
    payloads, making run composition visible in the output.  For an
    int base it stays False: tuples have no arithmetic, the planner
    downgrades 2WRS to the order-based setup, and the differing run
    boundaries are invisible because equal int keys always carry
    identical payload bytes.
    """

    numeric = False
    #: block_io routes files of this format through binary framing.
    spill_binary = True

    def __init__(self, base: RecordFormat) -> None:
        if isinstance(base, BinaryRecordFormat):
            base = base.base
        self.base = base
        self.name = f"bin[{base.name}]"
        self.blank_input_skippable = base.blank_input_skippable
        self.key_arity = base.key_arity
        self._normalize = _key_normalizer(base)
        self._denormalize = _key_denormalizer(base)
        #: ``(key, payload) -> record``; None means a plain tuple.
        #: block_io's binary reader rebuilds records through this, so
        #: a spill round trip preserves the comparison semantics.
        self.record_factory = (
            KeyOnlyRecord if isinstance(base, FloatFormat) else None
        )
        if self.record_factory is not None:
            self.numeric = True

    # -- text side (input/output boundary) ------------------------------------

    def decode(self, text: str) -> Any:
        base = self.base
        record = base.decode(text)
        value = base.key(record)
        key = self._normalize(value)
        payload = base.encode(record).encode("utf-8")
        if self.record_factory is not None:
            # Pass the decoded key along so run generation's numeric
            # machinery never has to re-derive it from the key bytes.
            return self.record_factory(key, payload, float(value))
        return (key, payload)

    def encode(self, record: Any) -> str:
        return record[1].decode("utf-8")

    def decode_block(self, lines: Sequence[str]) -> List[Any]:
        base = self.base
        normalize, key, encode = self._normalize, base.key, base.encode
        factory = self.record_factory
        if factory is not None:
            return [
                factory(
                    normalize(value := key(record)),
                    encode(record).encode("utf-8"),
                    float(value),
                )
                for record in base.decode_block(lines)
            ]
        return [
            (normalize(key(record)), encode(record).encode("utf-8"))
            for record in base.decode_block(lines)
        ]

    def encode_block(self, records: Sequence[Any]) -> str:
        if not records:
            return ""
        payloads = b"\n".join([record[1] for record in records])
        return (payloads + b"\n").decode("utf-8")

    # -- keys and fields -------------------------------------------------------

    def key(self, record: Any) -> bytes:
        return record[0]

    def base_record(self, record: Any) -> Any:
        """The base format's record, re-decoded from the payload.

        Output-stage helper for the ops operators (value extraction,
        field projection); never called in a merge loop.
        """
        return self.base.decode(record[1].decode("utf-8"))

    def fields(self, record: Any) -> List[str]:
        return self.base.fields(self.base_record(record))

    def __reduce__(self) -> Tuple[Any, ...]:
        # Reconstruct through the constructor so spawn workers rebuild
        # the codec closures (they are not picklable themselves).
        return (BinaryRecordFormat, (self.base,))


def binary_format(fmt: RecordFormat) -> BinaryRecordFormat:
    """``fmt`` wrapped for binary spill (idempotent)."""
    if isinstance(fmt, BinaryRecordFormat):
        return fmt
    return BinaryRecordFormat(fmt)


#: Shared stateless instances (all formats are stateless and reusable).
INT = IntFormat()
FLOAT = FloatFormat()
STR = StrFormat()

#: Names accepted by :func:`resolve_format` and the CLI ``--format``.
FORMAT_NAMES = ("int", "float", "str", "csv", "tsv")


def resolve_format(
    name: str,
    key: Union[int, Sequence[int]] = 0,
    delimiter: Optional[str] = None,
) -> RecordFormat:
    """Build the :class:`RecordFormat` a CLI spec names.

    ``key`` — an int or a sequence of ints for multi-column keys — and
    ``delimiter`` (for exotic separators) only apply to the delimited
    formats; ``csv`` and ``tsv`` fix the separator.
    """
    if name == "int":
        return INT
    if name == "float":
        return FLOAT
    if name == "str":
        return STR
    if name == "csv":
        return DelimitedFormat(delimiter or ",", key)
    if name == "tsv":
        return DelimitedFormat(delimiter or "\t", key)
    raise ValueError(
        f"unknown record format {name!r}; known: {', '.join(FORMAT_NAMES)}"
    )
