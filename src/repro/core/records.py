"""Pluggable record formats: typed keys and block-level serialisation.

Every real-file backend (spill, parallel, engine merge) moves records
through newline-delimited text files.  The seed code hard-wired one
record shape — one integer per line — and paid a Python-level
``decode(line)`` call per record in every hot loop.  A
:class:`RecordFormat` replaces those scattered ``encode``/``decode``
callables with one object that

* decodes and encodes **whole blocks** of lines at a time (the built-in
  formats do it with one C-level ``map`` per block, which is where the
  block-batched I/O win of ``repro.engine.block_io`` comes from), and
* knows how to extract the **sort key** from a record (identity for the
  scalar formats; a configurable column for delimited rows).

Formats are plain, attribute-only, top-level classes so instances cross
process boundaries under the ``spawn`` start method (the parallel
partitioned sort ships one to every worker).

Records must be newline-free: one record is one line, always.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "RecordFormat",
    "IntFormat",
    "FloatFormat",
    "StrFormat",
    "DelimitedFormat",
    "CallableFormat",
    "INT",
    "FLOAT",
    "STR",
    "FORMAT_NAMES",
    "resolve_format",
]


def _strip_line(line: str) -> str:
    """Remove the terminator ``readline``/``islice`` leave on a line."""
    return line[:-1] if line.endswith("\n") else line


class RecordFormat:
    """Base class: key extraction plus line/block serialisation.

    Subclasses override the block methods with bulk (C-level) paths;
    the defaults delegate to the per-record ``encode``/``decode`` so a
    minimal format only needs those two.

    Attributes
    ----------
    name:
        Identifier used by the CLI ``--format`` flag and in reports.
    numeric:
        True when records support arithmetic (mean heuristic, victim
        buffer gap computation).  Non-numeric formats still sort fine;
        the engine just avoids the numeric-only 2WRS machinery.
    blank_input_skippable:
        True when a whitespace-only input line cannot possibly be a
        record (the numeric formats), so the CLI's historical blank-
        line tolerance may drop it.  False for text formats, where a
        blank or whitespace line *is* a record and must survive.
    """

    name: str = "custom"
    numeric: bool = False
    blank_input_skippable: bool = False

    # -- per-record ------------------------------------------------------------

    def decode(self, text: str) -> Any:
        """One line (terminator already stripped) -> one record."""
        raise NotImplementedError

    def encode(self, record: Any) -> str:
        """One record -> one line (no terminator)."""
        raise NotImplementedError

    def key(self, record: Any) -> Any:
        """The sort key of ``record`` (identity unless overridden)."""
        return record

    # -- field projection (repro.ops) -----------------------------------------

    #: Number of components in :meth:`key`'s result (1 for scalar keys,
    #: ``len(key_columns)`` for multi-column delimited keys).  The
    #: sort-merge join refuses to compare keys of different arity.
    key_arity: int = 1

    def fields(self, record: Any) -> List[str]:
        """``record`` as a list of field texts (one field for scalars).

        The relational operators (:mod:`repro.ops`) build their output
        rows from field projections; scalar formats expose exactly one
        field — the encoded record itself.
        """
        return [self.encode(record)]

    def project(self, record: Any, columns: Sequence[int]) -> List[str]:
        """The field texts of ``record`` at ``columns`` (0-based).

        Raises a clear :class:`ValueError` naming the record when any
        requested column does not exist — the group-by value column and
        join key projections hit this on ragged rows.
        """
        fields = self.fields(record)
        # Negative indexes are rejected too: Python's from-the-end
        # semantics would silently project the wrong column.
        missing = [c for c in columns if c < 0 or c >= len(fields)]
        if missing:
            raise ValueError(
                f"record has {len(fields)} column(s), column(s) "
                f"{', '.join(map(str, missing))} do not exist: "
                f"{self.encode(record)!r}"
            )
        return [fields[c] for c in columns]

    # -- whole blocks ---------------------------------------------------------

    def decode_block(self, lines: Sequence[str]) -> List[Any]:
        """Decode a block of raw lines (terminators still attached)."""
        decode = self.decode
        return [decode(_strip_line(line)) for line in lines]

    def encode_block(self, records: Sequence[Any]) -> str:
        """Encode a block of records into one writable string."""
        encode = self.encode
        return "".join([f"{encode(record)}\n" for record in records])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class IntFormat(RecordFormat):
    """One integer per line — the seed CLI's record shape."""

    name = "int"
    numeric = True
    blank_input_skippable = True

    def decode(self, text: str) -> int:
        return int(text)

    def encode(self, record: Any) -> str:
        return str(record)

    def decode_block(self, lines: Sequence[str]) -> List[Any]:
        # int() tolerates the trailing newline, so no per-line strip.
        return list(map(int, lines))

    def encode_block(self, records: Sequence[Any]) -> str:
        if not records:
            return ""
        return "\n".join(map(str, records)) + "\n"


class FloatFormat(RecordFormat):
    """One float per line; ``repr`` round-trips the value exactly.

    NaN is rejected with a :class:`ValueError`: it is unordered
    against everything, so one NaN record would silently break every
    backend's total-order assumption (the merge heap, ``sorted()``,
    and the byte-identical-across-backends guarantee).  Infinities are
    ordered and pass through fine.
    """

    name = "float"
    numeric = True
    blank_input_skippable = True

    def decode(self, text: str) -> float:
        value = float(text)
        if math.isnan(value):
            raise ValueError(
                f"NaN records are unorderable and cannot be sorted: {text!r}"
            )
        return value

    def encode(self, record: Any) -> str:
        return repr(record)

    def decode_block(self, lines: Sequence[str]) -> List[Any]:
        values = list(map(float, lines))
        # One C-level pass; any() short-circuits on the first NaN.
        if any(map(math.isnan, values)):
            bad = next(
                line for line, value in zip(lines, values)
                if math.isnan(value)
            )
            raise ValueError(
                f"NaN records are unorderable and cannot be sorted: "
                f"{_strip_line(bad)!r}"
            )
        return values

    def encode_block(self, records: Sequence[Any]) -> str:
        if not records:
            return ""
        return "\n".join(map(repr, records)) + "\n"


class StrFormat(RecordFormat):
    """One opaque (newline-free) string per line, compared as-is."""

    name = "str"
    numeric = False

    def decode(self, text: str) -> str:
        return text

    def encode(self, record: Any) -> str:
        return record

    def decode_block(self, lines: Sequence[str]) -> List[Any]:
        return [_strip_line(line) for line in lines]

    def encode_block(self, records: Sequence[Any]) -> str:
        if not records:
            return ""
        return "\n".join(records) + "\n"


def _parse_key(text: str) -> Any:
    """Key column value as a ``(type_rank, value)`` pair.

    Numeric-looking fields (rank 0) compare numerically and sort
    before text fields (rank 1), which compare lexicographically — a
    *total* order even for columns that mix numbers and text, where a
    bare int-or-str fallback would crash the merge heap with a
    ``TypeError`` on the first cross-type comparison.  A literal NaN
    is rejected — it is unordered against every float, so it would
    silently corrupt the merge order.  Python's underscore numeric
    literals (``int("1_2") == 12``) are NOT honoured: ID-like tokens
    such as ``1_2`` stay text, matching what any sort utility does.
    """
    if "_" in text:
        return (1, text)
    try:
        return (0, int(text))
    except ValueError:
        try:
            value = float(text)
        except ValueError:
            return (1, text)
        if math.isnan(value):
            raise ValueError(
                f"NaN key values are unorderable and cannot be "
                f"sorted: {text!r}"
            )
        return (0, value)


class DelimitedFormat(RecordFormat):
    """Delimited rows sorted by one or more columns (``--key N[,M...]``).

    A decoded record is the tuple ``(key, line)`` — tuple comparison
    orders by the key column(s) first and breaks ties on the full row
    text, so the sort is total and deterministic for any input.  A
    single-column key is a ``(type_rank, value)`` pair from
    :func:`_parse_key` (numeric fields sort before text fields); a
    multi-column key is a tuple of such pairs, compared column by
    column.  The encoded form is the original row, byte-for-byte.

    Blank and whitespace-only input lines are treated as skippable
    separators (``blank_input_skippable``): they are never data rows,
    and a row genuinely missing a key column still raises a clear
    :class:`ValueError`.
    """

    name = "delimited"
    numeric = False  # records are tuples; no arithmetic on them
    blank_input_skippable = True

    def __init__(
        self,
        delimiter: str = ",",
        key_column: Union[int, Sequence[int]] = 0,
    ) -> None:
        if len(delimiter) != 1 or delimiter == "\n":
            raise ValueError(
                f"delimiter must be a single non-newline character, "
                f"got {delimiter!r}"
            )
        if isinstance(key_column, int):
            columns = (key_column,)
        else:
            columns = tuple(key_column)
            if not columns:
                raise ValueError("at least one key column is required")
        for column in columns:
            if not isinstance(column, int) or column < 0:
                raise ValueError(
                    f"key columns must be non-negative integers, "
                    f"got {column!r}"
                )
        self.delimiter = delimiter
        #: All key columns, in comparison order.
        self.key_columns = columns
        #: The first key column (historical single-column attribute).
        self.key_column = columns[0]
        self.key_arity = len(columns)
        spec = ",".join(map(str, columns))
        self.name = f"csv[{spec}]" if delimiter == "," else (
            f"tsv[{spec}]" if delimiter == "\t"
            else f"delimited[{delimiter!r}:{spec}]"
        )

    def _key_of_fields(self, fields: Sequence[str], text: str) -> Any:
        last = max(self.key_columns)
        if last >= len(fields):
            raise ValueError(
                f"row has {len(fields)} column(s), key column "
                f"{last} does not exist: {text!r}"
            )
        if len(self.key_columns) == 1:
            return _parse_key(fields[self.key_columns[0]])
        return tuple(_parse_key(fields[c]) for c in self.key_columns)

    def decode(self, text: str) -> Any:
        fields = text.split(self.delimiter)
        return (self._key_of_fields(fields, text), text)

    def encode(self, record: Any) -> str:
        return record[1]

    def key(self, record: Any) -> Any:
        return record[0]

    def fields(self, record: Any) -> List[str]:
        return record[1].split(self.delimiter)

    def decode_block(self, lines: Sequence[str]) -> List[Any]:
        decode = self.decode
        return [decode(_strip_line(line)) for line in lines]

    def encode_block(self, records: Sequence[Any]) -> str:
        if not records:
            return ""
        return "\n".join([record[1] for record in records]) + "\n"

    def __reduce__(self) -> Tuple[Any, ...]:
        # The name attribute is derived; reconstruct from the inputs so
        # instances stay picklable for spawn workers.
        return (DelimitedFormat, (self.delimiter, self.key_columns))


class CallableFormat(RecordFormat):
    """Adapter for the legacy ``encode``/``decode`` callable pair.

    Keeps :class:`~repro.sort.spill.FileSpillSort`'s original
    constructor contract working; block operations fall back to one
    call per record, which is exactly the seed behaviour (and the
    line-at-a-time baseline ``benchmarks/bench_block_io.py`` measures).
    """

    name = "callable"
    numeric = False
    blank_input_skippable = True  # the seed CLI's integer tolerance

    def __init__(
        self,
        encode: Callable[[Any], str],
        decode: Callable[[str], Any],
    ) -> None:
        self._encode = encode
        self._decode = decode

    def decode(self, text: str) -> Any:
        return self._decode(text)

    def encode(self, record: Any) -> str:
        return self._encode(record)

    def __reduce__(self) -> Tuple[Any, ...]:
        return (CallableFormat, (self._encode, self._decode))


#: Shared stateless instances (all formats are stateless and reusable).
INT = IntFormat()
FLOAT = FloatFormat()
STR = StrFormat()

#: Names accepted by :func:`resolve_format` and the CLI ``--format``.
FORMAT_NAMES = ("int", "float", "str", "csv", "tsv")


def resolve_format(
    name: str,
    key: Union[int, Sequence[int]] = 0,
    delimiter: Optional[str] = None,
) -> RecordFormat:
    """Build the :class:`RecordFormat` a CLI spec names.

    ``key`` — an int or a sequence of ints for multi-column keys — and
    ``delimiter`` (for exotic separators) only apply to the delimited
    formats; ``csv`` and ``tsv`` fix the separator.
    """
    if name == "int":
        return INT
    if name == "float":
        return FLOAT
    if name == "str":
        return STR
    if name == "csv":
        return DelimitedFormat(delimiter or ",", key)
    if name == "tsv":
        return DelimitedFormat(delimiter or "\t", key)
    raise ValueError(
        f"unknown record format {name!r}; known: {', '.join(FORMAT_NAMES)}"
    )
