"""2WRS configuration: the factor space of the paper's ANOVA study.

A configuration fixes the four factors of Section 5.2 (Table 5.1):

* ``buffer_setup``   (factor i): which of the input / victim buffers exist,
* ``buffer_fraction``(factor j): share of total memory given to buffers,
* ``input_heuristic``(factor k) and ``output_heuristic`` (factor l).

:data:`RECOMMENDED` is the configuration the paper selects in Section
5.3 and uses for every Chapter 6 experiment; :data:`TABLE_5_13_CONFIGS`
are the three parameterisations compared against RS in Table 5.13.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runs.base import RunGenerator

#: Valid buffer setups (factor i levels 0..2 of Table 5.1).
BUFFER_SETUPS = ("input", "both", "victim")

#: Buffer-size factor levels of Table 5.1 (fraction of total memory).
BUFFER_FRACTIONS = (0.0002, 0.002, 0.02, 0.20)


@dataclass(frozen=True, slots=True)
class TwoWayConfig:
    """One point of the 2WRS configuration space.

    Attributes
    ----------
    buffer_setup:
        "input", "victim", or "both".
    buffer_fraction:
        Fraction of the total memory dedicated to buffers (split evenly
        when both exist); the heaps get the remainder.
    input_heuristic / output_heuristic:
        Names registered in :mod:`repro.core.heuristics`.
    seed:
        Seed for the stochastic heuristics (None = nondeterministic).
    """

    buffer_setup: str = "both"
    buffer_fraction: float = 0.02
    input_heuristic: str = "mean"
    output_heuristic: str = "random"
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if self.buffer_setup not in BUFFER_SETUPS:
            raise ValueError(
                f"buffer_setup must be one of {BUFFER_SETUPS}, "
                f"got {self.buffer_setup!r}"
            )
        if not 0.0 <= self.buffer_fraction < 1.0:
            raise ValueError(
                f"buffer_fraction must be in [0, 1), got {self.buffer_fraction}"
            )

    def partition_memory(self, memory_capacity: int) -> Tuple[int, int, int]:
        """Split total memory into (heap, input buffer, victim buffer) records.

        The total always equals ``memory_capacity`` — the paper stresses
        that buffer memory is taken *from* the sorting memory, not added
        to it.
        """
        buffer_records = int(round(memory_capacity * self.buffer_fraction))
        buffer_records = min(buffer_records, memory_capacity - 1)
        if self.buffer_setup == "both":
            input_records = buffer_records // 2
            victim_records = buffer_records - input_records
        elif self.buffer_setup == "input":
            input_records = buffer_records
            victim_records = 0
        else:  # "victim"
            input_records = 0
            victim_records = buffer_records
        heap_records = memory_capacity - input_records - victim_records
        return heap_records, input_records, victim_records


#: Run-generation algorithms instantiable from a :class:`GeneratorSpec`.
ALGORITHMS = ("rs", "2wrs", "lss", "brs")


@dataclass(frozen=True, slots=True)
class GeneratorSpec:
    """Picklable description of how to build a run generator.

    A :class:`~repro.runs.base.RunGenerator` holds heaps, buffers, and
    live stats, none of which should cross a process boundary; a spec
    is the plain-data recipe instead.  The parallel partitioned sort
    ships one spec to every worker process (spawn-safe) and each worker
    builds its own private generator from it.

    Attributes
    ----------
    algorithm:
        One of :data:`ALGORITHMS` ("rs", "2wrs", "lss", "brs").
    memory:
        Working memory in records for the built generator.
    two_way:
        2WRS factor configuration; ignored by the other algorithms.
    """

    algorithm: str = "2wrs"
    memory: int = 10_000
    two_way: Optional[TwoWayConfig] = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {ALGORITHMS}, got {self.algorithm!r}"
            )
        if self.memory < 1:
            raise ValueError(f"memory must be >= 1, got {self.memory}")

    def with_memory(self, memory: int) -> "GeneratorSpec":
        """The same spec under a different memory grant."""
        return replace(self, memory=memory)

    def build(self) -> "RunGenerator":
        """Instantiate a fresh generator described by this spec."""
        # Imported here: the generator modules import this module.
        from repro.core.two_way import TwoWayReplacementSelection
        from repro.runs.batched import BatchedReplacementSelection
        from repro.runs.load_sort_store import LoadSortStore
        from repro.runs.replacement_selection import ReplacementSelection

        if self.algorithm == "rs":
            return ReplacementSelection(self.memory)
        if self.algorithm == "lss":
            return LoadSortStore(self.memory)
        if self.algorithm == "brs":
            return BatchedReplacementSelection(self.memory)
        return TwoWayReplacementSelection(self.memory, self.two_way)


#: Section 5.3: both buffers, 2 % of memory, Mean input, Random output.
RECOMMENDED = TwoWayConfig(
    buffer_setup="both",
    buffer_fraction=0.02,
    input_heuristic="mean",
    output_heuristic="random",
)

#: The three 2WRS parameterisations of Table 5.13 (all Mean + Random).
TABLE_5_13_CONFIGS: Dict[str, TwoWayConfig] = {
    "cfg1": TwoWayConfig(buffer_setup="input", buffer_fraction=0.0002),
    "cfg2": TwoWayConfig(buffer_setup="both", buffer_fraction=0.20),
    "cfg3": TwoWayConfig(buffer_setup="both", buffer_fraction=0.02),
}
