"""Order-preserving binary sort keys (the memcmp trick, in Python).

Every hot loop in the text path pays a Python-level comparison per
record pair: tuple keys walk ``(type_rank, value)`` pairs, floats
dispatch through ``float.__lt__``, delimited rows re-compare parsed
columns on every heap sift.  Real engines normalise the sort key once,
at decode time, into bytes whose *lexicographic* order equals the
key's logical order — after that, every comparison anywhere in the
pipeline (run generation, the k-way merge heap, shard cut points) is
one C-level ``bytes`` compare.

This module holds the codecs; :class:`repro.core.records.
BinaryRecordFormat` applies them.  The contract, verified exhaustively
by ``tests/test_keycodec.py``:

* **order isomorphism** — ``normalize_key(fmt, a) < normalize_key(fmt,
  b)`` exactly when the text path's key order says ``a < b``;
* **equality faithfulness** — keys that compare equal (``1`` vs
  ``1.0`` in a delimited column, ``-0.0`` vs ``0.0``) produce
  *identical* bytes, so group boundaries and tie-breaks agree with the
  text path byte for byte;
* **round trip** — ``denormalize(fmt, normalize_key(fmt, k)) == k``.

Byte layouts (worked examples in DESIGN.md §14):

``int`` (scalar ``--format int`` keys)
    One header byte encodes sign and magnitude width: ``0x80`` is
    zero; positive values use ``0x80 + n`` (n = magnitude bytes,
    1..8) followed by the big-endian magnitude; negatives mirror it
    below with ``0x80 - n`` and the byte-complemented magnitude.
    Magnitudes wider than 8 bytes (bignums) escape to ``0x89``/
    ``0x77`` plus an explicit 4-byte width (complemented on the
    negative side so wider magnitudes sort more negative).

``float`` (scalar ``--format float`` keys)
    The classic IEEE-754 monotone map: pack big-endian, then flip all
    64 bits for negatives or just the sign bit for non-negatives.
    ``-0.0`` is canonicalised to ``0.0`` first (they compare equal, so
    they must encode identically); NaN is rejected, matching
    :class:`~repro.core.records.FloatFormat`.

``str`` (scalar ``--format str`` keys)
    Raw UTF-8 — UTF-8's lexicographic byte order *is* code-point
    order, which is exactly Python's ``str`` comparison.

Delimited key columns (``(type_rank, value)`` pairs)
    Each column becomes a self-terminating component; multi-column
    keys simply concatenate.  A component opens with its type rank
    (``0x00`` numeric, ``0x01`` text — numbers sort before text,
    matching :func:`repro.core.records._parse_key`).

    Numeric columns mix ``int`` and ``float`` values that must stay
    mutually ordered *and* encode identically when equal, so both are
    mapped to their exact decimal form ``|v| = 0.digits * 10**E``
    (floats through ``as_integer_ratio`` — ``repr`` shortest-form
    digits would collide with nearby exact integers).  The component
    is a class marker (``0x00`` -inf, ``0x01`` negative, ``0x02``
    zero, ``0x03`` positive, ``0x04`` +inf), then for finite non-zero
    values an offset-binary 8-byte exponent and the ASCII digit run
    (trailing zeros stripped) closed by a ``0x00`` terminator;
    negatives complement the exponent-and-digit bytes and terminate
    with ``0xFF`` so bigger magnitudes sort first.

    Text columns are UTF-8 with embedded ``0x00`` escaped as ``0x00
    0xFF`` and a ``0x00`` terminator — the standard prefix-free
    encoding (FoundationDB tuples use the same one).  It stays
    order-correct under concatenation because every byte that can
    follow a terminator (a rank byte or end-of-key) is below ``0xFF``.
"""

from __future__ import annotations

import math
import struct
from typing import Any, Callable, List, Tuple

__all__ = [
    "encode_int_key",
    "decode_int_key",
    "encode_float_key",
    "decode_float_key",
    "encode_str_key",
    "decode_str_key",
    "encode_key_component",
    "decode_key_component",
    "encode_column_key",
    "decode_column_key",
]

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")

_SIGN_BIT = 1 << 63
_ALL_BITS = (1 << 64) - 1


# -- scalar int ---------------------------------------------------------------

def encode_int_key(value: int) -> bytes:
    """Order-preserving bytes for one (arbitrary-precision) int."""
    if value > 0:
        n = (value.bit_length() + 7) >> 3
        mag = value.to_bytes(n, "big")
        if n <= 8:
            return bytes((0x80 + n,)) + mag
        return b"\x89" + _U32.pack(n) + mag
    if value == 0:
        return b"\x80"
    mag_value = -value
    n = (mag_value.bit_length() + 7) >> 3
    comp = (((1 << (n << 3)) - 1) - mag_value).to_bytes(n, "big")
    if n <= 8:
        return bytes((0x80 - n,)) + comp
    return b"\x77" + _U32.pack(0xFFFFFFFF - n) + comp


def decode_int_key(data: bytes) -> int:
    header = data[0]
    if header == 0x80:
        return 0
    if 0x81 <= header <= 0x88:
        return int.from_bytes(data[1:], "big")
    if header == 0x89:
        return int.from_bytes(data[5:], "big")
    if 0x78 <= header <= 0x7F:
        n = 0x80 - header
        return -(((1 << (n << 3)) - 1) - int.from_bytes(data[1:], "big"))
    if header == 0x77:
        (comp_n,) = _U32.unpack_from(data, 1)
        n = 0xFFFFFFFF - comp_n
        return -(((1 << (n << 3)) - 1) - int.from_bytes(data[5:], "big"))
    raise ValueError(f"bad int key header byte {header:#04x}")


# -- scalar float -------------------------------------------------------------

def encode_float_key(value: float) -> bytes:
    """The IEEE-754 monotone bit map (``-0.0`` canonicalised first)."""
    if math.isnan(value):
        raise ValueError("NaN keys are unorderable and cannot be encoded")
    if value == 0.0:
        value = 0.0  # collapse -0.0: equal keys must encode identically
    (bits,) = _U64.unpack(_F64.pack(value))
    if bits & _SIGN_BIT:
        bits ^= _ALL_BITS
    else:
        bits |= _SIGN_BIT
    return _U64.pack(bits)


def decode_float_key(data: bytes) -> float:
    (bits,) = _U64.unpack(data)
    if bits & _SIGN_BIT:
        bits ^= _SIGN_BIT
    else:
        bits ^= _ALL_BITS
    return _F64.unpack(_U64.pack(bits))[0]


# -- scalar str ---------------------------------------------------------------

def encode_str_key(value: str) -> bytes:
    """Raw UTF-8: byte order equals code-point order equals str order."""
    return value.encode("utf-8")


def decode_str_key(data: bytes) -> str:
    return data.decode("utf-8")


# -- delimited key components -------------------------------------------------

def _decimal_parts(value: Any) -> Tuple[int, str]:
    """``(E, digits)`` of the *exact* decimal ``|value| = 0.digits*10**E``.

    Exactness matters: a float's ``repr`` digits are the shortest
    round-tripping form, which can equal a nearby integer's digits
    without the values being equal (``float("1e300") != 10**300``
    but both would render as ``1e+300``).  ``as_integer_ratio`` gives
    the float's true value, so int-vs-float order and equality come
    out exactly as Python compares them.
    """
    if isinstance(value, int):
        digits = str(-value if value < 0 else value)
        return len(digits), digits.rstrip("0")
    numerator, denominator = abs(value).as_integer_ratio()
    shift = denominator.bit_length() - 1  # denominator is a power of two
    digits = str(numerator * 5**shift)
    return len(digits) - shift, digits.rstrip("0")


def encode_key_component(pair: Tuple[int, Any]) -> bytes:
    """One ``(type_rank, value)`` column as a self-terminating component."""
    rank, value = pair
    if rank == 1:
        data = value.encode("utf-8")
        if b"\x00" in data:
            data = data.replace(b"\x00", b"\x00\xff")
        return b"\x01" + data + b"\x00"
    if value == 0:
        return b"\x00\x02"
    if isinstance(value, float):
        if math.isinf(value):
            return b"\x00\x04" if value > 0 else b"\x00\x00"
        if math.isnan(value):
            raise ValueError(
                "NaN keys are unorderable and cannot be encoded"
            )
    exponent, digits = _decimal_parts(value)
    body = _U64.pack(exponent + _SIGN_BIT) + digits.encode("ascii")
    if value > 0:
        return b"\x00\x03" + body + b"\x00"
    return b"\x00\x01" + bytes(b ^ 0xFF for b in body) + b"\xff"


def decode_key_component(data: bytes, pos: int) -> Tuple[Tuple[int, Any], int]:
    """Decode one component at ``pos``; returns ``(pair, next_pos)``.

    Numeric values come back as the int when the exact value is
    integral, else the float — either way ``==`` to every value that
    produced those bytes (``1`` and ``1.0`` encode identically, so
    the distinction is unrecoverable *by design*).
    """
    rank = data[pos]
    pos += 1
    if rank == 0x01:
        end = data.index(b"\x00", pos)
        while data[end + 1 : end + 2] == b"\xff":  # escaped NUL, keep going
            end = data.index(b"\x00", end + 2)
        raw = data[pos:end]
        if b"\x00\xff" in raw:
            raw = raw.replace(b"\x00\xff", b"\x00")
        return (1, raw.decode("utf-8")), end + 1
    if rank != 0x00:
        raise ValueError(f"bad key component rank byte {rank:#04x}")
    marker = data[pos]
    pos += 1
    if marker == 0x02:
        return (0, 0), pos
    if marker == 0x00:
        return (0, float("-inf")), pos
    if marker == 0x04:
        return (0, float("inf")), pos
    if marker == 0x03:
        end = data.index(b"\x00", pos + 8)
        body = data[pos:end]
        negative = False
    elif marker == 0x01:
        end = data.index(b"\xff", pos + 8)
        body = bytes(b ^ 0xFF for b in data[pos:end])
        negative = True
    else:
        raise ValueError(f"bad numeric key marker byte {marker:#04x}")
    (offset_exponent,) = _U64.unpack_from(body, 0)
    exponent = offset_exponent - _SIGN_BIT
    digits = body[8:].decode("ascii")
    magnitude: Any
    if exponent >= len(digits):
        magnitude = int(digits) * 10 ** (exponent - len(digits))
    else:
        # Fractional: the digit run is a float's exact decimal form,
        # and int true-division rounds correctly, so this recovers
        # the original float bit for bit.
        magnitude = int(digits) / 10 ** (len(digits) - exponent)
    return (0, -magnitude if negative else magnitude), end + 1


def encode_column_key(key: Any, arity: int) -> bytes:
    """A delimited key (one pair, or a tuple of pairs) as bytes."""
    if arity == 1:
        return encode_key_component(key)
    return b"".join([encode_key_component(pair) for pair in key])


def decode_column_key(data: bytes, arity: int) -> Any:
    if arity == 1:
        pair, pos = decode_key_component(data, 0)
        if pos != len(data):
            raise ValueError("trailing bytes after single-column key")
        return pair
    pairs: List[Tuple[int, Any]] = []
    pos = 0
    for _ in range(arity):
        pair, pos = decode_key_component(data, pos)
        pairs.append(pair)
    if pos != len(data):
        raise ValueError("trailing bytes after multi-column key")
    return tuple(pairs)
