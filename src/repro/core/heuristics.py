"""Input and output heuristics of 2WRS (Section 4.2).

When a record could be routed to either heap, an *input heuristic*
decides which heap stores it; when both heaps can release a record of
the current run, an *output heuristic* decides which heap pops.  The
paper studies six input and five output heuristics (30 combinations,
analysed in Chapter 5); all are implemented here and registered by the
paper's names.

Heuristics see the algorithm through the small :class:`HeuristicContext`
facade so they stay decoupled from the 2WRS internals.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from enum import Enum
from typing import Any, Dict, Optional, Type

#: Sentinel distinguishing "not provided" from an explicit None.
_UNSET = object()


class Side(Enum):
    """Which of the two heaps a decision targets."""

    TOP = "top"
    BOTTOM = "bottom"

    @property
    def other(self) -> "Side":
        return Side.BOTTOM if self is Side.TOP else Side.TOP


class HeuristicContext:
    """What a heuristic may observe about the running algorithm.

    The distribution statistics (``input_mean`` / ``input_median`` /
    ``input_sample``) are *lazy*: when a ``stats`` provider is given
    (any object with ``mean()`` / ``median()`` / ``sample()``, normally
    the :class:`~repro.core.input_buffer.InputBuffer`), each statistic
    is fetched on first attribute access and cached for the lifetime of
    the context.  A context lives for exactly one routing decision, so
    heuristics that never look at a statistic never pay for it, and the
    provider's own per-generation memoization keeps repeated lookups
    cheap.  Passing the statistics as explicit keyword values still
    works and takes precedence over the provider.

    Attributes
    ----------
    rng:
        Seeded random generator shared by all stochastic heuristics.
    top_size / bottom_size:
        Current record counts of the two heaps.
    top_outputs / bottom_outputs:
        Records released by each heap during the current run.
    top_head / bottom_head:
        Keys at the top of each heap (None when empty).
    input_mean / input_median:
        Statistics over the input buffer sample (None when unavailable).
    first_output:
        First record released in the current run (None before it).
    """

    __slots__ = (
        "rng",
        "top_size",
        "bottom_size",
        "top_outputs",
        "bottom_outputs",
        "top_head",
        "bottom_head",
        "first_output",
        "_stats",
        "_input_mean",
        "_input_median",
        "_input_sample",
    )

    def __init__(
        self,
        rng: random.Random,
        top_size: int = 0,
        bottom_size: int = 0,
        top_outputs: int = 0,
        bottom_outputs: int = 0,
        top_head: Optional[Any] = None,
        bottom_head: Optional[Any] = None,
        input_mean: Any = _UNSET,
        input_median: Any = _UNSET,
        input_sample: Any = _UNSET,
        first_output: Optional[Any] = None,
        stats: Optional[Any] = None,
    ) -> None:
        self.rng = rng
        self.top_size = top_size
        self.bottom_size = bottom_size
        self.top_outputs = top_outputs
        self.bottom_outputs = bottom_outputs
        self.top_head = top_head
        self.bottom_head = bottom_head
        self.first_output = first_output
        self._stats = stats
        self._input_mean = input_mean
        self._input_median = input_median
        self._input_sample = input_sample

    @property
    def input_mean(self) -> Optional[float]:
        if self._input_mean is _UNSET:
            self._input_mean = (
                self._stats.mean() if self._stats is not None else None
            )
        return self._input_mean

    @property
    def input_median(self) -> Optional[Any]:
        if self._input_median is _UNSET:
            self._input_median = (
                self._stats.median() if self._stats is not None else None
            )
        return self._input_median

    @property
    def input_sample(self) -> Optional[list]:
        if self._input_sample is _UNSET:
            self._input_sample = (
                self._stats.sample() if self._stats is not None else None
            )
        return self._input_sample

    def usefulness(self, side: Side) -> float:
        """Records output by a heap divided by its size (Section 4.2)."""
        if side is Side.TOP:
            return self.top_outputs / max(1, self.top_size)
        return self.bottom_outputs / max(1, self.bottom_size)

    def size(self, side: Side) -> int:
        return self.top_size if side is Side.TOP else self.bottom_size


class InputHeuristic(ABC):
    """Chooses the heap that stores an incoming record."""

    name: str = "input-base"

    @abstractmethod
    def choose(self, value: Any, ctx: HeuristicContext) -> Side:
        """Return the side that should store ``value``."""

    def on_run_start(self) -> None:
        """Hook called at every run boundary (stateful heuristics)."""

    @property
    def wants_rebalance(self) -> bool:
        """True when heap contents should be equalised at run starts."""
        return False


class OutputHeuristic(ABC):
    """Chooses the heap that releases the next record."""

    name: str = "output-base"

    @abstractmethod
    def choose(self, ctx: HeuristicContext) -> Side:
        """Return the side that should pop (both sides are poppable)."""

    def on_run_start(self) -> None:
        """Hook called at every run boundary (stateful heuristics)."""


# -- input heuristics ------------------------------------------------------------


class RandomInput(InputHeuristic):
    """Level k=0: a fair coin decides the heap."""

    name = "random"

    def choose(self, value: Any, ctx: HeuristicContext) -> Side:
        return Side.TOP if ctx.rng.random() < 0.5 else Side.BOTTOM


class AlternateInput(InputHeuristic):
    """Level k=1: strict alternation between the heaps."""

    name = "alternate"

    def __init__(self) -> None:
        self._last = Side.TOP

    def choose(self, value: Any, ctx: HeuristicContext) -> Side:
        self._last = self._last.other
        return self._last


class MeanInput(InputHeuristic):
    """Level k=2: above the input-buffer mean goes to the TopHeap."""

    name = "mean"

    def choose(self, value: Any, ctx: HeuristicContext) -> Side:
        if ctx.input_mean is None:
            return Side.TOP if ctx.rng.random() < 0.5 else Side.BOTTOM
        return Side.TOP if value > ctx.input_mean else Side.BOTTOM


class MedianInput(InputHeuristic):
    """Level k=3: above the input-buffer median goes to the TopHeap."""

    name = "median"

    def choose(self, value: Any, ctx: HeuristicContext) -> Side:
        if ctx.input_median is None:
            return Side.TOP if ctx.rng.random() < 0.5 else Side.BOTTOM
        return Side.TOP if value > ctx.input_median else Side.BOTTOM


class UsefulInput(InputHeuristic):
    """Level k=4: feed the heap that has been releasing more per record."""

    name = "useful"

    def choose(self, value: Any, ctx: HeuristicContext) -> Side:
        top_u = ctx.usefulness(Side.TOP)
        bottom_u = ctx.usefulness(Side.BOTTOM)
        if top_u == bottom_u:
            return Side.TOP if ctx.rng.random() < 0.5 else Side.BOTTOM
        return Side.TOP if top_u > bottom_u else Side.BOTTOM


class BalancingInput(InputHeuristic):
    """Level k=5: feed the smaller heap; equalise sizes at run starts."""

    name = "balancing"

    def choose(self, value: Any, ctx: HeuristicContext) -> Side:
        if ctx.top_size == ctx.bottom_size:
            return Side.TOP if ctx.rng.random() < 0.5 else Side.BOTTOM
        return Side.TOP if ctx.top_size < ctx.bottom_size else Side.BOTTOM

    @property
    def wants_rebalance(self) -> bool:
        return True


# -- output heuristics ---------------------------------------------------------------


class RandomOutput(OutputHeuristic):
    """Level l=0: a fair coin decides the heap (the paper's pick)."""

    name = "random"

    def choose(self, ctx: HeuristicContext) -> Side:
        return Side.TOP if ctx.rng.random() < 0.5 else Side.BOTTOM


class AlternateOutput(OutputHeuristic):
    """Level l=1: BottomHeap first, then strict alternation."""

    name = "alternate"

    def __init__(self) -> None:
        self._last = Side.TOP

    def choose(self, ctx: HeuristicContext) -> Side:
        self._last = self._last.other
        return self._last

    def on_run_start(self) -> None:
        self._last = Side.TOP  # so the first pop of a run is BOTTOM


class UsefulOutput(OutputHeuristic):
    """Level l=2: pop from the more useful heap."""

    name = "useful"

    def choose(self, ctx: HeuristicContext) -> Side:
        top_u = ctx.usefulness(Side.TOP)
        bottom_u = ctx.usefulness(Side.BOTTOM)
        if top_u == bottom_u:
            return Side.TOP if ctx.rng.random() < 0.5 else Side.BOTTOM
        return Side.TOP if top_u > bottom_u else Side.BOTTOM


class BalancingOutput(OutputHeuristic):
    """Level l=3: pop from the larger heap, keeping sizes even."""

    name = "balancing"

    def choose(self, ctx: HeuristicContext) -> Side:
        if ctx.top_size == ctx.bottom_size:
            return Side.TOP if ctx.rng.random() < 0.5 else Side.BOTTOM
        return Side.TOP if ctx.top_size > ctx.bottom_size else Side.BOTTOM


class MinDistanceOutput(OutputHeuristic):
    """Level l=4: pop the head closer (absolute value) to the run's first output."""

    name = "min_distance"

    def choose(self, ctx: HeuristicContext) -> Side:
        if ctx.first_output is None or ctx.top_head is None or ctx.bottom_head is None:
            return Side.TOP if ctx.rng.random() < 0.5 else Side.BOTTOM
        top_distance = abs(ctx.top_head - ctx.first_output)
        bottom_distance = abs(ctx.bottom_head - ctx.first_output)
        if top_distance == bottom_distance:
            return Side.TOP if ctx.rng.random() < 0.5 else Side.BOTTOM
        return Side.TOP if top_distance < bottom_distance else Side.BOTTOM


#: Paper name -> class, input heuristics (factor k levels 0..5).
INPUT_HEURISTICS: Dict[str, Type[InputHeuristic]] = {
    cls.name: cls
    for cls in (
        RandomInput,
        AlternateInput,
        MeanInput,
        MedianInput,
        UsefulInput,
        BalancingInput,
    )
}

#: Paper name -> class, output heuristics (factor l levels 0..4).
OUTPUT_HEURISTICS: Dict[str, Type[OutputHeuristic]] = {
    cls.name: cls
    for cls in (
        RandomOutput,
        AlternateOutput,
        UsefulOutput,
        BalancingOutput,
        MinDistanceOutput,
    )
}


def make_input_heuristic(name: str) -> InputHeuristic:
    """Instantiate an input heuristic by its paper name."""
    return _make(INPUT_HEURISTICS, name, "input")


def make_output_heuristic(name: str) -> OutputHeuristic:
    """Instantiate an output heuristic by its paper name."""
    return _make(OUTPUT_HEURISTICS, name, "output")


def _make(registry: Dict[str, type], name: str, kind: str):
    try:
        cls = registry[name]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise ValueError(f"unknown {kind} heuristic {name!r}; known: {known}") from None
    return cls()
