"""Adaptive input heuristic and configuration advisor (Section 7.1).

The paper's future-work chapter sketches two practical extensions:

* an *adaptive heuristic* that detects the distribution the input is
  currently following and switches routing behaviour accordingly, and
* an *autonomic* configuration hook for query optimisers that already
  know the distribution of an execution-plan node and can fix the 2WRS
  parameters that minimise its sort time.

Both are implemented here.  The adaptive heuristic classifies the input
buffer sample by its rank correlation with time (ascending, descending,
or unstructured) and delegates to the routing rule that Chapter 5 found
optimal for that regime; the advisor maps a known distribution name to
the optimal :class:`~repro.core.config.TwoWayConfig` from the Chapter 5
analysis.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Optional, Sequence

from repro.core.config import RECOMMENDED, TwoWayConfig
from repro.core.heuristics import (
    INPUT_HEURISTICS,
    HeuristicContext,
    InputHeuristic,
    Side,
)


class Trend(Enum):
    """Input regimes the adaptive heuristic distinguishes."""

    ASCENDING = "ascending"
    DESCENDING = "descending"
    UNSTRUCTURED = "unstructured"


def classify_trend(sample: Sequence[Any], threshold: float = 0.5) -> Trend:
    """Classify a sample window by its concordance with arrival order.

    Computes Kendall-style concordance over adjacent pairs: +1 for a
    rise, -1 for a fall.  A mean beyond ``threshold`` in either
    direction is called a trend; anything else is unstructured (random
    or mixed).
    """
    if len(sample) < 3:
        return Trend.UNSTRUCTURED
    score = 0
    pairs = 0
    for a, b in zip(sample, sample[1:]):
        if b > a:
            score += 1
        elif b < a:
            score -= 1
        pairs += 1
    concordance = score / pairs
    if concordance >= threshold:
        return Trend.ASCENDING
    if concordance <= -threshold:
        return Trend.DESCENDING
    return Trend.UNSTRUCTURED


class AdaptiveInput(InputHeuristic):
    """Trend-following input heuristic (the paper's Section 7.1 sketch).

    * ascending input  -> route to the TopHeap (RS-equivalent, which
      Theorem 7 proves never loses to RS);
    * descending input -> route to the BottomHeap;
    * unstructured     -> fall back to the Mean rule, the paper's
      recommended general-purpose heuristic.
    """

    name = "adaptive"

    def __init__(self, threshold: float = 0.5) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.last_trend = Trend.UNSTRUCTURED

    def choose(self, value: Any, ctx: HeuristicContext) -> Side:
        sample = ctx.input_sample if ctx.input_sample is not None else []
        self.last_trend = classify_trend(sample, self.threshold)
        if self.last_trend is Trend.ASCENDING:
            return Side.TOP
        if self.last_trend is Trend.DESCENDING:
            return Side.BOTTOM
        if ctx.input_mean is None:
            return Side.TOP if ctx.rng.random() < 0.5 else Side.BOTTOM
        return Side.TOP if value > ctx.input_mean else Side.BOTTOM


#: Chapter 5 conclusions: optimal configuration per known distribution.
#: Sorted / reverse-sorted / alternating are configuration-insensitive,
#: so they inherit the recommended configuration; random wants minimal
#: buffers; the mixed datasets want both buffers and large ones.
_OPTIMAL_BY_DISTRIBUTION = {
    "sorted": RECOMMENDED,
    "reverse_sorted": RECOMMENDED,
    "alternating": RECOMMENDED,
    "random": TwoWayConfig(
        buffer_setup="input",
        buffer_fraction=0.0002,
        input_heuristic="mean",
        output_heuristic="random",
    ),
    "mixed_balanced": TwoWayConfig(
        buffer_setup="both",
        buffer_fraction=0.20,
        input_heuristic="mean",
        output_heuristic="random",
    ),
    "mixed_imbalanced": TwoWayConfig(
        buffer_setup="both",
        buffer_fraction=0.20,
        input_heuristic="mean",
        output_heuristic="random",
    ),
}


def recommend_config(distribution: Optional[str] = None) -> TwoWayConfig:
    """Optimal 2WRS configuration for a known input distribution.

    This is the query-optimiser hook of Section 7.1: an optimiser that
    knows the distribution at an execution-plan node can fix the sort
    parameters.  Unknown / None falls back to the paper's recommended
    all-round configuration (Section 5.3).
    """
    if distribution is None:
        return RECOMMENDED
    try:
        return _OPTIMAL_BY_DISTRIBUTION[distribution]
    except KeyError:
        known = ", ".join(sorted(_OPTIMAL_BY_DISTRIBUTION))
        raise ValueError(
            f"unknown distribution {distribution!r}; known: {known}"
        ) from None


def register() -> None:
    """Register the adaptive heuristic under its name (idempotent)."""
    INPUT_HEURISTICS.setdefault(AdaptiveInput.name, AdaptiveInput)


register()
