"""The in-memory write buffer (DESIGN.md §17).

One dict, keyed by raw key bytes, holding the *encoded meta* of the
newest operation per key — the exact payload a flush writes, so
flushing is ``sorted(items)`` straight into
:func:`~repro.store.sstable.write_table` with no re-encoding.
Tombstones live in the memtable like any other entry: they must flush
too, or a delete could be forgotten while older tables still hold the
put it shadows.

Size accounting follows the repo convention that ``memory`` budgets
count *records*: the memtable is "full" at ``memory`` distinct keys,
mirroring how every sort backend bounds its resident chunk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.store.format import encode_meta

__all__ = ["Memtable"]


class Memtable:
    """Mutable newest-write-per-key map, flushable as a sorted run."""

    def __init__(self) -> None:
        self._entries: Dict[bytes, bytes] = {}
        #: Highest seqno applied — recorded in the flushed table so
        #: recovery can restart the seqno counter past it.
        self.max_seqno = 0
        #: Raw key+meta bytes resident (reporting only; the flush
        #: threshold counts records, like every other memory budget).
        self.payload_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def apply(self, op: bytes, seqno: int, key: bytes, value: bytes) -> None:
        """Absorb one WAL-logged operation (put or tombstone)."""
        meta = encode_meta(seqno, op, value)
        previous = self._entries.get(key)
        if previous is not None:
            self.payload_bytes -= len(key) + len(previous)
        self._entries[key] = meta
        self.payload_bytes += len(key) + len(meta)
        if seqno > self.max_seqno:
            self.max_seqno = seqno

    def lookup(self, key: bytes) -> Optional[bytes]:
        """The newest meta for ``key`` (tombstones included), or None."""
        return self._entries.get(key)

    def sorted_entries(self) -> List[Tuple[bytes, bytes]]:
        """All entries as the sorted unique run a flush writes."""
        return sorted(self._entries.items())

    def range_entries(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
    ) -> List[Tuple[bytes, bytes]]:
        """Sorted entries with ``start <= key < end`` (for scans)."""
        items = self.sorted_entries()
        if start is None and end is None:
            return items
        return [
            entry
            for entry in items
            if (start is None or entry[0] >= start)
            and (end is None or entry[0] < end)
        ]
