"""Compaction and scan hot loops (DESIGN.md §17).

Merging tables *is* the sort engine's k-way merge: every input is an
ascending ``(key, meta)`` stream, :func:`~repro.merge.kway.kway_merge`
interleaves them, and the §17 meta layout makes the two LSM-specific
steps pure tuple work:

* **Last-writer-wins dedup** — equal keys arrive adjacent after the
  merge, and the inverted seqno at the front of each meta makes the
  newest write compare smallest, so keeping the *first* entry of every
  ``groupby`` key group is LWW.  No seqno is ever unpacked.
* **Tombstone dropping** — ``entry[1][8]`` is the op byte; comparing
  it to :data:`~repro.store.format.TOMBSTONE_BYTE` is an int check.
  Dropping is only legal when the merge saw *every* live table (a
  tombstone may shadow a put in a table outside the merge), which the
  caller signals with ``drop_deletes``.

This module is listed in R007's hot modules: per-record ``decode``/
``key`` calls are lint-banned here, and
``tests/test_store_faults.py`` instruments the format to prove at
runtime that none happen.
"""

from __future__ import annotations

from itertools import groupby
from operator import itemgetter
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.merge.kway import MergeCounter, kway_merge
from repro.store.format import META_PREFIX, TOMBSTONE_BYTE

__all__ = [
    "lww_entries",
    "live_entries",
    "merge_streams",
    "visible_items",
]

Entry = Tuple[bytes, bytes]


def lww_entries(merged: Iterable[Entry]) -> Iterator[Entry]:
    """Keep only the newest entry of each equal-key group.

    ``merged`` must be sorted (the output of ``kway_merge`` over
    sorted streams); the inverted seqno makes the newest entry the
    group minimum, and the heap emits equal tuples in stream order, so
    the first element of each group is the winner.
    """
    for _, group in groupby(merged, itemgetter(0)):
        yield next(group)


def live_entries(entries: Iterable[Entry]) -> Iterator[Entry]:
    """Drop tombstones — only safe after a full-coverage merge."""
    for entry in entries:
        if entry[1][8] != TOMBSTONE_BYTE:
            yield entry


def merge_streams(
    streams: Sequence[Iterable[Entry]],
    *,
    drop_deletes: bool = False,
    counter: Optional[MergeCounter] = None,
) -> Iterator[Entry]:
    """Merge ascending entry streams into one LWW-deduped stream.

    With ``drop_deletes`` the surviving tombstones are removed too —
    the caller asserts the streams cover every live table, so nothing
    older can resurface a deleted key.
    """
    deduped = lww_entries(kway_merge(streams, counter))
    if drop_deletes:
        return live_entries(deduped)
    return deduped


def visible_items(
    streams: Sequence[Iterable[Entry]],
    counter: Optional[MergeCounter] = None,
) -> Iterator[Tuple[bytes, bytes]]:
    """The user-visible ``(key, value)`` view of merged streams.

    The scan path: newest-wins, tombstones hidden, and the value
    extracted with one slice per *surviving* record — records shadowed
    by newer writes or deletes are skipped without any byte work.
    """
    for entry in merge_streams(streams, drop_deletes=True, counter=counter):
        yield entry[0], entry[1][META_PREFIX:]
