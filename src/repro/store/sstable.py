"""SSTable writing and reading (DESIGN.md §17).

An SSTable is a sorted run with a map.  The data region is exactly
what the sort engine spills — RBLK (or codec-framed RBLC) blocks of
``(key_bytes, meta_bytes)`` records written by
:class:`~repro.engine.block_io.BlockWriter` through the ``open_bytes``
fault seam — followed by a *sparse index* (one ``(offset,
first_key)`` pair per block, plus the table's key range, record count
and max seqno) and a fixed 24-byte footer whose magic is the last
thing written.  File layout::

    [block 0][block 1]...[block N-1][index body][footer]
    footer = index_offset u64 | index_len u32 | index_crc u32 | magic 8s

A reader opens by parsing footer + index (CRC-checked) and then
serves:

* ``lookup(key)`` — binary search the block first-keys, seek, read
  *one* block through the same corruption-checked parser the merge
  path uses (:func:`~repro.engine.block_io.read_framed_block`), binary
  search inside it.  Two reads per point lookup, both block-aligned.
* ``entries(start, end)`` — block-at-a-time ordered scan from the
  first covering block.  The yielded tuples go straight into
  ``kway_merge`` heaps and LWW grouping without any per-record decode
  (R007 holds here and in compaction).

Keys within one table are unique — the memtable holds one entry per
key and compaction dedups — so readers never tiebreak on meta.
"""

from __future__ import annotations

import os
import struct
import zlib
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.engine.block_io import (
    DEFAULT_BLOCK_RECORDS,
    BlockWriter,
    open_bytes,
    read_framed_block,
)
from repro.engine.errors import StoreError
from repro.engine.spill_codec import CODEC_IDS, validate_codec
from repro.store.format import STORE_FORMAT

__all__ = [
    "SSTABLE_MAGIC",
    "TABLE_VERSION",
    "TableInfo",
    "SSTableReader",
    "write_table",
]

#: Footer magic — written last, so its presence implies the whole
#: index body preceded it onto disk.
SSTABLE_MAGIC = b"RSSTIDX1"

#: Index schema version (bumped on incompatible layout changes).
TABLE_VERSION = 1

#: index_offset, index_len, index_crc, magic.
_FOOTER = struct.Struct(">QII8s")

#: version, record count, max seqno, codec id, block count.
_INDEX_FIXED = struct.Struct(">HQQBI")

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")

#: Codec wire ids for the index header.  The RBLC ids are reused, with
#: 0 (reserved there — "none" blocks are RBLK-framed, not RBLC) taken
#: for the uncompressed layout, since the index must record it too.
_CODEC_WIRE = {"none": 0, **CODEC_IDS}
_CODEC_UNWIRE = {wire: name for name, wire in _CODEC_WIRE.items()}


@dataclass(frozen=True)
class TableInfo:
    """What the manifest records about one finished table.

    ``crc32`` is the CRC-32 of the *entire file* — data blocks, index
    body and footer — so :func:`~repro.engine.resilience.artifact_valid`
    verifies a table exactly the way it verifies a journaled run.
    """

    path: str
    records: int
    crc32: int
    min_key: bytes
    max_key: bytes
    max_seqno: int
    disk_bytes: int


def write_table(
    path: str,
    entries: Iterable[Tuple[bytes, bytes]],
    *,
    max_seqno: int,
    block_records: int = DEFAULT_BLOCK_RECORDS,
    codec: str = "none",
    fsync: bool = True,
) -> TableInfo:
    """Write sorted unique ``entries`` as one SSTable.

    The caller guarantees order and key uniqueness (the memtable is a
    dict; compaction dedups) — this function only *samples* the stream
    for the sparse index, it never inspects entry contents beyond
    ``entry[0]``.  Raises :class:`ValueError` on an empty stream:
    empty tables have no key range and callers must skip them instead
    (a compaction in which every record annihilates appends a
    manifest entry with no output file).
    """
    codec = validate_codec(codec)
    offsets: List[int] = []
    first_keys: List[bytes] = []
    last_key = b""
    handle = open_bytes(path, "w")
    try:
        writer = BlockWriter(
            handle, STORE_FORMAT, block_records, track_crc=True, codec=codec
        )
        count = 0
        for entry in entries:
            if count % block_records == 0:
                # BlockWriter auto-flushes exactly at block_records, so
                # disk_bytes here is the byte offset this block starts
                # at — the sparse index costs no extra buffering.
                offsets.append(writer.disk_bytes)
                first_keys.append(entry[0])
            writer.write(entry)
            last_key = entry[0]
            count += 1
        writer.flush()
        if count == 0:
            raise ValueError(
                f"refusing to write empty sstable {path!r}: an empty "
                f"table has no key range; skip it instead"
            )
        index_offset = writer.disk_bytes
        index_parts: List[bytes] = [
            _INDEX_FIXED.pack(
                TABLE_VERSION, count, max_seqno, _CODEC_WIRE[codec],
                len(offsets),
            )
        ]
        for block_offset, first_key in zip(offsets, first_keys):
            index_parts.append(_U64.pack(block_offset))
            index_parts.append(_U32.pack(len(first_key)))
            index_parts.append(first_key)
        for bound in (first_keys[0], last_key):
            index_parts.append(_U32.pack(len(bound)))
            index_parts.append(bound)
        index_body = b"".join(index_parts)
        footer = _FOOTER.pack(
            index_offset, len(index_body), zlib.crc32(index_body),
            SSTABLE_MAGIC,
        )
        handle.write(index_body)
        handle.write(footer)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    finally:
        handle.close()
    return TableInfo(
        path=path,
        records=count,
        crc32=zlib.crc32(footer, zlib.crc32(index_body, writer.file_crc)),
        min_key=first_keys[0],
        max_key=last_key,
        max_seqno=max_seqno,
        disk_bytes=index_offset + len(index_body) + _FOOTER.size,
    )


class SSTableReader:
    """Random and sequential access to one SSTable.

    Opening parses and CRC-checks the footer + sparse index; anything
    structurally wrong raises :class:`StoreError` naming the file.
    Data blocks are verified on every read (``checksum=True`` through
    :func:`read_framed_block`) — a point lookup that lands on a
    bit-flipped block fails loudly, never returns garbage.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open_bytes(path, "r")
        try:
            self._parse_index()
        except BaseException:
            self.close()
            raise

    # -- open/close ------------------------------------------------------------

    def _parse_index(self) -> None:
        handle = self._handle
        path = self.path
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size < _FOOTER.size:
            raise StoreError(
                f"sstable {path!r} is {size} bytes — smaller than the "
                f"{_FOOTER.size}-byte footer; torn or not an sstable"
            )
        handle.seek(size - _FOOTER.size)
        index_offset, index_len, want_crc, magic = _FOOTER.unpack(
            handle.read(_FOOTER.size)
        )
        if magic != SSTABLE_MAGIC:
            raise StoreError(
                f"sstable {path!r} has bad footer magic {magic!r} — the "
                f"file was torn mid-write or is not an sstable"
            )
        if index_offset + index_len + _FOOTER.size != size:
            raise StoreError(
                f"sstable {path!r} footer is inconsistent: index at "
                f"{index_offset}+{index_len} plus footer does not equal "
                f"the {size}-byte file"
            )
        handle.seek(index_offset)
        body = handle.read(index_len)
        got_crc = zlib.crc32(body)
        if len(body) != index_len or got_crc != want_crc:
            raise StoreError(
                f"sstable {path!r} index failed its checksum (footer "
                f"says {want_crc:08x}, bytes hash to {got_crc:08x}) — "
                f"the index was corrupted on disk"
            )
        try:
            version, records, max_seqno, codec_id, n_blocks = (
                _INDEX_FIXED.unpack_from(body, 0)
            )
            pos = _INDEX_FIXED.size
            offsets: List[int] = []
            first_keys: List[bytes] = []
            for _ in range(n_blocks):
                (block_offset,) = _U64.unpack_from(body, pos)
                offsets.append(block_offset)
                pos += 8
                (key_len,) = _U32.unpack_from(body, pos)
                pos += 4
                first_keys.append(body[pos : pos + key_len])
                pos += key_len
            bounds: List[bytes] = []
            for _ in range(2):
                (key_len,) = _U32.unpack_from(body, pos)
                pos += 4
                bounds.append(body[pos : pos + key_len])
                pos += key_len
        except struct.error:
            raise StoreError(
                f"sstable {path!r} index body is malformed — truncated "
                f"or mis-framed despite a matching checksum"
            ) from None
        if version != TABLE_VERSION:
            raise StoreError(
                f"sstable {path!r} has index version {version}, this "
                f"build reads version {TABLE_VERSION}"
            )
        codec = _CODEC_UNWIRE.get(codec_id)
        if codec is None:
            raise StoreError(
                f"sstable {path!r} was written with unknown codec id "
                f"{codec_id}"
            )
        if pos != len(body):
            raise StoreError(
                f"sstable {path!r} index has {len(body) - pos} trailing "
                f"byte(s) after {n_blocks} block entries"
            )
        self.records = records
        self.max_seqno = max_seqno
        self.codec = codec
        self.min_key = bounds[0]
        self.max_key = bounds[1]
        self.data_bytes = index_offset
        self._first_keys = first_keys
        self._offsets = offsets

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SSTableReader":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- access ----------------------------------------------------------------

    def _block_at(self, index: int) -> List[Tuple[bytes, bytes]]:
        handle = self._handle
        assert handle is not None, "reader is closed"
        block_offset = self._offsets[index]
        handle.seek(block_offset)
        result = read_framed_block(
            handle, STORE_FORMAT, path=self.path, index=index,
            offset=block_offset, checksum=True, codec=self.codec,
        )
        if result is None:
            raise StoreError(
                f"sstable {self.path!r}: block {index} at offset "
                f"{block_offset} is missing — index and data disagree"
            )
        return result[0]

    def lookup(self, want: bytes) -> Optional[bytes]:
        """The meta bytes stored for ``want``, or None when absent.

        A tombstone is *present* — it returns its meta so the store can
        shadow older tables; only the store-level ``get`` translates
        tombstones into "not found".
        """
        if want < self.min_key or want > self.max_key:
            return None
        index = bisect_right(self._first_keys, want) - 1
        if index < 0:
            return None
        block = self._block_at(index)
        # ``(want,)`` compares less than ``(want, meta)`` — bisect finds
        # the first entry whose key is >= want without building probe
        # metas.
        slot = bisect_left(block, (want,))
        if slot < len(block) and block[slot][0] == want:
            return block[slot][1]
        return None

    def entries(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Ordered ``(key, meta)`` entries with ``start <= key < end``.

        Block-at-a-time: one seek to the first covering block, then
        sequential block reads.  The per-entry work is tuple indexing
        and comparison only — this iterator feeds compaction's merge
        heap directly (R007).
        """
        first = 0
        if start is not None:
            first = bisect_right(self._first_keys, start) - 1
            if first < 0:
                first = 0
        for index in range(first, len(self._offsets)):
            block = self._block_at(index)
            if start is not None and index == first:
                block = block[bisect_left(block, (start,)):]
            if end is None:
                yield from block
                continue
            for entry in block:
                if entry[0] >= end:
                    return
                yield entry
