"""Record shape of the LSM store (DESIGN.md §17).

A store entry reuses the §14 binary record shape — a ``(key_bytes,
meta_bytes)`` tuple — with the *meta* payload laid out so that plain
tuple comparison performs every ordering job the engine needs:

    meta = pack(">Q", SEQNO_MAX - seqno) + op_byte + value_bytes

* Sorting entries sorts by key first (tuple element 0), which is what
  SSTables, the merge heap and range scans order by.
* Among equal keys the **inverted** sequence number at the front of the
  meta bytes makes the *newest* write compare smallest, so
  last-writer-wins dedup after a k-way merge is simply "keep the first
  entry of each equal-key group" — ``itertools.groupby`` over C-level
  tuple comparisons, zero per-record decodes (the R007 invariant).
* The op byte after the seqno distinguishes a put from a tombstone;
  testing it is a single byte index (``meta[8] == TOMBSTONE_BYTE``),
  again no decode.

Everything downstream — :mod:`repro.store.sstable`,
:mod:`repro.store.compaction`, the scan path — moves these tuples
around without ever unpacking them; the only decode points are the two
boundaries (WAL replay into the memtable, and handing a value back to
the caller, which is one slice).
"""

from __future__ import annotations

import struct
from typing import Any, List, Sequence

from repro.core.records import RecordFormat

__all__ = [
    "SEQNO_MAX",
    "PUT",
    "TOMBSTONE",
    "PUT_BYTE",
    "TOMBSTONE_BYTE",
    "META_PREFIX",
    "StoreFormat",
    "STORE_FORMAT",
    "encode_meta",
    "meta_seqno",
    "meta_is_tombstone",
    "meta_value",
]

#: Largest representable sequence number (unsigned 64-bit).  Sequence
#: numbers are stored *inverted* (``SEQNO_MAX - seqno``) so smaller
#: stored bytes mean newer writes.
SEQNO_MAX = (1 << 64) - 1

_SEQ = struct.Struct(">Q")

#: Operation bytes.  PUT sorts before TOMBSTONE only by accident of
#: value — ordering between ops never matters because two entries with
#: the same key and seqno cannot exist (seqnos are globally unique).
PUT = b"\x00"
TOMBSTONE = b"\x01"

#: Integer twins for the hot loops: ``meta[8] == TOMBSTONE_BYTE`` is an
#: int comparison on an indexed byte, no slicing or decoding.
PUT_BYTE = 0
TOMBSTONE_BYTE = 1

#: Bytes of meta before the value: 8 inverted-seqno bytes + 1 op byte.
META_PREFIX = 9


def encode_meta(seqno: int, op: bytes, value: bytes = b"") -> bytes:
    """Pack ``(seqno, op, value)`` into ordered meta bytes."""
    if not 0 <= seqno <= SEQNO_MAX:
        raise ValueError(f"seqno out of range: {seqno}")
    return _SEQ.pack(SEQNO_MAX - seqno) + op + value


def meta_seqno(meta: bytes) -> int:
    """The (un-inverted) sequence number a meta payload carries."""
    return SEQNO_MAX - _SEQ.unpack_from(meta)[0]


def meta_is_tombstone(meta: bytes) -> bool:
    """Whether the meta payload records a delete."""
    return meta[8] == TOMBSTONE_BYTE


def meta_value(meta: bytes) -> bytes:
    """The stored value bytes (empty for tombstones)."""
    return meta[META_PREFIX:]


class StoreFormat(RecordFormat):
    """The store's entry shape for :class:`~repro.engine.block_io.
    BlockWriter` and the RBLK/RBLC readers.

    ``spill_binary = True`` routes every block through the
    length-prefixed binary framing, whose writer and reader touch only
    ``entry[0]``/``entry[1]`` — they never call ``encode``/``decode``.
    The text-side methods are therefore deliberately left as the base
    class's ``NotImplementedError`` stubs: the store has no text
    boundary, and ``tests/test_store_faults.py`` instruments exactly
    these methods to prove the hot loops never reach them (R007,
    runtime-checked, not just lint-checked).
    """

    name = "store"
    numeric = False
    #: block_io routes files of this format through binary framing.
    spill_binary = True
    #: Plain tuples round-trip spill files unchanged — no factory.
    record_factory = None

    def fields(self, record: Any) -> List[str]:  # pragma: no cover
        raise NotImplementedError("store entries have no text fields")

    def project(
        self, record: Any, columns: Sequence[int]
    ) -> List[str]:  # pragma: no cover
        raise NotImplementedError("store entries have no text fields")


#: Module singleton — the format is stateless.
STORE_FORMAT = StoreFormat()
