"""The LSM store facade (DESIGN.md §17).

One :class:`Store` owns a directory::

    LOCK                  advisory single-writer lock (flock)
    MANIFEST              append-only JSONL table-set log (§17)
    wal-<num>.log         write-ahead logs (replay floor in MANIFEST)
    sst-<num>.sst         SSTables (only MANIFEST-listed ones are live)

**Durability contract.**  A mutation is acknowledged once its WAL
append returns (fsynced when ``sync=True``); from that moment it
survives ``kill -9`` at *any* point.  Flushes and compactions follow
the §11 order — write table → fsync → read-back verify → manifest
append → delete superseded files — so every crash window resolves on
reopen to either "the work never happened" (orphan outputs are swept)
or "the work completed" (the manifest entry is the commit point).
``close()`` deliberately does **not** flush the memtable: durability
comes from the WAL, and making recovery-by-replay the normal reopen
path means the crash path is exercised constantly, not only in fault
tests.

**Reads.**  ``get`` consults the memtable first (always newest), then
every table whose key range covers the key; among candidates the
smallest meta wins — the §17 inverted-seqno layout makes "newest"
and "minimum" the same thing.  ``scan`` k-way-merges the memtable
with every table through the same LWW machinery compaction uses.

**Compaction.**  When a level holds more than ``fan_in`` tables, all
of them merge into one table at the next level (``kway_merge`` under
the hood, :func:`~repro.merge.kway.reduce_to_fan_in` bounding open
readers when a merge is wider than ``fan_in``).  Tombstones are
dropped only when the merge covers every live table — otherwise a
deleted key could resurface from an older table outside the merge.
"""

from __future__ import annotations

import os
import re
from itertools import chain
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.block_io import DEFAULT_BLOCK_RECORDS
from repro.engine.errors import StoreError
from repro.engine.resilience import artifact_valid
from repro.engine.spill_codec import validate_codec
from repro.merge.kway import reduce_to_fan_in
from repro.merge.merge_tree import DEFAULT_FAN_IN
from repro.store.compaction import merge_streams, visible_items
from repro.store.format import (
    PUT,
    PUT_BYTE,
    SEQNO_MAX,
    TOMBSTONE,
    TOMBSTONE_BYTE,
    meta_is_tombstone,
    meta_value,
)
from repro.store.manifest import (
    MANIFEST_NAME,
    StoreManifest,
    replay_entries,
)
from repro.store.memtable import Memtable
from repro.store.sstable import (
    TABLE_VERSION,
    SSTableReader,
    write_table,
)
from repro.store.wal import WalWriter, replay_wal

try:
    import fcntl
except ImportError:  # pragma: no cover - non-posix platforms
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "DEFAULT_MEMTABLE_RECORDS",
    "LOCK_NAME",
    "Store",
]

#: Default memtable budget, in records (the repo-wide memory unit).
DEFAULT_MEMTABLE_RECORDS = 4096

LOCK_NAME = "LOCK"

#: Manifest length (entries) above which opening checkpoints it.
CHECKPOINT_ENTRIES = 256

_TABLE_RE = re.compile(r"^sst-(\d{8})\.sst$")
_WAL_RE = re.compile(r"^wal-(\d{8})\.log$")


def _discard(path: str) -> None:
    """Best-effort removal of a file the manifest no longer needs."""
    try:
        os.remove(path)
    except OSError:
        pass


class Store:
    """Single-writer LSM table over one directory."""

    def __init__(
        self,
        path: str,
        *,
        memory: int = DEFAULT_MEMTABLE_RECORDS,
        block_records: int = DEFAULT_BLOCK_RECORDS,
        codec: str = "none",
        fan_in: int = DEFAULT_FAN_IN,
        sync: bool = True,
        auto_compact: bool = True,
    ) -> None:
        if memory < 1:
            raise ValueError(f"memory must be >= 1, got {memory}")
        if fan_in < 2:
            raise ValueError(f"fan_in must be >= 2, got {fan_in}")
        self.path = path
        self.memory = memory
        self.block_records = block_records
        self.codec = validate_codec(codec)
        self.fan_in = fan_in
        self.sync = sync
        self.auto_compact = auto_compact
        # -- write-amplification instrumentation (bench + reports) --
        self.flushed_tables = 0
        self.flushed_bytes = 0
        self.compacted_tables = 0
        self.compacted_bytes = 0
        self.wal_bytes = 0
        self._lock_handle: Optional[Any] = None
        self._manifest: Optional[StoreManifest] = None
        self._wal: Optional[WalWriter] = None
        self._readers: Dict[str, SSTableReader] = {}
        self._tables: Dict[str, Dict[str, Any]] = {}
        self._memtable = Memtable()
        self._next_filenum = 0
        self._next_seqno = 1
        self._wal_floor = 0
        try:
            self._open()
        except BaseException:
            self.close()
            raise

    # -- open / recovery -------------------------------------------------------

    @staticmethod
    def _fingerprint() -> Dict[str, Any]:
        return {"format": "repro-store", "table_version": TABLE_VERSION}

    def _open(self) -> None:
        os.makedirs(self.path, exist_ok=True)
        self._acquire_lock()
        manifest_path = os.path.join(self.path, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            self._manifest = StoreManifest.load(
                manifest_path, self._fingerprint()
            )
        else:
            leftovers = [
                name
                for name in os.listdir(self.path)
                if name != LOCK_NAME
            ]
            if leftovers:
                raise StoreError(
                    f"directory {self.path!r} is not empty and holds no "
                    f"store MANIFEST; refusing to initialise a store "
                    f"over existing data — pass an empty or dedicated "
                    f"directory"
                )
            self._manifest = StoreManifest.create(
                manifest_path, self._fingerprint()
            )
        tables, wal_floor, manifest_max = replay_entries(
            manifest_path, self._manifest.entries
        )
        self._tables = tables
        self._wal_floor = wal_floor
        table_nums, wal_nums = self._scan_directory()
        self._next_filenum = (
            max([manifest_max, wal_floor, *table_nums, *wal_nums]) + 1
        )
        self._clean_orphans(table_nums, wal_nums)
        for name in sorted(tables):
            self._readers[name] = self._open_reader(name)
        self._replay_wals(wal_nums)
        self._next_seqno = (
            max(
                [self._memtable.max_seqno]
                + [reader.max_seqno for reader in self._readers.values()]
            )
            + 1
        )
        self._wal = WalWriter(
            self._wal_path(self._alloc_filenum()), sync=self.sync
        )
        if len(self._memtable) >= self.memory:
            self.flush()
        if len(self._manifest.entries) > CHECKPOINT_ENTRIES:
            self._manifest.checkpoint()

    def _acquire_lock(self) -> None:
        lock_path = os.path.join(self.path, LOCK_NAME)
        # repro: lint-waive R002 the advisory lock file carries no data; fault-injecting it would only fake lock contention
        self._lock_handle = open(lock_path, "a")
        if fcntl is not None:
            try:
                fcntl.flock(
                    self._lock_handle.fileno(),
                    fcntl.LOCK_EX | fcntl.LOCK_NB,
                )
            except OSError:
                self._lock_handle.close()
                self._lock_handle = None
                raise StoreError(
                    f"store {self.path!r} is locked by another process "
                    f"— it allows one writer at a time"
                ) from None

    def _scan_directory(self) -> Tuple[List[int], List[int]]:
        table_nums: List[int] = []
        wal_nums: List[int] = []
        for name in os.listdir(self.path):
            table_match = _TABLE_RE.match(name)
            if table_match:
                table_nums.append(int(table_match.group(1)))
                continue
            wal_match = _WAL_RE.match(name)
            if wal_match:
                wal_nums.append(int(wal_match.group(1)))
        return table_nums, wal_nums

    def _clean_orphans(
        self, table_nums: List[int], wal_nums: List[int]
    ) -> None:
        """Sweep files a crash stranded outside the manifest.

        Any SSTable the manifest does not list is the output of a
        flush or compaction that never reached its commit point; any
        WAL below the floor was superseded by a flush whose deletes
        did not finish; any ``.tmp`` is a torn checkpoint.  All are
        safe to delete *because* the manifest append is the single
        commit point.
        """
        for num in table_nums:
            name = os.path.basename(self._table_path(num))
            if name not in self._tables:
                _discard(self._table_path(num))
        for num in wal_nums:
            if num < self._wal_floor:
                _discard(self._wal_path(num))
        for name in os.listdir(self.path):
            if name.endswith(".tmp"):
                _discard(os.path.join(self.path, name))

    def _open_reader(self, name: str) -> SSTableReader:
        path = os.path.join(self.path, name)
        try:
            return SSTableReader(path)
        except (OSError, StoreError) as exc:
            raise StoreError(
                f"store {self.path!r}: manifest-listed table {name!r} "
                f"failed to open ({exc}) — the store's data cannot be "
                f"trusted; restore the file or rebuild from the "
                f"operation log"
            ) from exc

    def _replay_wals(self, wal_nums: List[int]) -> None:
        for num in sorted(wal_nums):
            if num < self._wal_floor:
                continue
            for op, seqno, key, value in replay_wal(self._wal_path(num)):
                if op == PUT_BYTE:
                    self._memtable.apply(PUT, seqno, key, value)
                elif op == TOMBSTONE_BYTE:
                    self._memtable.apply(TOMBSTONE, seqno, key, b"")
                else:
                    raise StoreError(
                        f"wal {self._wal_path(num)!r}: unknown op "
                        f"{op} — written by a newer build, or corrupt"
                    )

    # -- paths / allocation ----------------------------------------------------

    def _table_path(self, num: int) -> str:
        return os.path.join(self.path, f"sst-{num:08d}.sst")

    def _wal_path(self, num: int) -> str:
        return os.path.join(self.path, f"wal-{num:08d}.log")

    def _alloc_filenum(self) -> int:
        num = self._next_filenum
        self._next_filenum += 1
        return num

    def _check_open(self) -> None:
        if self._wal is None:
            raise StoreError(f"store {self.path!r} is closed")

    # -- writes ----------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Store ``value`` under ``key`` (acknowledged when returning)."""
        self._apply(PUT_BYTE, PUT, key, value)

    def delete(self, key: bytes) -> None:
        """Delete ``key`` — a tombstone that shadows every older put."""
        self._apply(TOMBSTONE_BYTE, TOMBSTONE, key, b"")

    def _apply(self, op: int, op_byte: bytes, key: bytes, value: bytes) -> None:
        self._check_open()
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise TypeError("store keys and values are bytes")
        if self._next_seqno >= SEQNO_MAX:
            raise StoreError("store sequence numbers exhausted")
        assert self._wal is not None
        seqno = self._next_seqno
        self._next_seqno += 1
        self._wal.append(op, seqno, key, value)
        self.wal_bytes += len(key) + len(value) + 29
        self._memtable.apply(op_byte, seqno, key, value)
        if len(self._memtable) >= self.memory:
            self.flush()

    # -- reads -----------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """The current value of ``key``, or None (absent or deleted)."""
        self._check_open()
        meta = self._memtable.lookup(key)
        if meta is None:
            for reader in self._readers.values():
                found = reader.lookup(key)
                if found is not None and (meta is None or found < meta):
                    meta = found
        if meta is None or meta_is_tombstone(meta):
            return None
        return meta_value(meta)

    def scan(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Ordered ``(key, value)`` pairs with ``start <= key < end``.

        A merge over the memtable and every live table — the same LWW
        machinery compaction runs, so a scan is always exactly what a
        fully-compacted store would contain.  Do not mutate the store
        while consuming the iterator.
        """
        self._check_open()
        streams: List[Any] = [iter(self._memtable.range_entries(start, end))]
        for reader in self._readers.values():
            streams.append(reader.entries(start, end))
        return visible_items(streams)

    def count(self) -> int:
        """Number of live (visible) keys — a full scan."""
        total = 0
        for _ in self.scan():
            total += 1
        return total

    # -- flush -----------------------------------------------------------------

    def flush(self) -> Optional[str]:
        """Persist the memtable as a level-0 table; returns its name.

        No-op (returns None) on an empty memtable.  The §11 order:
        the table is written and fsynced, *read back and verified*,
        and only then recorded in the manifest (which advances the WAL
        floor); superseded WALs are deleted last.  A verification
        failure — e.g. a bit flip injected mid-write — raises cleanly
        with the memtable and WAL intact, so nothing acknowledged is
        lost.
        """
        self._check_open()
        assert self._manifest is not None and self._wal is not None
        if len(self._memtable) == 0:
            return None
        table_num = self._alloc_filenum()
        table_path = self._table_path(table_num)
        info = write_table(
            table_path,
            self._memtable.sorted_entries(),
            max_seqno=self._memtable.max_seqno,
            block_records=self.block_records,
            codec=self.codec,
            fsync=True,
        )
        if not artifact_valid(table_path, info.records, info.crc32):
            _discard(table_path)
            raise StoreError(
                f"flush of {table_path!r} failed read-back "
                f"verification — the written bytes do not match what "
                f"was intended; the memtable and WAL are intact, so no "
                f"acknowledged write was lost"
            )
        new_wal_num = self._alloc_filenum()
        old_wal = self._wal
        self._wal = WalWriter(self._wal_path(new_wal_num), sync=self.sync)
        name = os.path.basename(table_path)
        self._manifest.append(
            {
                "type": "flush",
                "file": name,
                "filenum": table_num,
                "level": 0,
                "records": info.records,
                "crc32": info.crc32,
                "min_key": info.min_key.hex(),
                "max_key": info.max_key.hex(),
                "max_seqno": info.max_seqno,
                "wal_floor": new_wal_num,
            }
        )
        old_wal.close()
        for num in range(self._wal_floor, new_wal_num):
            _discard(self._wal_path(num))
        self._wal_floor = new_wal_num
        self._memtable = Memtable()
        self._tables[name] = {
            "file": name,
            "filenum": table_num,
            "level": 0,
            "records": info.records,
            "crc32": info.crc32,
            "min_key": info.min_key.hex(),
            "max_key": info.max_key.hex(),
            "max_seqno": info.max_seqno,
        }
        self._readers[name] = self._open_reader(name)
        self.flushed_tables += 1
        self.flushed_bytes += info.disk_bytes
        if self.auto_compact:
            self._maybe_compact()
        return name

    # -- compaction ------------------------------------------------------------

    def _levels(self) -> Dict[int, List[str]]:
        levels: Dict[int, List[str]] = {}
        for name in sorted(self._tables):
            levels.setdefault(self._tables[name]["level"], []).append(name)
        return levels

    def _maybe_compact(self) -> None:
        """Cascade leveled compaction until every level fits fan_in."""
        while True:
            levels = self._levels()
            target = None
            for level in sorted(levels):
                if len(levels[level]) > self.fan_in:
                    target = level
                    break
            if target is None:
                return
            inputs = levels[target]
            self._compact_tables(
                inputs,
                out_level=target + 1,
                drop_deletes=len(inputs) == len(self._tables),
            )

    def compact(self) -> Optional[str]:
        """Full compaction: flush, then merge *everything* into one.

        Because the merge covers every live table, tombstones are
        dropped — this is the call that makes deletes reclaim space.
        Returns the output table name (None for an empty store).
        """
        self._check_open()
        self.flush()
        inputs = sorted(self._tables)
        if not inputs:
            return None
        out_level = max(
            [1] + [self._tables[name]["level"] for name in inputs]
        )
        return self._compact_tables(inputs, out_level, drop_deletes=True)

    def _compact_tables(
        self, input_files: List[str], out_level: int, drop_deletes: bool
    ) -> Optional[str]:
        """Merge ``input_files`` into one table at ``out_level``.

        All-or-nothing: the single manifest ``compact`` append is the
        commit point; a crash before it leaves only orphan outputs
        (swept on reopen) and a crash after it only stale inputs
        (ditto).  ``reduce_to_fan_in`` bounds open readers when the
        merge is wider than ``fan_in`` — exactly the sort engine's
        intermediate-pass machinery, with intermediate *tables* in the
        role of intermediate runs.
        """
        assert self._manifest is not None
        readers: List[SSTableReader] = [
            self._readers[name] for name in input_files
        ]
        max_seqno = max(reader.max_seqno for reader in readers)
        intermediates: List[SSTableReader] = []

        def merge_group(group: Sequence[SSTableReader]) -> SSTableReader:
            num = self._alloc_filenum()
            path = self._table_path(num)
            group_info = write_table(
                path,
                merge_streams([r.entries() for r in group]),
                max_seqno=max(r.max_seqno for r in group),
                block_records=self.block_records,
                codec=self.codec,
                fsync=True,
            )
            if not artifact_valid(path, group_info.records, group_info.crc32):
                _discard(path)
                raise StoreError(
                    f"intermediate compaction table {path!r} failed "
                    f"read-back verification; compaction aborted with "
                    f"all input tables intact"
                )
            self.compacted_bytes += group_info.disk_bytes
            for member in group:
                if member in intermediates:
                    intermediates.remove(member)
                    member.close()
                    _discard(member.path)
            reader = SSTableReader(path)
            intermediates.append(reader)
            return reader

        out_name: Optional[str] = None
        try:
            survivors, _passes = reduce_to_fan_in(
                readers, self.fan_in, merge_group
            )
            merged = merge_streams(
                [reader.entries() for reader in survivors],
                drop_deletes=drop_deletes,
            )
            head = next(merged, None)
            info = None
            out_num = -1
            if head is not None:
                out_num = self._alloc_filenum()
                out_path = self._table_path(out_num)
                info = write_table(
                    out_path,
                    chain([head], merged),
                    max_seqno=max_seqno,
                    block_records=self.block_records,
                    codec=self.codec,
                    fsync=True,
                )
                if not artifact_valid(out_path, info.records, info.crc32):
                    _discard(out_path)
                    raise StoreError(
                        f"compaction output {out_path!r} failed "
                        f"read-back verification; compaction aborted "
                        f"with all input tables intact"
                    )
            if info is not None:
                out_name = os.path.basename(self._table_path(out_num))
                self._manifest.append(
                    {
                        "type": "compact",
                        "file": out_name,
                        "filenum": out_num,
                        "level": out_level,
                        "records": info.records,
                        "crc32": info.crc32,
                        "min_key": info.min_key.hex(),
                        "max_key": info.max_key.hex(),
                        "max_seqno": info.max_seqno,
                        "removes": list(input_files),
                    }
                )
            else:
                # Everything annihilated (tombstones met their puts in
                # a full merge): the compaction still commits — it just
                # has no output table.
                self._manifest.append(
                    {"type": "compact", "removes": list(input_files)}
                )
        finally:
            for reader in intermediates:
                reader.close()
                _discard(reader.path)
        for name in input_files:
            self._readers.pop(name).close()
            del self._tables[name]
            _discard(os.path.join(self.path, name))
        if out_name is not None and info is not None:
            self._tables[out_name] = {
                "file": out_name,
                "filenum": out_num,
                "level": out_level,
                "records": info.records,
                "crc32": info.crc32,
                "min_key": info.min_key.hex(),
                "max_key": info.max_key.hex(),
                "max_seqno": info.max_seqno,
            }
            self._readers[out_name] = self._open_reader(out_name)
            self.compacted_tables += 1
            self.compacted_bytes += info.disk_bytes
        return out_name

    # -- verification / introspection -------------------------------------------

    def verify(self) -> Dict[str, Any]:
        """Check every live table against its manifest record.

        Re-hashes each table's bytes against the manifest CRC
        (:func:`artifact_valid` — the same check a resumed sort runs on
        survivors), then walks every block checking framing CRCs, key
        order, uniqueness and record counts.  Raises
        :class:`StoreError` on the first discrepancy.
        """
        self._check_open()
        total = 0
        for name in sorted(self._tables):
            record = self._tables[name]
            path = os.path.join(self.path, name)
            if not artifact_valid(path, record["records"], record["crc32"]):
                raise StoreError(
                    f"table {name!r} failed whole-file CRC verification "
                    f"against its manifest record — bytes changed on "
                    f"disk since the flush/compaction that wrote it"
                )
            reader = self._readers[name]
            count = 0
            previous: Optional[bytes] = None
            for entry in reader.entries():
                if previous is not None and entry[0] <= previous:
                    raise StoreError(
                        f"table {name!r} keys are not strictly "
                        f"increasing at record {count}"
                    )
                previous = entry[0]
                count += 1
            if count != record["records"]:
                raise StoreError(
                    f"table {name!r} holds {count} records, manifest "
                    f"says {record['records']}"
                )
            total += count
        return {
            "tables": len(self._tables),
            "table_records": total,
            "memtable_records": len(self._memtable),
            "levels": {
                str(level): len(names)
                for level, names in sorted(self._levels().items())
            },
        }

    def table_names(self) -> List[str]:
        """Live table file names (sorted) — for tests and tooling."""
        return sorted(self._tables)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release the directory.  Does *not* flush the memtable —
        buffered writes are already durable in the WAL and reopen by
        replay (the module docstring explains why this is deliberate).
        """
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        for reader in self._readers.values():
            reader.close()
        self._readers = {}
        if self._manifest is not None:
            self._manifest.close()
            self._manifest = None
        if self._lock_handle is not None:
            self._lock_handle.close()
            self._lock_handle = None

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
