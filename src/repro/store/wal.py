"""Write-ahead log (DESIGN.md §17).

Every mutation is appended here *before* it is acknowledged, so the
memtable — which lives only in process memory — can always be rebuilt
after a crash.  Framing is one self-describing record per operation::

    "WREC" | crc32(body) u32 | body_len u32 | body
    body = op u8 | seqno u64 | key_len u32 | key | value

``sync=True`` fsyncs after every append (the acknowledgment point for
``repro store put``); ``sync=False`` leaves batching to the caller
(the service's bulk ingest), with :meth:`WalWriter.sync` and
:meth:`WalWriter.close` as the explicit durability points.

Replay distinguishes the two ways a WAL can be damaged:

* **Torn tail** — the crash-mid-append case the log is designed for.
  The final record fails its length or CRC check and *no valid record
  exists after it*: replay stops cleanly, dropping only the
  unacknowledged tail.
* **Mid-file corruption** — a damaged record with provably valid
  records after it.  That is not a crash artifact (appends cannot
  leapfrog), so replay raises :class:`StoreError` instead of silently
  dropping acknowledged writes.  The probe re-parses candidate frames
  (magic + CRC), so value bytes that merely *contain* the magic string
  can never turn a genuine torn tail into a false corruption report.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Any, Iterator, Tuple

from repro.engine.block_io import open_bytes
from repro.engine.errors import StoreError

__all__ = ["WAL_MAGIC", "WalWriter", "replay_wal"]

WAL_MAGIC = b"WREC"

#: magic, crc32(body), body_len.
_HEADER = struct.Struct(">4sII")

#: op, seqno, key_len — the fixed prefix of every body.
_BODY_FIXED = struct.Struct(">BQI")


class WalWriter:
    """Append-only writer for one WAL file."""

    def __init__(self, path: str, sync: bool = True) -> None:
        self.path = path
        self._sync = sync
        self._handle: Any = open_bytes(path, "a")

    def append(self, op: int, seqno: int, key: bytes, value: bytes) -> None:
        """Durably (when ``sync``) record one operation."""
        body = _BODY_FIXED.pack(op, seqno, len(key)) + key + value
        self._handle.write(
            _HEADER.pack(WAL_MAGIC, zlib.crc32(body), len(body))
        )
        self._handle.write(body)
        if self._sync:
            self.sync()

    def sync(self) -> None:
        """Flush and fsync — everything appended so far is durable."""
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None


def _valid_frame_at(data: bytes, pos: int) -> bool:
    """Whether a complete, CRC-valid WAL record starts at ``pos``."""
    header_end = pos + _HEADER.size
    if header_end > len(data):
        return False
    magic, want_crc, body_len = _HEADER.unpack_from(data, pos)
    if magic != WAL_MAGIC:
        return False
    body_end = header_end + body_len
    if body_end > len(data):
        return False
    return zlib.crc32(data[header_end:body_end]) == want_crc


def _later_valid_record(data: bytes, scan_from: int) -> bool:
    """Whether any provably valid record starts after ``scan_from``."""
    probe = data.find(WAL_MAGIC, scan_from)
    while probe != -1:
        if _valid_frame_at(data, probe):
            return True
        probe = data.find(WAL_MAGIC, probe + 1)
    return False


def replay_wal(path: str) -> Iterator[Tuple[int, int, bytes, bytes]]:
    """Yield ``(op, seqno, key, value)`` for every intact record.

    Stops cleanly at a torn tail; raises :class:`StoreError` on
    mid-file corruption (see the module docstring for how the two are
    told apart).
    """
    with open_bytes(path, "r") as handle:
        data = handle.read()
    size = len(data)
    pos = 0
    while pos < size:
        damage = None
        header_end = pos + _HEADER.size
        if header_end > size:
            damage = "truncated record header"
        else:
            magic, want_crc, body_len = _HEADER.unpack_from(data, pos)
            body_end = header_end + body_len
            if magic != WAL_MAGIC:
                damage = f"bad record magic {magic!r}"
            elif body_end > size:
                damage = (
                    f"truncated record body ({body_end - size} byte(s) "
                    f"short)"
                )
            elif zlib.crc32(data[header_end:body_end]) != want_crc:
                damage = "record failed its checksum"
        if damage is not None:
            if _later_valid_record(data, pos + 1):
                raise StoreError(
                    f"wal {path!r}: {damage} at byte {pos} with valid "
                    f"records after it — mid-file corruption, not a "
                    f"torn tail; the log cannot be trusted"
                )
            return  # torn tail: drop the unacknowledged remainder
        op, seqno, key_len = _BODY_FIXED.unpack_from(data, header_end)
        key_start = header_end + _BODY_FIXED.size
        if key_start + key_len > body_end:
            raise StoreError(
                f"wal {path!r}: record at byte {pos} declares a "
                f"{key_len}-byte key overrunning its own body — the "
                f"log writer and reader disagree"
            )
        yield (
            op,
            seqno,
            data[key_start : key_start + key_len],
            data[key_start + key_len : body_end],
        )
        pos = body_end
