"""LSM storage engine on the sort engine (DESIGN.md §17).

The store turns the batch machinery grown in PRs 1–9 into a read/write
table: a memtable absorbs puts and deletes, flushes become sorted-run
SSTables written through the same block I/O that spills sorts, and
compaction *is* the k-way merge with last-writer-wins dedup.  The §11
durability invariants (fsync before manifest append, append before
delete, torn-tail-tolerant JSONL) carry over unchanged — a store is a
sort whose work directory never gets thrown away.
"""

from repro.store.store import Store

__all__ = ["Store"]
