"""The store MANIFEST (DESIGN.md §17).

The manifest is the store's single source of truth for which tables
are live: an append-only JSONL file following the §11 journal rules —
every append is flushed and fsynced, a torn trailing line (crash
mid-append) is tolerated and repaired, a torn line anywhere *else*
rejects the file.  Entry types:

* ``meta`` — first line; schema version + store fingerprint.
* ``flush`` — a memtable became table ``file`` at level 0; carries
  records/crc32/key range/max_seqno for
  :func:`~repro.engine.resilience.artifact_valid`-style verification,
  plus ``wal_floor``: the first WAL filenum recovery must replay (all
  earlier WALs are superseded by this flush).
* ``compact`` — tables ``removes`` were merged; an output table's
  fields are present unless every record annihilated (tombstones
  meeting their puts), in which case there is no ``file`` key.
* ``state`` — a checkpoint: the full live-table list at rewrite time.
  :meth:`StoreManifest.checkpoint` rewrites the log as ``meta`` +
  ``state`` via write → fsync → ``os.replace`` — the §11 publish
  order, and the "manifest swap" fault point the fault matrix kills.

Replaying the entries in order reproduces the live-table set, the WAL
floor and the highest allocated filenum; nothing else on disk is
trusted — files the manifest does not reference are orphans from
interrupted flushes/compactions and are deleted on open.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.errors import ManifestError

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "StoreManifest",
    "replay_entries",
]

MANIFEST_NAME = "MANIFEST"

#: Manifest schema version (bumped on incompatible entry changes).
MANIFEST_VERSION = 1


class StoreManifest:
    """Append-only manifest of one store directory."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.entries: List[Dict[str, Any]] = []
        self._handle: Optional[Any] = None

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def create(
        cls, path: str, fingerprint: Dict[str, Any]
    ) -> "StoreManifest":
        """Initialise a brand-new manifest (caller checked the dir)."""
        manifest = cls(path)
        manifest._open_append()
        manifest.append(
            {
                "type": "meta",
                "version": MANIFEST_VERSION,
                "fingerprint": fingerprint,
            }
        )
        return manifest

    @classmethod
    def load(
        cls, path: str, fingerprint: Dict[str, Any]
    ) -> "StoreManifest":
        """Open an existing manifest, validating version + fingerprint."""
        manifest = cls(path)
        manifest.entries = cls._load(path)
        meta = manifest.entries[0] if manifest.entries else {}
        if meta.get("type") != "meta" or "version" not in meta:
            raise ManifestError(
                f"manifest {path!r} does not start with a meta entry — "
                f"not a store manifest, or its head was destroyed"
            )
        if meta.get("version") != MANIFEST_VERSION:
            raise ManifestError(
                f"manifest {path!r} has schema version "
                f"{meta.get('version')}, this build reads version "
                f"{MANIFEST_VERSION}"
            )
        if meta.get("fingerprint") != fingerprint:
            raise ManifestError(
                f"manifest {path!r} belongs to a store with fingerprint "
                f"{meta.get('fingerprint')!r}, not {fingerprint!r} — "
                f"refusing to touch another format's data"
            )
        manifest._open_append()
        return manifest

    @staticmethod
    def _load(path: str) -> List[Dict[str, Any]]:
        entries: List[Dict[str, Any]] = []
        # repro: lint-waive R002 the manifest is the recovery mechanism; wrapping it in the fault seam it arbitrates would be circular
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    break  # torn final append — the crash we planned for
                raise ManifestError(
                    f"manifest {path!r} is corrupt at line {index + 1}; "
                    f"a store manifest only ever grows by appending, so "
                    f"damage before the tail means the file cannot be "
                    f"trusted"
                ) from None
            if not isinstance(entry, dict):
                raise ManifestError(
                    f"manifest {path!r} line {index + 1} is not an "
                    f"object — the file is not a store manifest"
                )
            entries.append(entry)
        return entries

    def _open_append(self) -> None:
        # Repair a torn final append before extending the file — same
        # reasoning as SortJournal: appending after a partial line
        # would fuse two entries into one unparseable mid-file line.
        try:
            # repro: lint-waive R002 binary in-place torn-tail repair; open_bytes has no rb+ mode and must not fault-inject the manifest
            with open(self.path, "rb+") as repair:
                data = repair.read()
                if data and not data.endswith(b"\n"):
                    repair.truncate(data.rfind(b"\n") + 1)
        except FileNotFoundError:
            pass
        # repro: lint-waive R002 manifest appends must bypass the seam they make recoverable; close() owns this handle
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, entry: Dict[str, Any]) -> None:
        """Durably record one entry (write + flush + fsync)."""
        assert self._handle is not None, "manifest is not open for append"
        self.entries.append(entry)
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def checkpoint(self) -> None:
        """Rewrite the log compactly: meta + one ``state`` entry.

        This is the manifest *swap*: the replacement is written beside
        the live file, fsynced, and published with ``os.replace`` — a
        crash at any earlier point leaves the old (longer but valid)
        manifest untouched.
        """
        assert self._handle is not None, "manifest is not open"
        tables, wal_floor, _ = replay_entries(self.path, self.entries)
        compacted: List[Dict[str, Any]] = [
            self.entries[0],
            {
                "type": "state",
                "tables": [tables[name] for name in sorted(tables)],
                "wal_floor": wal_floor,
            },
        ]
        tmp = self.path + ".tmp"
        # repro: lint-waive R002 manifest checkpoint is recovery metadata; injecting faults here would fake the commit point itself
        with open(tmp, "w", encoding="utf-8") as handle:
            for entry in compacted:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._handle.close()
        self._handle = None
        os.replace(tmp, self.path)
        self.entries = compacted
        self._open_append()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "StoreManifest":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def replay_entries(
    path: str, entries: List[Dict[str, Any]]
) -> Tuple[Dict[str, Dict[str, Any]], int, int]:
    """Fold manifest ``entries`` into ``(tables, wal_floor, max_filenum)``.

    ``tables`` maps table file name → its manifest record (the fields
    of the ``flush``/``compact`` entry that created it).  Raises
    :class:`ManifestError` on internally inconsistent histories — a
    compaction removing a table that was never live means the log did
    not grow append-only.
    """
    tables: Dict[str, Dict[str, Any]] = {}
    wal_floor = 0
    max_filenum = -1

    def _adopt(entry: Dict[str, Any], line: int) -> None:
        nonlocal max_filenum
        required = (
            "file", "filenum", "level", "records", "crc32", "min_key",
            "max_key", "max_seqno",
        )
        missing = [field for field in required if field not in entry]
        if missing:
            raise ManifestError(
                f"manifest {path!r} entry {line} lacks required "
                f"field(s) {', '.join(missing)} — the manifest schema "
                f"was violated"
            )
        tables[entry["file"]] = {field: entry[field] for field in required}
        max_filenum = max(max_filenum, int(entry["filenum"]))

    for line, entry in enumerate(entries, start=1):
        kind = entry.get("type")
        if kind == "meta":
            continue
        if kind == "state":
            tables.clear()
            for record in entry.get("tables", []):
                _adopt(record, line)
            wal_floor = max(wal_floor, int(entry.get("wal_floor", 0)))
        elif kind == "flush":
            _adopt(entry, line)
            wal_floor = max(wal_floor, int(entry.get("wal_floor", 0)))
        elif kind == "compact":
            for name in entry.get("removes", []):
                if name not in tables:
                    raise ManifestError(
                        f"manifest {path!r} entry {line} compacts "
                        f"{name!r}, which is not a live table — the "
                        f"manifest history is inconsistent"
                    )
                del tables[name]
            if "file" in entry:
                _adopt(entry, line)
        else:
            raise ManifestError(
                f"manifest {path!r} entry {line} has unknown type "
                f"{kind!r} — written by a newer build, or corrupt"
            )
    return tables, wal_floor, max_filenum
