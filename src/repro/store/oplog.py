"""Text ⇄ bytes codec for store keys, values and operation logs.

Store keys and values are arbitrary bytes, but the CLI and the service
speak line-oriented text.  This module fixes one reversible escaping
so both directions are lossless:

* printable ASCII passes through, except backslash and tab (the field
  separator), which escape to ``\\\\`` and ``\\t``;
* newline and carriage return escape to ``\\n`` and ``\\r``;
* every other byte renders as ``\\xNN``.

``unescape_bytes`` additionally accepts non-ASCII *text* (a user
typing a unicode key at the shell) by storing its UTF-8 bytes — the
escaped rendering of such a key is then the ``\\xNN`` form, so
``unescape_bytes(escape_bytes(data)) == data`` holds for every byte
string.

An *operation log* is a text file of one operation per line::

    put\\tKEY\\tVALUE
    del\\tKEY

with KEY/VALUE escaped as above.  ``repro store ingest`` applies one;
``repro store scan`` emits ``KEY\\tVALUE`` lines in the same escaping,
so a scan of store A piped through ``ingest`` rebuilds its live items
in store B.  The differential tests replay the same logs against a
sqlite oracle.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = [
    "escape_bytes",
    "unescape_bytes",
    "format_item",
    "parse_op_line",
]

_ESCAPES = {0x5C: "\\\\", 0x09: "\\t", 0x0A: "\\n", 0x0D: "\\r"}


def escape_bytes(data: bytes) -> str:
    """Render raw bytes as one unambiguous, tab-free text token."""
    parts = []
    for byte in data:
        mapped = _ESCAPES.get(byte)
        if mapped is not None:
            parts.append(mapped)
        elif 0x20 <= byte < 0x7F:
            parts.append(chr(byte))
        else:
            parts.append(f"\\x{byte:02x}")
    return "".join(parts)


def unescape_bytes(text: str) -> bytes:
    """Invert :func:`escape_bytes`; raises :class:`ValueError` on
    malformed escapes so a typo'd oplog fails loudly, not silently."""
    out = bytearray()
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "\\":
            code = ord(ch)
            if code < 0x80:
                out.append(code)
            else:
                out.extend(ch.encode("utf-8"))
            i += 1
            continue
        if i + 1 >= n:
            raise ValueError(
                f"dangling backslash at end of token {text!r}"
            )
        nxt = text[i + 1]
        if nxt == "\\":
            out.append(0x5C)
            i += 2
        elif nxt == "t":
            out.append(0x09)
            i += 2
        elif nxt == "n":
            out.append(0x0A)
            i += 2
        elif nxt == "r":
            out.append(0x0D)
            i += 2
        elif nxt == "x":
            pair = text[i + 2 : i + 4]
            try:
                if len(pair) != 2:
                    raise ValueError
                out.append(int(pair, 16))
            except ValueError:
                raise ValueError(
                    f"bad \\x escape at offset {i} of token {text!r}: "
                    f"expected two hex digits"
                ) from None
            i += 4
        else:
            raise ValueError(
                f"unknown escape \\{nxt} at offset {i} of token "
                f"{text!r} (known: \\\\ \\t \\n \\r \\xNN)"
            )
    return bytes(out)


def format_item(key: bytes, value: bytes) -> str:
    """One scan-output line (no trailing newline)."""
    return f"{escape_bytes(key)}\t{escape_bytes(value)}"


def parse_op_line(
    line: str, lineno: int = 0
) -> Optional[Tuple[str, bytes, bytes]]:
    """Parse one oplog line into ``(op, key, value)``.

    Blank lines return None (skippable); anything else malformed
    raises :class:`ValueError` naming the line.  ``del`` lines carry
    ``b""`` as their value.
    """
    line = line.rstrip("\r\n")
    if not line:
        return None
    parts = line.split("\t")
    op = parts[0]
    if op == "put":
        if len(parts) != 3:
            raise ValueError(
                f"oplog line {lineno}: 'put' takes KEY<TAB>VALUE, got "
                f"{len(parts) - 1} field(s)"
            )
        return op, unescape_bytes(parts[1]), unescape_bytes(parts[2])
    if op == "del":
        if len(parts) != 2:
            raise ValueError(
                f"oplog line {lineno}: 'del' takes KEY alone, got "
                f"{len(parts) - 1} field(s)"
            )
        return op, unescape_bytes(parts[1]), b""
    raise ValueError(
        f"oplog line {lineno}: unknown op {op!r} (expected put or del)"
    )
