"""Finding and waiver plumbing shared by every lint rule.

A :class:`Finding` names one violated invariant at one source line.
Waivers (``# repro: lint-waive R00N <reason>``) suppress a finding on
their own line or the line directly below — never a whole file — and
must carry a non-empty reason; a reasonless waiver is reported as
``R000`` and cannot itself be waived.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

__all__ = [
    "CORPUS_MARKER",
    "Finding",
    "collect_waivers",
    "corpus_logical_path",
    "suppress_waived",
]

#: Header token marking a lint-corpus fixture file (skipped by walks).
CORPUS_MARKER = "repro-lint-corpus"

_WAIVE_RE = re.compile(
    r"#\s*repro:\s*lint-waive\s+(R\d{3})\b[ \t]*(.*?)\s*$"
)
_CORPUS_RE = re.compile(r"#\s*" + CORPUS_MARKER + r":\s*(\S+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def corpus_logical_path(lines: Sequence[str]) -> str | None:
    """The pretend path a corpus fixture declares, if any.

    Corpus snippets exercise path-scoped rules (R002 only fires inside
    the engine/sort/ops/merge packages, R003 only in resilience.py),
    so each fixture names the path it pretends to live at in a header
    comment: ``# repro-lint-corpus: src/repro/engine/example.py``.
    """
    for line in lines[:5]:
        match = _CORPUS_RE.search(line)
        if match:
            return match.group(1)
    return None


def collect_waivers(
    path: str, lines: Sequence[str]
) -> Tuple[Dict[str, Set[int]], List[Finding]]:
    """Parse waiver comments; returns ``(covered, bad_waivers)``.

    ``covered`` maps a rule id to the set of line numbers it is waived
    on (the waiver's own line and the next line, so a waiver comment
    can sit inline or directly above the flagged statement).  A waiver
    without a reason string is returned as an R000 finding instead of
    taking effect — the escape hatch requires justification.
    """
    covered: Dict[str, Set[int]] = {}
    bad: List[Finding] = []
    for number, line in enumerate(lines, start=1):
        match = _WAIVE_RE.search(line)
        if match is None:
            continue
        rule, reason = match.group(1), match.group(2)
        if not reason:
            bad.append(
                Finding(
                    path,
                    number,
                    "R000",
                    f"waiver for {rule} has no reason; write "
                    f"'# repro: lint-waive {rule} <why this is safe>'",
                )
            )
            continue
        covered.setdefault(rule, set()).update((number, number + 1))
    return covered, bad


def suppress_waived(
    findings: Sequence[Finding], covered: Dict[str, Set[int]]
) -> List[Finding]:
    """Drop findings a (reasoned) waiver covers."""
    return [
        finding
        for finding in findings
        if finding.line not in covered.get(finding.rule, ())
    ]
