"""R007 (merge hot-loop purity): no per-record decoding in the merge.

The binary spill format exists so the merge stage compares raw,
order-preserving key bytes (DESIGN.md §14): records enter the heap as
``(key_bytes, payload_bytes)`` pairs and every comparison is one
C-level ``bytes`` compare.  A single ``fmt.decode(...)`` or
``fmt.key(...)`` call sneaking back into the k-way merge or its block
readers re-introduces a Python-level call per *record* — the exact
cost the format was built to remove, and one that no test notices
because the output is still correct.

The rule therefore bans ``*.decode(...)`` and ``*.key(...)`` calls
inside the merge hot-loop modules (:mod:`repro.merge.kway` and
:mod:`repro.engine.merge_reading`) and the store's scan/compaction
hot loops (:mod:`repro.store.sstable`, :mod:`repro.store.compaction`),
whose §17 meta layout exists precisely so LWW dedup and tombstone
checks stay tuple-and-slice work.  Work that is genuinely per-block
rather than per-record (e.g. the forecasting reader's run-tail key)
carries an explicit waiver naming that reason; anything per-record
belongs either in ``block_io`` (where text formats decode
block-at-a-time) or at the final output boundary.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.astutil import last_component
from repro.lint.findings import Finding
from repro.lint.registry import FileContext, rule

#: Modules whose loops must never pay a per-record decode.
_HOT_MODULES = (
    "repro/merge/kway.py",
    "repro/engine/merge_reading.py",
    "repro/store/sstable.py",
    "repro/store/compaction.py",
)

#: Method names whose call re-introduces per-record Python decoding.
_BANNED_METHODS = ("decode", "decode_block", "key")


def _in_hot_module(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(normalized.endswith(module) for module in _HOT_MODULES)


@rule("R007")
def check_hot_loop_purity(ctx: FileContext) -> List[Finding]:
    """Flag decode()/key() calls inside the merge hot-loop modules."""
    if not _in_hot_module(ctx.logical_path):
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue  # bare decode()/key() names are not format calls
        method = last_component(node.func)
        if method not in _BANNED_METHODS:
            continue
        findings.append(
            Finding(
                ctx.path,
                node.lineno,
                "R007",
                f"{method}() in a merge hot-loop module pays a Python "
                f"call per record, defeating the binary format's raw "
                f"byte comparisons — decode at the final output "
                f"boundary (or in block_io's block readers), or waive "
                f"with the reason this call is per-block, not "
                f"per-record",
            )
        )
    return findings
