"""R004 — MemoryBroker request/release pairing.

PR 1's over-allocation and livelock bugs were both unpaired-broker
bugs: memory requested and never released (or released twice) drifts
the shared pool until concurrent sorts starve.  PR 2 then added the
harder variant — a worker that dies *between* request and release
leaks its grant forever, which is why ``sort_shard`` releases in a
``finally`` and on the acquisition error path.

The rule checks every function (outside the broker module itself)
that calls ``request`` / ``request_or_enqueue`` / ``try_allocate`` on
some receiver:

* the function must also call ``release`` / ``release_and_regrant``
  / ``cancel_owner`` (the job-cancellation path releases *and*
  retires the owner) on the *same* receiver, and at least one must sit
  inside a ``finally`` block or ``except`` handler — a straight-line
  release never runs when the sorting work in between raises; or
* the granted amount must escape via ``return`` (an acquisition
  helper like ``_acquire_memory`` transfers the pairing obligation to
  its caller, which is then linted itself).

Scoped to ``src/repro`` (tests hammer brokers in deliberately
unpaired ways to prove the accounting).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.lint.astutil import (
    Scope,
    dotted,
    guarded_lines,
    iter_scopes,
    last_component,
    name_used_in,
)
from repro.lint.findings import Finding
from repro.lint.registry import FileContext, rule

_REQUESTS = ("request", "request_or_enqueue", "try_allocate")
_RELEASES = ("release", "release_and_regrant", "cancel_owner")


def _in_scope(logical_path: str) -> bool:
    path = logical_path.replace("\\", "/")
    return (
        "repro/" in path
        and "tests/" not in path
        and "memory_broker" not in path
    )


def _receiver(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return dotted(call.func.value)
    return None


def _request_calls(scope: Scope) -> List[Tuple[ast.Call, str, Optional[str]]]:
    """``(call, receiver, assigned_name)`` per request in the scope."""
    assigned = {}
    for node in scope.nodes():
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and isinstance(
                node.value, ast.Call
            ):
                assigned[id(node.value)] = target.id
    requests = []
    for node in scope.nodes():
        if (
            isinstance(node, ast.Call)
            and last_component(node.func) in _REQUESTS
        ):
            receiver = _receiver(node)
            if receiver is not None:
                requests.append((node, receiver, assigned.get(id(node))))
    return requests


def _grant_escapes(scope: Scope, call: ast.Call, name: Optional[str]) -> bool:
    for node in scope.nodes():
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        if name is not None and name_used_in(node.value, name):
            return True
        if any(sub is call for sub in ast.walk(node.value)):
            return True
    return False


@rule("R004")
def check_broker_pairing(ctx: FileContext) -> List[Finding]:
    if not _in_scope(ctx.logical_path):
        return []
    findings: List[Finding] = []
    for scope in iter_scopes(ctx.tree):
        if isinstance(scope.node, ast.ClassDef):
            continue
        requests = _request_calls(scope)
        if not requests:
            continue
        guarded = guarded_lines(scope)
        releases = [
            (node, _receiver(node))
            for node in scope.nodes()
            if isinstance(node, ast.Call)
            and last_component(node.func) in _RELEASES
        ]
        for call, receiver, assigned_name in requests:
            if _grant_escapes(scope, call, assigned_name):
                continue  # acquisition helper; the caller owns pairing
            paired = [rel for rel, recv in releases if recv == receiver]
            method = last_component(call.func)
            if not paired:
                findings.append(
                    Finding(
                        ctx.path,
                        call.lineno,
                        "R004",
                        f"{receiver}.{method}() has no matching release "
                        f"on {receiver!r} in this function — an "
                        f"unreleased grant shrinks the shared pool for "
                        f"every other sort until the process dies",
                    )
                )
            elif not any(rel.lineno in guarded for rel in paired):
                findings.append(
                    Finding(
                        ctx.path,
                        call.lineno,
                        "R004",
                        f"release for {receiver}.{method}() only runs "
                        f"on the happy path — put it in a finally (or "
                        f"the except handler) so a raise between "
                        f"request and release cannot leak the grant",
                    )
                )
    return findings
