"""Lint driver: parse files, run every registered rule, apply waivers.

``lint_source`` is the core (one source text in, findings out);
``lint_file`` and ``lint_paths`` layer file reading and directory
walking on top, and ``main`` is the ``python -m repro.lint`` entry
point.  Directory walks skip corpus fixtures (files carrying the
``# repro-lint-corpus:`` header) so the deliberately-bad rule corpus
never turns the repo gate red; naming a corpus file *directly* on the
command line lints it, which is how the corpus tests drive the CLI.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterable, List, Optional, Sequence

from repro.lint.findings import (
    Finding,
    collect_waivers,
    corpus_logical_path,
    suppress_waived,
)
from repro.lint.registry import RULES, FileContext

# Importing the rule modules populates the registry as a side effect.
from repro.lint import (  # noqa: F401  (imported for registration)
    rules_broker,
    rules_determinism,
    rules_durability,
    rules_hotloop,
    rules_pickle,
    rules_resource,
)

__all__ = ["RULES", "lint_file", "lint_paths", "lint_source", "main"]

_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".pytest_cache"}


def lint_source(
    source: str, path: str, logical_path: Optional[str] = None
) -> List[Finding]:
    """Lint one source text; ``path`` labels the findings."""
    lines = source.splitlines()
    if logical_path is None:
        logical_path = corpus_logical_path(lines) or path
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path,
                exc.lineno or 1,
                "R000",
                f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=path, logical_path=logical_path, tree=tree, lines=lines
    )
    findings: List[Finding] = []
    for _rule_id, check in RULES:
        findings.extend(check(ctx))
    covered, bad_waivers = collect_waivers(path, lines)
    return sorted(suppress_waived(findings, covered) + bad_waivers)


def lint_file(path: str) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path)


def _is_corpus_file(path: str) -> bool:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            head = [handle.readline() for _ in range(5)]
    except OSError:
        return False
    return corpus_logical_path(head) is not None


def _python_files_under(root: str) -> Iterable[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            name
            for name in dirnames
            if name not in _SKIP_DIRS and not name.startswith(".")
        )
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint files and directory trees; corpus fixtures are walked past."""
    findings: List[Finding] = []
    for path in paths:
        if os.path.isdir(path):
            for filename in _python_files_under(path):
                if _is_corpus_file(filename):
                    continue
                findings.extend(lint_file(filename))
        else:
            findings.extend(lint_file(path))
    return sorted(findings)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.lint [paths...]``."""
    args = list(argv) if argv is not None else sys.argv[1:]
    if args and args[0] in ("-h", "--help"):
        print(__doc__)
        print("usage: python -m repro.lint [path ...]   (default: src/ tests/)")
        return 0
    paths = args or [p for p in ("src", "tests") if os.path.isdir(p)]
    try:
        findings = lint_paths(paths)
    except OSError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.format())
    if findings:
        print(
            f"repro.lint: {len(findings)} finding(s) in "
            f"{len({f.path for f in findings})} file(s)",
            file=sys.stderr,
        )
        return 2
    return 0
