"""Small AST helpers shared by the rule modules.

The rules reason about *scopes* — a module body, a class body, or one
function body — without descending into nested function or class
definitions (each of those is its own scope with its own resource and
pairing obligations).  :func:`iter_scopes` yields every scope of a
parsed module together with its enclosing class, and
:func:`scope_nodes` walks all AST nodes that belong directly to one
scope.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Union

__all__ = [
    "Scope",
    "call_args_contain_dict_key",
    "dotted",
    "guarded_lines",
    "iter_scopes",
    "last_component",
    "name_used_in",
    "scope_nodes",
]

_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

ScopeNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef]


@dataclass
class Scope:
    """One lexical scope: a module, class, or function body."""

    name: str
    node: ScopeNode
    parent_class: Optional[ast.ClassDef]

    def nodes(self) -> List[ast.AST]:
        """Every AST node directly in this scope, in source order."""
        return list(scope_nodes(self.node))


def scope_nodes(root: ScopeNode) -> Iterator[ast.AST]:
    """Walk ``root``'s body without entering nested scope definitions."""
    for stmt in root.body:
        yield from _walk_shallow(stmt)


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    yield node
    if isinstance(node, _SCOPE_TYPES):
        return  # a nested def/class is its own scope; don't leak its body
    for child in ast.iter_child_nodes(node):
        yield from _walk_shallow(child)


def iter_scopes(tree: ast.Module) -> Iterator[Scope]:
    """Yield the module scope and every (nested) class/function scope."""
    yield Scope("<module>", tree, None)
    yield from _nested_scopes(tree, None)


def _nested_scopes(
    root: ast.AST, enclosing_class: Optional[ast.ClassDef]
) -> Iterator[Scope]:
    for child in ast.iter_child_nodes(root):
        if isinstance(child, ast.ClassDef):
            yield Scope(child.name, child, enclosing_class)
            yield from _nested_scopes(child, child)
        elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield Scope(child.name, child, enclosing_class)
            yield from _nested_scopes(child, enclosing_class)
        else:
            yield from _nested_scopes(child, enclosing_class)


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def last_component(node: ast.AST) -> Optional[str]:
    """The final attribute/name of a call target (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def name_used_in(node: ast.AST, name: str) -> bool:
    """True when ``name`` is loaded anywhere inside ``node``."""
    return any(
        isinstance(sub, ast.Name) and sub.id == name
        for sub in ast.walk(node)
    )


def call_args_contain_dict_key(call: ast.Call, key: str) -> bool:
    """True when any literal-dict argument of ``call`` has entry ``key``."""
    for arg in call.args:
        if isinstance(arg, ast.Dict):
            for dict_key in arg.keys:
                if (
                    isinstance(dict_key, ast.Constant)
                    and dict_key.value == key
                ):
                    return True
    return False


def guarded_lines(scope: Scope) -> Set[int]:
    """Line numbers inside any ``finally`` block or ``except`` handler.

    Used to decide whether a paired cleanup call actually runs on
    exception exits, not just on the happy path.
    """
    lines: Set[int] = set()
    for node in scope.nodes():
        if not isinstance(node, ast.Try):
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if hasattr(sub, "lineno"):
                    lines.add(sub.lineno)
        for handler in node.handlers:
            for sub in ast.walk(handler):
                if hasattr(sub, "lineno"):
                    lines.add(sub.lineno)
    return lines
