"""R006 — no ambient nondeterminism in the sort core.

The resumability and differential harnesses (PR 4/5) assert that a
crashed-and-resumed sort produces byte-identical output to an
uninterrupted one, and that every engine agrees with every other.
Both guarantees die the moment core code consults an ambient source of
entropy: an unseeded ``random`` call or a wall-clock read that leaks
into output or control flow.

Within ``repro/core``, ``repro/engine``, ``repro/merge``,
``repro/ops``, ``repro/service`` and ``repro/store`` the rule flags:

* module-level ``random.X(...)`` calls (``random.random``,
  ``random.shuffle`` … share the hidden global generator).  A seeded
  instance — ``random.Random(seed)`` — is the sanctioned alternative
  and is allowed; a *no-argument* ``random.Random()`` seeds itself
  from the OS and is flagged;
* ``from random import <anything but Random>`` — the bare names make
  global-generator calls unreviewable at the call site;
* wall-clock reads: any ``X.time()`` / ``X.time_ns()`` call (not just
  the literal ``time.time`` — an aliased module dodges a
  spelled-out-name check) and ``datetime...now`` / ``utcnow`` /
  ``today``.  Monotonic measurement (``perf_counter``, ``monotonic``)
  and ``sleep`` are fine — they time work, they do not stamp output.
  One carve-out: ``loop.time()`` — the asyncio event loop's clock is
  monotonic by contract, and it is the sanctioned timestamp source for
  the resident service.

Report/bench code is deliberately out of scope (timings belong there),
as are tests.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.astutil import dotted, last_component
from repro.lint.findings import Finding
from repro.lint.registry import FileContext, rule

_CORE_PACKAGES = ("core", "engine", "merge", "ops", "service", "store")
_WALL_CLOCK_NAMES = ("time", "time_ns")
_DATETIME_READS = ("now", "utcnow", "today")
#: The asyncio event loop's clock is monotonic by contract; the
#: resident service stamps uptime/latency with it, never wall time.
_MONOTONIC_RECEIVERS = ("loop",)


def _in_scope(logical_path: str) -> bool:
    path = logical_path.replace("\\", "/")
    return any(f"repro/{package}/" in path for package in _CORE_PACKAGES)


def _is_monotonic_receiver(target: str) -> bool:
    """``loop.time()`` (any ``*loop`` receiver) is monotonic, not wall."""
    receiver = target.rsplit(".", 1)[0]
    return receiver.split(".")[-1].endswith(_MONOTONIC_RECEIVERS)


def _flag(ctx: FileContext, node: ast.AST, detail: str) -> Finding:
    return Finding(
        ctx.path,
        node.lineno,
        "R006",
        f"{detail} — resumed and differential sorts must be "
        f"byte-identical, so core code takes seeds and clocks as "
        f"inputs instead of reading ambient ones",
    )


@rule("R006")
def check_determinism(ctx: FileContext) -> List[Finding]:
    if not _in_scope(ctx.logical_path):
        return []
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            bare = [
                alias.name
                for alias in node.names
                if alias.name != "Random"
            ]
            if bare:
                findings.append(
                    _flag(
                        ctx,
                        node,
                        f"'from random import {', '.join(bare)}' pulls "
                        f"global-generator functions into the core",
                    )
                )
        if not isinstance(node, ast.Call):
            continue
        target = dotted(node.func) or ""
        if target == "random.Random":
            if not node.args and not node.keywords:
                findings.append(
                    _flag(
                        ctx,
                        node,
                        "random.Random() with no seed argument draws "
                        "its state from the OS",
                    )
                )
        elif target.startswith("random."):
            findings.append(
                _flag(
                    ctx,
                    node,
                    f"{target}() uses the hidden global random "
                    f"generator; use an injected random.Random(seed)",
                )
            )
        elif (
            "." in target
            and last_component(node.func) in _WALL_CLOCK_NAMES
            and not _is_monotonic_receiver(target)
        ):
            findings.append(
                _flag(
                    ctx,
                    node,
                    f"{target}() reads the wall clock; use "
                    f"time.perf_counter() for durations, loop.time() "
                    f"on the event loop, or accept a clock parameter",
                )
            )
        elif (
            last_component(node.func) in _DATETIME_READS
            and "datetime" in target
        ):
            findings.append(
                _flag(ctx, node, f"{target}() reads the wall clock")
            )
    return findings
