"""Project-invariant static analysis (``python -m repro.lint``).

Every rule in this package encodes an invariant the codebase already
paid for in a real incident (CHANGES.md; DESIGN.md §13):

========  ==========================================================
rule      invariant (motivating incident)
========  ==========================================================
R001      resource safety: a file handle or :class:`BlockWriter`
          must not escape without a context manager, a ``finally``
          close, or an ownership transfer (the PR-4 ``kway_merge``
          reader leak).
R002      fault seam: record block I/O in ``engine``/``sort``/
          ``ops``/``merge`` must go through ``block_io.open_text``,
          never builtin ``open()`` — a bypass silently escapes fault
          injection and CRC checking (PR-4 harness).
R003      durability order in ``engine.resilience``: fsync before the
          journal append that references a file, journal append
          before deleting the inputs it supersedes (DESIGN.md §11
          write→fsync→journal→delete).
R004      broker pairing: a ``MemoryBroker`` request must be released
          on every exit path (the PR-1 over-allocation bug).
R005      spawn picklability: exception classes must round-trip
          ``pickle`` or a worker raising one hangs the pool forever
          (the PR-4 ``CorruptBlockError`` hang).
R006      determinism: no unseeded ``random`` / wall-clock ``time``
          calls in ``core``/``engine``/``merge``/``ops`` — resumed
          and differential sorts must be byte-identical.
========  ==========================================================

A finding is reported as ``file:line: R00N message``.  Any finding can
be waived in source with ``# repro: lint-waive R00N <reason>`` on the
flagged line or the line above; the reason is mandatory (an empty one
is itself a finding, R000).

The rule corpus under ``tests/lint_corpus/`` locks each rule's
behaviour with known-bad and known-good snippets; corpus files carry a
``# repro-lint-corpus:`` header and are skipped by directory walks so
``python -m repro.lint src/ tests/`` stays green while the corpus
itself stays red.

This package is stdlib-only (``ast`` + ``pickle``) by design: it runs
in CI before any third-party install step.  It is unrelated to
:mod:`repro.analysis`, which holds the *paper's* closed-form run-length
analysis, not static analysis of this codebase.
"""

from repro.lint.engine import (
    RULES,
    lint_file,
    lint_paths,
    lint_source,
    main,
)
from repro.lint.findings import Finding

__all__ = [
    "Finding",
    "RULES",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]
