"""R001 (resource safety) and R002 (fault-seam bypass).

R001 — the PR-4 leak class: ``kway_merge`` held open run files until a
``finally`` was added, and a :class:`~repro.engine.block_io.
BlockWriter` that is never flushed silently drops its buffered tail
(the PR-3 ``write_all`` aliasing bug surfaced exactly there).  The
rule flags an ``open``/``open_text`` call whose handle is bound to a
name without any of the accepted custody arrangements:

* used as a ``with`` context manager (never bound, nothing to check);
* closed inside a ``finally`` block of the same function;
* re-entered as a ``with`` target (``with handle:`` /
  ``with closing(handle):``);
* ownership transferred — the handle is returned or yielded (the
  caller is then linted for *its* custody), or the call is consumed
  directly by another expression;
* stored on ``self`` when the class (or an enclosing one) closes that
  attribute somewhere — the journal/reader pattern, where ``close()``
  owns the handle's lifetime.

A bare ``open(...)`` expression statement (handle discarded on the
spot) is always flagged.  ``BlockWriter`` instances bound to a name
must see a ``flush()`` call somewhere in the same function.

R002 — the fault seam: every spill/shard/partition file in the
``engine``/``sort``/``ops``/``merge``/``store`` packages must be
opened through :func:`repro.engine.block_io.open_text` (or its binary
sibling ``open_bytes``), the single seam the fault-injection harness
and CRC verification wrap.  A direct builtin
``open()`` there silently escapes both; so does a compression *file*
API (``lzma.open``/``gzip.open``/``bz2.open`` or their ``LZMAFile``/
``GzipFile``/``BZ2File`` constructors), which is the tempting shortcut
when writing codec code — spill compression must stay block-at-a-time
(``zlib.compress``/``lzma.compress`` on in-memory bodies inside the
RBLC framing, DESIGN.md §15) so corruption maps to one block and the
fault harness sees every byte.  Metadata I/O that genuinely must not
be fault-wrapped (journal manifests, completion markers, binary CRC
verification reads) carries an explicit waiver naming that reason.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.astutil import (
    Scope,
    dotted,
    iter_scopes,
    last_component,
    name_used_in,
)
from repro.lint.findings import Finding
from repro.lint.registry import FileContext, rule

#: Call targets whose result is a file handle needing custody.
_OPENERS = ("open", "open_text", "open_bytes", "open_run")

#: Packages whose record I/O must go through the open_text seam.
_SEAM_PACKAGES = ("engine", "sort", "ops", "merge", "store")

#: Compression *file* APIs (module.open) that stream a whole file
#: through the codec, hiding it from the seam and from per-block CRCs.
_CODEC_FILE_OPENS = ("lzma.open", "gzip.open", "bz2.open")

#: Their class-constructor spellings, matched on the last component so
#: both ``lzma.LZMAFile(...)`` and a bare imported ``LZMAFile(...)``
#: are caught.
_CODEC_FILE_CLASSES = ("LZMAFile", "GzipFile", "BZ2File")


def _is_opener(call: ast.Call) -> bool:
    # Builtin ``open`` only as a bare name: ``fs.open(...)`` and
    # friends are domain methods (e.g. the iosim FileSystem), not file
    # handles.  The block_io seam openers (``open_text`` and its
    # binary/format-dispatching siblings ``open_bytes``/``open_run``)
    # count however they are reached, e.g. ``block_io.open_text(...)``.
    if isinstance(call.func, ast.Name) and call.func.id == "open":
        return True
    return last_component(call.func) in _OPENERS[1:]


def _is_blockwriter(call: ast.Call) -> bool:
    return last_component(call.func) == "BlockWriter"


def _handle_bindings(
    scope: Scope,
) -> Iterator[Tuple[ast.AST, ast.Call, Optional[str], Optional[ast.Attribute]]]:
    """Yield ``(stmt, call, bound_name, bound_attr)`` for opener results.

    ``bound_name`` is set for ``h = open_text(...)``, ``bound_attr``
    for ``self.h = open_text(...)``; both are None for a discarded
    ``open(...)`` expression statement.
    """
    for node in scope.nodes():
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        elif isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Call) and _is_opener(node.value):
                yield node, node.value, None, None
            continue
        else:
            continue
        if not (isinstance(value, ast.Call) and _is_opener(value)):
            continue
        if isinstance(target, ast.Name):
            yield node, value, target.id, None
        elif isinstance(target, ast.Attribute):
            yield node, value, None, target


def _closed_in_finally(scope: Scope, name: str) -> bool:
    for node in scope.nodes():
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                target = dotted(sub.func)
                if target == f"{name}.close":
                    return True
                if (
                    last_component(sub.func) in ("close_stream", "closing")
                    and any(name_used_in(arg, name) for arg in sub.args)
                ):
                    return True
    return False


def _ownership_transferred(scope: Scope, name: str) -> bool:
    for node in scope.nodes():
        if isinstance(node, ast.Return) and node.value is not None:
            if name_used_in(node.value, name):
                return True
        if isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value:
            if name_used_in(node.value, name):
                return True
        if isinstance(node, ast.With):
            for item in node.items:
                if name_used_in(item.context_expr, name):
                    return True
    return False


def _attribute_closed_in_class(
    scope: Scope, attribute: ast.Attribute
) -> bool:
    """True when the enclosing class closes ``self.<attr>`` anywhere."""
    klass = scope.parent_class
    if klass is None:
        return False
    wanted = attribute.attr
    for node in ast.walk(klass):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "close"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == wanted
        ):
            return True
    return False


@rule("R001")
def check_resource_safety(ctx: FileContext) -> List[Finding]:
    """Flag escaping handles and unflushed BlockWriters."""
    findings: List[Finding] = []
    for scope in iter_scopes(ctx.tree):
        if isinstance(scope.node, ast.ClassDef):
            continue  # class bodies hold defs; statements are rare+odd
        findings.extend(_check_handles(ctx, scope))
        findings.extend(_check_writers(ctx, scope))
    return findings


def _check_handles(ctx: FileContext, scope: Scope) -> Iterator[Finding]:
    for stmt, call, name, attribute in _handle_bindings(scope):
        opener = last_component(call.func)
        if name is None and attribute is None:
            yield Finding(
                ctx.path,
                stmt.lineno,
                "R001",
                f"{opener}() result is discarded; the handle leaks "
                f"immediately — use 'with {opener}(...)' or bind and "
                f"close it",
            )
        elif name is not None:
            if _ownership_transferred(scope, name):
                continue
            if _closed_in_finally(scope, name):
                continue
            yield Finding(
                ctx.path,
                stmt.lineno,
                "R001",
                f"handle {name!r} from {opener}() escapes without a "
                f"context manager or try/finally close — the kway_merge "
                f"leak class; close it in a finally or use 'with'",
            )
        else:
            assert attribute is not None
            if _attribute_closed_in_class(scope, attribute):
                continue
            yield Finding(
                ctx.path,
                stmt.lineno,
                "R001",
                f"handle stored on {dotted(attribute) or 'attribute'} "
                f"but no method of the class ever closes "
                f".{attribute.attr} — give the class a close() that "
                f"owns the handle's lifetime",
            )


def _check_writers(ctx: FileContext, scope: Scope) -> Iterator[Finding]:
    flushed = {
        dotted(node.func)
        for node in scope.nodes()
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "flush"
    }
    for node in scope.nodes():
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target, value = node.targets[0], node.value
        if not (
            isinstance(value, ast.Call)
            and _is_blockwriter(value)
            and isinstance(target, ast.Name)
        ):
            continue
        if f"{target.id}.flush" in flushed:
            continue
        yield Finding(
            ctx.path,
            node.lineno,
            "R001",
            f"BlockWriter {target.id!r} is never flushed in this "
            f"function; its buffered tail block is silently dropped "
            f"(the write_all aliasing incident) — call "
            f"{target.id}.flush() before the handle closes",
        )


def _in_seam_scope(logical_path: str) -> bool:
    path = logical_path.replace("\\", "/")
    if path.endswith("block_io.py"):
        return False  # the seam module itself must call builtin open()
    return any(f"repro/{package}/" in path for package in _SEAM_PACKAGES)


@rule("R002")
def check_fault_seam(ctx: FileContext) -> List[Finding]:
    """Flag builtin ``open()`` calls that bypass ``block_io.open_text``."""
    if not _in_seam_scope(ctx.logical_path):
        return []
    findings = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            findings.append(
                Finding(
                    ctx.path,
                    node.lineno,
                    "R002",
                    "direct builtin open() in a sort-path package "
                    "bypasses the block_io.open_text seam, so fault "
                    "injection and CRC checking never see this file — "
                    "route through open_text, or waive with the reason "
                    "this I/O must stay outside the seam",
                )
            )
        elif (
            dotted(node.func) in _CODEC_FILE_OPENS
            or last_component(node.func) in _CODEC_FILE_CLASSES
        ):
            findings.append(
                Finding(
                    ctx.path,
                    node.lineno,
                    "R002",
                    "compression file API in a sort-path package "
                    "streams the whole file through the codec outside "
                    "the open_text/open_bytes seam — spill compression "
                    "must be block-at-a-time inside the RBLC framing "
                    "(compress the body bytes, not the file), so fault "
                    "injection and per-block CRCs keep working",
                )
            )
    return findings
