"""Rule registry and the per-file context handed to every rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.lint.findings import Finding

__all__ = ["RULES", "FileContext", "rule"]


@dataclass
class FileContext:
    """Everything a rule may look at for one source file.

    ``path`` is the real on-disk path (used in reported findings and
    for R005's import); ``logical_path`` is the path rules scope on —
    identical to ``path`` except for corpus fixtures, which declare
    the path they pretend to live at (see ``tests/lint_corpus/``).
    """

    path: str
    logical_path: str
    tree: ast.Module
    lines: List[str]


RuleCheck = Callable[[FileContext], List[Finding]]

#: Every registered rule as ``(rule_id, check)``; populated at import
#: time by the ``rules_*`` modules through the :func:`rule` decorator.
RULES: List[Tuple[str, RuleCheck]] = []


def rule(rule_id: str) -> Callable[[RuleCheck], RuleCheck]:
    """Register ``check`` under ``rule_id`` (decorator)."""

    def register(check: RuleCheck) -> RuleCheck:
        RULES.append((rule_id, check))
        return check

    return register
