"""R005 — exception classes must survive a pickle round-trip.

The PR-4 incident: a worker raising :class:`CorruptBlockError` (whose
``__init__`` signature did not match ``args``) killed the
multiprocessing pool's result-handler thread *on unpickle* and the
parent's ``pool.map`` waited forever.  Nothing crashed, nothing
errored — the sort just hung.  Any exception class that can cross a
``spawn`` boundary must therefore round-trip pickle, preserving type
and message.

Unlike the other rules this one is semi-dynamic: the AST locates
exception class definitions (their line numbers anchor the findings),
then the module is imported and each class is *exercised* — a sample
instance is built from its signature (placeholder values per
annotation), pickled, and unpickled.  Three failure modes are
reported: the class cannot be instantiated from its signature, the
round-trip raises, or the round-trip silently loses the type or
message.

Scoped to ``src/repro`` modules (importing arbitrary test files from
a linter would execute their collection-time side effects); corpus
fixtures are imported from their file path.
"""

from __future__ import annotations

import ast
import importlib
import importlib.util
import inspect
import pickle
import sys
from typing import Any, Dict, List, Optional

from repro.lint.astutil import last_component
from repro.lint.findings import Finding
from repro.lint.registry import FileContext, rule

__all__ = ["exception_classes_of", "sample_instance"]

#: Base-name suffixes/names that mark a class as exception-like.
_EXCEPTION_HINTS = ("Error", "Exception", "Warning", "Fault", "Injected")
_EXCEPTION_BASES = ("BaseException", "KeyboardInterrupt", "SystemExit")


def _in_scope(logical_path: str) -> bool:
    path = logical_path.replace("\\", "/")
    return "repro/" in path and "tests/" not in path


def _looks_like_exception_base(base: ast.expr) -> bool:
    name = last_component(base) or ""
    return name in _EXCEPTION_BASES or any(
        name.endswith(hint) for hint in _EXCEPTION_HINTS
    )


def _exception_classdefs(tree: ast.Module) -> List[ast.ClassDef]:
    return [
        node
        for node in tree.body
        if isinstance(node, ast.ClassDef)
        and any(_looks_like_exception_base(base) for base in node.bases)
    ]


def _module_name_for(path: str) -> Optional[str]:
    """``repro.engine.errors`` for ``.../src/repro/engine/errors.py``."""
    posix = path.replace("\\", "/")
    marker = "src/"
    index = posix.rfind(marker)
    if index < 0:
        return None
    dotted = posix[index + len(marker) :]
    if not dotted.endswith(".py"):
        return None
    return dotted[: -len(".py")].replace("/", ".")


def _import_target(ctx: FileContext) -> Any:
    name = _module_name_for(ctx.path)
    if name is not None:
        return importlib.import_module(name)
    # Corpus fixtures (and any out-of-tree file): import by location,
    # registered in sys.modules so pickle can resolve the classes.
    synthetic = "repro_lint_target_" + (
        ctx.path.replace("\\", "/").replace("/", "_").replace(".", "_")
    )
    spec = importlib.util.spec_from_file_location(synthetic, ctx.path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {ctx.path!r}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[synthetic] = module
    spec.loader.exec_module(module)
    return module


def sample_instance(cls: type) -> BaseException:
    """Instantiate ``cls`` with placeholder values from its signature.

    Shared with ``tests/test_exception_pickling.py`` (the spawn-pool
    regression guard), so both checks exercise classes the same way.
    """
    signature = inspect.signature(cls.__init__)
    args: List[Any] = []
    for name, parameter in signature.parameters.items():
        if name == "self":
            continue
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        if parameter.default is not inspect.Parameter.empty:
            continue
        annotation = str(parameter.annotation)
        if "int" in annotation:
            args.append(7)
        elif "float" in annotation:
            args.append(7.0)
        else:
            args.append(f"sample-{name}")
    instance = cls(*args)
    if not isinstance(instance, BaseException):
        raise TypeError(f"{cls.__name__} did not build an exception")
    return instance


def exception_classes_of(module: Any) -> Dict[str, type]:
    """Every exception class *defined in* ``module``, by name."""
    found: Dict[str, type] = {}
    for name, value in vars(module).items():
        if (
            isinstance(value, type)
            and issubclass(value, BaseException)
            and value.__module__ == module.__name__
        ):
            found[name] = value
    return found


def _roundtrip_finding(ctx: FileContext, node: ast.ClassDef, cls: type) -> Optional[Finding]:
    try:
        instance = sample_instance(cls)
    except Exception as exc:
        return Finding(
            ctx.path,
            node.lineno,
            "R005",
            f"exception class {cls.__name__} could not be exercised "
            f"from its signature ({exc!r}) — give its parameters "
            f"defaults or simplify the constructor so picklability "
            f"can be verified",
        )
    try:
        clone = pickle.loads(pickle.dumps(instance))
    except Exception as exc:
        return Finding(
            ctx.path,
            node.lineno,
            "R005",
            f"exception class {cls.__name__} does not survive a "
            f"pickle round-trip ({type(exc).__name__}: {exc}) — a "
            f"spawn worker raising it kills the pool's result handler "
            f"and hangs the parent forever; add a __reduce__ that "
            f"replays the constructor",
        )
    if type(clone) is not type(instance) or str(clone) != str(instance):
        return Finding(
            ctx.path,
            node.lineno,
            "R005",
            f"exception class {cls.__name__} pickles but comes back "
            f"as {type(clone).__name__}({str(clone)!r}) instead of "
            f"{type(instance).__name__}({str(instance)!r}) — the "
            f"worker's failure detail would be silently lost; add a "
            f"faithful __reduce__",
        )
    return None


@rule("R005")
def check_spawn_picklability(ctx: FileContext) -> List[Finding]:
    if not _in_scope(ctx.logical_path):
        return []
    classdefs = _exception_classdefs(ctx.tree)
    if not classdefs:
        return []
    try:
        module = _import_target(ctx)
    except Exception as exc:
        return [
            Finding(
                ctx.path,
                classdefs[0].lineno,
                "R005",
                f"module defines exception classes but could not be "
                f"imported to verify picklability ({exc!r})",
            )
        ]
    defined = exception_classes_of(module)
    findings = []
    for node in classdefs:
        cls = defined.get(node.name)
        if cls is None:
            continue
        finding = _roundtrip_finding(ctx, node, cls)
        if finding is not None:
            findings.append(finding)
    return findings
