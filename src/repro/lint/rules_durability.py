"""R003 — the §11 durability order in ``engine.resilience`` and the store.

DESIGN.md §11's crash-consistency invariant is a strict order per
artifact: **write → fsync → journal append → delete inputs**.  The
journal must never claim a file that is not durable yet (a crash right
after the append would resume from a manifest describing bytes the
page cache lost), and a merge's inputs must never disappear before the
journal entry that supersedes them exists (a crash in between loses
both the inputs and the proof the output covers them).

The same order governs ``repro/store/``: a flush or compaction fsyncs
its SSTable before the MANIFEST append that makes it live, and deletes
superseded WALs/tables only after that append.

Statically, within each function of a ``resilience`` module or a
store module:

* a journal/manifest ``append`` whose entry literal carries a
  ``"file"`` key (i.e. references an on-disk artifact) must be
  preceded — in source order — by a durability event: an ``os.fsync``
  call, any call passing a literal ``fsync=True``
  (``write_block_file``, the store's ``write_table``), or a
  ``write_marker`` call (which fsyncs internally);
* once such an append exists in a function, any ``os.remove`` /
  ``unlink`` in that function must come *after* an append — deleting
  first would reorder the invariant;
* every ``os.replace`` — the atomic-publish commit point used by both
  the ``.ok`` shard markers and the final-output publish
  (:func:`~repro.engine.resilience.atomic_output`) — must be preceded,
  in source order, by a durability event in the same function.
  Renaming an un-fsynced temp file into place publishes a name whose
  bytes the page cache may still lose, which is exactly the truncated-
  output bug the publish path exists to prevent.

Appends without a ``"file"`` key (``meta``, ``runs_done``) reference
no artifact and are exempt.  Source order is an approximation of
control flow — precise enough for the straight-line journal code this
rule guards, and the corpus locks both directions.
"""

from __future__ import annotations

import ast
import posixpath
from typing import List

from repro.lint.astutil import (
    Scope,
    call_args_contain_dict_key,
    dotted,
    iter_scopes,
    last_component,
)
from repro.lint.findings import Finding
from repro.lint.registry import FileContext, rule

_DELETERS = ("remove", "unlink")


def _in_scope(logical_path: str) -> bool:
    path = logical_path.replace("\\", "/")
    if "tests/" in path:
        return False
    return (
        posixpath.basename(path) == "resilience.py"
        or "repro/store/" in path
    )


def _is_fsync_event(call: ast.Call) -> bool:
    name = last_component(call.func)
    if name in ("fsync", "write_marker"):
        return True
    # Any helper taking a literal ``fsync=True`` keyword —
    # ``write_block_file``, the store's ``write_table`` — declares
    # itself a durability event; a variable or False never counts.
    return any(
        keyword.arg == "fsync"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is True
        for keyword in call.keywords
    )


def _is_journal_append(call: ast.Call) -> bool:
    if last_component(call.func) != "append":
        return False
    if not isinstance(call.func, ast.Attribute):
        return False
    receiver = dotted(call.func.value) or ""
    receiver = receiver.lower()
    # The store MANIFEST is a journal in §11's sense: its append is
    # the commit point that must trail the artifact's fsync.
    return "journal" in receiver or "manifest" in receiver


@rule("R003")
def check_durability_order(ctx: FileContext) -> List[Finding]:
    if not _in_scope(ctx.logical_path):
        return []
    findings: List[Finding] = []
    for scope in iter_scopes(ctx.tree):
        if isinstance(scope.node, ast.ClassDef):
            continue
        fsyncs: List[int] = []
        file_appends: List[int] = []
        deletes: List[int] = []
        replaces: List[int] = []
        for node in scope.nodes():
            if not isinstance(node, ast.Call):
                continue
            if _is_fsync_event(node):
                fsyncs.append(node.lineno)
            elif _is_journal_append(node) and call_args_contain_dict_key(
                node, "file"
            ):
                file_appends.append(node.lineno)
            elif last_component(node.func) in _DELETERS:
                deletes.append(node.lineno)
            elif dotted(node.func) == "os.replace":
                replaces.append(node.lineno)
        for line in replaces:
            if not any(fsync_line < line for fsync_line in fsyncs):
                findings.append(
                    Finding(
                        ctx.path,
                        line,
                        "R003",
                        "os.replace publishes a file with no preceding "
                        "fsync in this function — the rename makes a "
                        "name visible whose bytes the page cache may "
                        "still lose (§11 write→fsync→rename publish "
                        "order)",
                    )
                )
        for line in file_appends:
            if not any(fsync_line < line for fsync_line in fsyncs):
                findings.append(
                    Finding(
                        ctx.path,
                        line,
                        "R003",
                        "journal append records a file with no preceding "
                        "fsync in this function — the manifest would "
                        "claim bytes the OS may not have persisted "
                        "(§11 write→fsync→journal order)",
                    )
                )
        if file_appends:
            first_append = min(file_appends)
            for line in deletes:
                if line < first_append:
                    findings.append(
                        Finding(
                            ctx.path,
                            line,
                            "R003",
                            "input deleted before the journal append "
                            "that supersedes it — a crash in between "
                            "loses both the data and its journal entry "
                            "(§11 journal→delete order)",
                        )
                    )
    return findings
