"""``python -m repro.lint`` — run the project-invariant linter."""

import sys

from repro.lint.engine import main

if __name__ == "__main__":
    sys.exit(main())
