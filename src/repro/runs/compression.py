"""Run-generation with compressed records (Yiannis & Zobel; Section 3.7.5).

Compressing record payloads during run generation lets more records fit
in memory, which lengthens runs and shrinks the merge; the sort key
stays uncompressed so ordering never touches the codec.

Two pieces:

* :class:`SubstringCodec` — a dictionary coder in the spirit of the
  paper's ternary-trie technique: it samples payloads, collects the
  most valuable common substrings, and replaces them with short
  byte-pair codes (longest-match greedy encoding, fully reversible).
* :class:`CompressedReplacementSelection` — replacement selection with
  a *byte* budget and variable-length records (Larson's variant from
  Section 3.7.1): after each output, as many new records are inserted
  as fit; when the next record does not fit, more records are output
  without reading.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.heaps.run_heap import TaggedRecord, TopRunHeap
from repro.runs.base import RunGenerator, log_cost

#: Escape byte introducing a two-byte code (must not appear in input).
_ESCAPE = "\x00"

#: Codeword alphabet size (second byte of a code).
_MAX_CODES = 255


class SubstringCodec:
    """Dictionary coder over frequent payload substrings.

    Parameters
    ----------
    sample:
        Payload strings to learn the codebook from.
    max_codes:
        Codebook size (each code costs 2 bytes in the output).
    min_length / max_length:
        Substring lengths considered for the codebook.
    """

    def __init__(
        self,
        sample: Iterable[str],
        max_codes: int = 64,
        min_length: int = 3,
        max_length: int = 12,
    ) -> None:
        if not 1 <= max_codes <= _MAX_CODES:
            raise ValueError(f"max_codes must be in [1, {_MAX_CODES}]")
        if min_length < 2:
            raise ValueError(f"min_length must be >= 2, got {min_length}")
        counts: Counter = Counter()
        for payload in sample:
            if _ESCAPE in payload:
                raise ValueError("payloads must not contain the escape byte")
            for length in range(min_length, max_length + 1):
                for start in range(0, len(payload) - length + 1):
                    counts[payload[start : start + length]] += 1
        # Value of a substring = occurrences x bytes saved per occurrence.
        scored = sorted(
            counts.items(),
            key=lambda item: (item[1] * (len(item[0]) - 2), len(item[0])),
            reverse=True,
        )
        chosen: List[str] = []
        for substring, count in scored:
            if count < 2 or len(substring) <= 2:
                continue
            # Skip substrings contained in an already-chosen longer one
            # with the same effective coverage (cheap redundancy check).
            if any(substring in longer for longer in chosen):
                continue
            chosen.append(substring)
            if len(chosen) >= max_codes:
                break
        # Longest-first so greedy encoding prefers bigger savings.
        chosen.sort(key=len, reverse=True)
        self._encode_map: Dict[str, str] = {
            substring: _ESCAPE + chr(1 + index)
            for index, substring in enumerate(chosen)
        }
        self._decode_map: Dict[str, str] = {
            code[1]: substring for substring, code in self._encode_map.items()
        }

    @property
    def codebook(self) -> List[str]:
        """The learned substrings, longest first."""
        return list(self._encode_map)

    def encode(self, payload: str) -> str:
        """Replace codebook substrings with two-byte codes."""
        if _ESCAPE in payload:
            raise ValueError("payloads must not contain the escape byte")
        out = payload
        for substring, code in self._encode_map.items():
            if substring in out:
                out = out.replace(substring, code)
        return out

    def decode(self, encoded: str) -> str:
        """Invert :meth:`encode` exactly."""
        pieces: List[str] = []
        i = 0
        while i < len(encoded):
            ch = encoded[i]
            if ch == _ESCAPE:
                pieces.append(self._decode_map[encoded[i + 1]])
                i += 2
            else:
                pieces.append(ch)
                i += 1
        return "".join(pieces)

    def ratio(self, payloads: Iterable[str]) -> float:
        """Compressed bytes / original bytes over ``payloads``."""
        original = 0
        compressed = 0
        for payload in payloads:
            original += len(payload)
            compressed += len(self.encode(payload))
        if original == 0:
            return 1.0
        return compressed / original


class CompressedReplacementSelection(RunGenerator):
    """Byte-budget RS over (key, payload) records with compression.

    Records are ``(key, payload)`` tuples; the key orders the run, the
    payload travels compressed.  ``memory_capacity`` is interpreted as a
    *byte* budget: each in-memory record costs ``key_bytes`` plus its
    encoded payload length.

    Set ``codec=None`` to disable compression (the baseline for the
    paper's comparison — same machinery, uncompressed payloads).
    """

    name = "CRS"

    #: Bytes charged for a record's key and bookkeeping.
    key_bytes = 8

    def __init__(
        self, memory_capacity: int, codec: Optional[SubstringCodec] = None
    ) -> None:
        super().__init__(memory_capacity)
        self.codec = codec

    def _cost(self, stored_payload: str) -> int:
        return self.key_bytes + len(stored_payload)

    def _store(self, payload: str) -> str:
        if self.codec is None:
            return payload
        return self.codec.encode(payload)

    def _load(self, stored: str) -> str:
        if self.codec is None:
            return stored
        return self.codec.decode(stored)

    def generate_runs(
        self, records: Iterable[Tuple[Any, str]]
    ) -> Iterator[List[Tuple[Any, str]]]:
        self.stats.reset()
        stats = self.stats
        stream = iter(records)

        heap: TopRunHeap = TopRunHeap()
        used_bytes = 0
        pending: Optional[TaggedRecord] = None  # read but not yet fitting

        def read_tagged(current_run: int, last_key: Optional[Any]) -> Optional[TaggedRecord]:
            try:
                key, payload = next(stream)
            except StopIteration:
                return None
            stats.records_in += 1
            stored = self._store(payload)
            run = (
                current_run + 1
                if last_key is not None and key < last_key
                else current_run
            )
            return TaggedRecord(run, key, stored)

        # Fill phase: insert records while they fit in the byte budget.
        while True:
            record = read_tagged(0, None)
            if record is None:
                break
            cost = self._cost(record.payload)
            if used_bytes + cost > self.memory_capacity and len(heap) > 0:
                pending = record
                break
            heap.push(record)
            used_bytes += cost
            stats.cpu_ops += log_cost(len(heap))

        current_run = 0
        out: List[Tuple[Any, str]] = []
        while heap:
            top = heap.peek()
            if top.run != current_run:
                yield out
                stats.note_run(len(out))
                out = []
                current_run = top.run
            record = heap.pop()
            stats.cpu_ops += log_cost(len(heap) + 1)
            used_bytes -= self._cost(record.payload)
            out.append((record.key, self._load(record.payload)))
            # Variable-length refill: insert as many records as now fit
            # (possibly none, possibly several — Larson's adaptation).
            while True:
                if pending is None:
                    pending = read_tagged(current_run, record.key)
                if pending is None:
                    break
                # Re-tag a stale pending record against the newest output.
                if pending.run == current_run and pending.key < record.key:
                    pending = TaggedRecord(
                        current_run + 1, pending.key, pending.payload
                    )
                cost = self._cost(pending.payload)
                if used_bytes + cost > self.memory_capacity and len(heap) > 0:
                    break
                heap.push(pending)
                used_bytes += cost
                stats.cpu_ops += log_cost(len(heap))
                pending = None
        if pending is not None:
            # Degenerate budget: flush the leftover record as its own run.
            out_key = (pending.key, self._load(pending.payload))
            if out and pending.key >= out[-1][0]:
                out.append(out_key)
            else:
                yield out
                stats.note_run(len(out))
                out = [out_key]
        if out:
            yield out
            stats.note_run(len(out))
