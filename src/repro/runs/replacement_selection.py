"""Classic replacement selection (Goetz 1963; Sections 3.3-3.4, Algorithm 1).

The algorithm keeps a min-heap of ``(run, key)`` pairs.  Each step pops
the top record to the current run and reads one record from the input:
if the new record is smaller than the record just written it cannot join
the current run and is tagged with the next run number.  A run ends when
the heap's top record belongs to the next run — at that point *every*
record in memory does (Section 3.3 proves this from the heap property).

On uniformly random input the expected run length is twice the memory
(Knuth's snowplow argument, Section 3.5); on sorted input a single run;
on reverse-sorted input runs of exactly the memory size (Theorems 1, 3).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List

from repro.heaps.run_heap import TaggedRecord, TopRunHeap
from repro.runs.base import RunGenerator, log_cost


class ReplacementSelection(RunGenerator):
    """Replacement selection over a single min-heap.

    Parameters
    ----------
    memory_capacity:
        Heap size in records (the paper's ``heapSize``).
    """

    name = "RS"

    def generate_runs(self, records: Iterable[Any]) -> Iterator[List[Any]]:
        self.stats.reset()
        stats = self.stats
        stream = iter(records)

        heap: TopRunHeap = TopRunHeap(capacity=self.memory_capacity)
        for value in stream:
            stats.records_in += 1
            stats.cpu_ops += log_cost(len(heap) + 1)
            heap.push(TaggedRecord(0, value))
            if heap.is_full:
                break

        current_run = 0
        out: List[Any] = []
        while heap:
            top = heap.peek()
            if top.run != current_run:
                # Top belongs to the next run => all of memory does.
                yield out
                stats.note_run(len(out))
                out = []
                current_run = top.run
            next_output = top.key
            out.append(next_output)
            stats.cpu_ops += log_cost(len(heap))
            try:
                value = next(stream)
            except StopIteration:
                heap.pop()
                continue
            stats.records_in += 1
            run = current_run + 1 if value < next_output else current_run
            # pop + insert fused into a single sift-down (heap.replace).
            heap.replace(TaggedRecord(run, value))
        if out:
            yield out
            stats.note_run(len(out))
