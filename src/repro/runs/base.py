"""Common interface for run-generation algorithms (Section 2.1.1).

A run generator consumes a stream of records and produces *runs*: sorted
lists destined for external storage.  All generators in this package
(Load-Sort-Store, replacement selection, batched RS, 2WRS) implement the
same :class:`RunGenerator` interface so the external-sort pipeline and
the experiment harnesses can swap them freely.

Generators also maintain a :class:`RunGeneratorStats` with an *analytic*
CPU cost: every heap traversal is charged ``ceil(log2(n))`` comparison
steps.  The simulated-time experiments convert these counts to seconds
with a fixed per-operation cost, mirroring how the paper's wall-clock
numbers combine CPU and I/O (DESIGN.md section 3 explains why we do not
time Python itself).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List


def log_cost(n: int) -> int:
    """Analytic cost of one traversal of a heap holding ``n`` records."""
    if n <= 1:
        return 1
    return int(math.ceil(math.log2(n)))


@dataclass(slots=True)
class RunGeneratorStats:
    """Counters accumulated while generating runs."""

    records_in: int = 0
    records_out: int = 0
    runs_out: int = 0
    cpu_ops: int = 0
    run_lengths: List[int] = field(default_factory=list)

    def note_run(self, length: int) -> None:
        """Record the completion of one run."""
        self.runs_out += 1
        self.records_out += length
        self.run_lengths.append(length)

    @property
    def average_run_length(self) -> float:
        """Mean run length in records (0.0 when no runs were produced)."""
        if not self.run_lengths:
            return 0.0
        return sum(self.run_lengths) / len(self.run_lengths)

    def reset(self) -> None:
        self.records_in = 0
        self.records_out = 0
        self.runs_out = 0
        self.cpu_ops = 0
        self.run_lengths = []


class RunGenerator(ABC):
    """Base class for run-generation algorithms.

    Parameters
    ----------
    memory_capacity:
        Number of records of working memory available to the algorithm
        (the paper's ``heapSize`` plus any buffers; concrete classes
        document how they partition it).
    """

    #: Short identifier used in experiment output rows.
    name: str = "base"

    def __init__(self, memory_capacity: int) -> None:
        if memory_capacity < 1:
            raise ValueError(
                f"memory_capacity must be >= 1 record, got {memory_capacity}"
            )
        self.memory_capacity = memory_capacity
        self.stats = RunGeneratorStats()

    @abstractmethod
    def generate_runs(self, records: Iterable[Any]) -> Iterator[List[Any]]:
        """Consume ``records`` and lazily yield sorted runs.

        Every yielded list is ascending, and the multiset union of all
        runs equals the input.  Implementations must reset and then
        update :attr:`stats`.
        """

    # -- convenience -----------------------------------------------------------

    def run_lengths(self, records: Iterable[Any]) -> List[int]:
        """Generate all runs and return their lengths."""
        return [len(run) for run in self.generate_runs(records)]

    def count_runs(self, records: Iterable[Any]) -> int:
        """Generate all runs and return how many were produced."""
        return sum(1 for _ in self.generate_runs(records))
