"""Load-Sort-Store run generation (Section 2.1.1).

The simplest run generator: fill the whole working memory with input
records, sort them with an internal sort, and emit the sorted chunk as a
run.  Run length is always exactly the memory size (except possibly the
final run), which is the baseline replacement selection improves on.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Iterable, Iterator, List

from repro.heaps.heapsort import heapsort
from repro.runs.base import RunGenerator, log_cost


class LoadSortStore(RunGenerator):
    """Fill memory, sort, emit; repeat.

    Parameters
    ----------
    memory_capacity:
        Chunk size in records.
    use_heapsort:
        Sort chunks with the paper's Section 3.2 heapsort when True
        (the didactic variant, for studying the algorithm), or with the
        optimised library sort when False (the default — the paper
        itself reaches for an optimised library sort where speed
        matters, e.g. the victim buffer in Section 6.3).  Section
        2.1.1's LSS contract — every run is exactly one memory-load,
        internally sorted — is identical either way, and the two
        variants produce the same runs (``test_timsort_variant``); the
        library sort keeps each comparison a single native operation,
        which is what lets binary spill records sort at memcmp speed.
    """

    name = "LSS"

    def __init__(self, memory_capacity: int, use_heapsort: bool = False) -> None:
        super().__init__(memory_capacity)
        self.use_heapsort = use_heapsort

    def generate_runs(self, records: Iterable[Any]) -> Iterator[List[Any]]:
        self.stats.reset()
        stream = iter(records)
        while True:
            chunk: List[Any] = list(islice(stream, self.memory_capacity))
            if not chunk:
                return
            self.stats.records_in += len(chunk)
            self.stats.cpu_ops += len(chunk) * log_cost(len(chunk))
            run = heapsort(chunk) if self.use_heapsort else sorted(chunk)
            self.stats.note_run(len(run))
            yield run
