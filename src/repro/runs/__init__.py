"""Run-generation algorithms for the external mergesort first phase."""

from repro.runs.base import RunGenerator, RunGeneratorStats, log_cost
from repro.runs.batched import BatchedReplacementSelection
from repro.runs.compression import (
    CompressedReplacementSelection,
    SubstringCodec,
)
from repro.runs.load_sort_store import LoadSortStore
from repro.runs.replacement_selection import ReplacementSelection

__all__ = [
    "BatchedReplacementSelection",
    "CompressedReplacementSelection",
    "SubstringCodec",
    "LoadSortStore",
    "ReplacementSelection",
    "RunGenerator",
    "RunGeneratorStats",
    "log_cost",
]
