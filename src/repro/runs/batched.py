"""Batched replacement selection (Larson 2003; Section 3.7.1).

Larson's cache-conscious variant keeps incoming records in small sorted
buffers called *miniruns* instead of pushing every record through the
full-size heap: the heap holds only the head record of each minirun, so
its footprint (and, on real hardware, its cache miss rate) shrinks by
the minirun length.  When a head record is popped, the next record of
the same minirun replaces it.

In this simulation the cache effect shows up as a smaller analytic CPU
cost (the heap holds ``memory / minirun`` entries, so each traversal is
``log2`` of a much smaller number), at the price of slightly shorter
runs: a minirun whose head is tagged *next run* blocks its remaining
records even if some of them could still join the current run.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Iterable, Iterator, List

from repro.heaps.binary_heap import BinaryHeap
from repro.runs.base import RunGenerator, log_cost

#: Larson's experiments output records in batches of 1000; miniruns are
#: of comparable size.  We default to a modest size suited to the scaled
#: experiments.
DEFAULT_MINIRUN_LENGTH = 64


class _Minirun:
    """A sorted buffer consumed front to back."""

    __slots__ = ("records", "position")

    def __init__(self, records: List[Any]) -> None:
        self.records = records
        self.position = 0

    def peek(self) -> Any:
        return self.records[self.position]

    def advance(self) -> None:
        self.position += 1

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.records)


def _entry_before(a: tuple, b: tuple) -> bool:
    """Order heap entries by (run, key); the minirun slot breaks ties."""
    return a[:2] < b[:2]


class BatchedReplacementSelection(RunGenerator):
    """Replacement selection over minirun head records.

    Parameters
    ----------
    memory_capacity:
        Total records in memory (miniruns plus heap entries).
    minirun_length:
        Records per minirun; the heap holds ``memory / minirun_length``
        head entries.
    """

    name = "BRS"

    def __init__(
        self, memory_capacity: int, minirun_length: int = DEFAULT_MINIRUN_LENGTH
    ) -> None:
        super().__init__(memory_capacity)
        if minirun_length < 1:
            raise ValueError(f"minirun_length must be >= 1, got {minirun_length}")
        self.minirun_length = min(minirun_length, memory_capacity)
        self.num_miniruns = max(1, memory_capacity // self.minirun_length)

    def _load_minirun(self, stream: Iterator[Any]) -> _Minirun | None:
        chunk = list(islice(stream, self.minirun_length))
        if not chunk:
            return None
        self.stats.records_in += len(chunk)
        self.stats.cpu_ops += len(chunk) * log_cost(len(chunk))
        chunk.sort()
        return _Minirun(chunk)

    def generate_runs(self, records: Iterable[Any]) -> Iterator[List[Any]]:
        self.stats.reset()
        stats = self.stats
        stream = iter(records)

        heap: BinaryHeap[tuple] = BinaryHeap(_entry_before)
        miniruns: List[_Minirun] = []
        for slot in range(self.num_miniruns):
            minirun = self._load_minirun(stream)
            if minirun is None:
                break
            miniruns.append(minirun)
            heap.push((0, minirun.peek(), slot))
            stats.cpu_ops += log_cost(len(heap))

        current_run = 0
        last_output: Any = None
        out: List[Any] = []
        while heap:
            run, key, slot = heap.peek()
            if run != current_run:
                yield out
                stats.note_run(len(out))
                out = []
                current_run = run
                last_output = None
            out.append(key)
            last_output = key
            minirun = miniruns[slot]
            minirun.advance()
            stats.cpu_ops += log_cost(len(heap))
            if minirun.exhausted:
                refill = self._load_minirun(stream)
                if refill is None:
                    heap.pop()
                    continue
                miniruns[slot] = minirun = refill
            head = minirun.peek()
            tag = current_run + 1 if last_output is not None and head < last_output else current_run
            heap.replace((tag, head, slot))
        if out:
            yield out
            stats.note_run(len(out))
