"""repro: reproduction of "Two-way Replacement Selection" (VLDB 2010).

The package implements external-sort run generation with two-way
replacement selection (2WRS), the replacement-selection baselines it
improves on, the merge phase, a simulated storage stack, the paper's
snowplow differential model, and the ANOVA machinery of its evaluation.

Quickstart::

    from repro import TwoWayReplacementSelection, ReplacementSelection
    from repro.workloads import reverse_sorted_input

    data = list(reverse_sorted_input(10_000))
    rs = ReplacementSelection(memory_capacity=1_000)
    twrs = TwoWayReplacementSelection(memory_capacity=1_000)
    print(len(list(rs.generate_runs(data))))    # ~10 runs
    print(len(list(twrs.generate_runs(data))))  # 1 run
"""

from repro.core.config import RECOMMENDED, TABLE_5_13_CONFIGS, TwoWayConfig
from repro.core.two_way import TwoWayReplacementSelection
from repro.runs.base import RunGenerator, RunGeneratorStats
from repro.runs.batched import BatchedReplacementSelection
from repro.runs.load_sort_store import LoadSortStore
from repro.runs.replacement_selection import ReplacementSelection

__version__ = "1.0.0"

__all__ = [
    "BatchedReplacementSelection",
    "LoadSortStore",
    "RECOMMENDED",
    "ReplacementSelection",
    "RunGenerator",
    "RunGeneratorStats",
    "TABLE_5_13_CONFIGS",
    "TwoWayConfig",
    "TwoWayReplacementSelection",
    "__version__",
]
