"""Multi-pass merge tree with configurable fan-in (Section 6.1.1).

The merge phase is computed as a tree of k-way merges: each pass groups
the surviving runs into batches of ``fan_in`` and merges every batch to
one new run file, until a single run remains.

The fan-in trades off two costs on the simulated disk:

* a *small* fan-in needs more passes, re-reading and re-writing all
  records each time;
* a *large* fan-in splits the fixed merge memory into more, smaller
  per-run input buffers, so each buffer refill amortises one seek over
  fewer sequential page transfers.

The paper measures the optimum at fan-in 10 for its hardware
(Figure 6.1); the same U-shaped curve falls out of this model.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence

from repro.iosim.files import SimulatedFile, SimulatedFileSystem
from repro.merge.kway import MergeCounter, kway_merge

#: Paper default fan-in (the measured optimum of Section 6.1.1).
DEFAULT_FAN_IN = 10


def _stream_of(source: Any, buffer_pages: int) -> Iterator[Any]:
    """Open an ascending record stream from any supported run source."""
    if hasattr(source, "records_buffered"):
        return source.records_buffered(buffer_pages)
    if hasattr(source, "records"):
        return source.records()
    return iter(source)


class MergeTree:
    """Merge run files down to one, ``fan_in`` at a time.

    Parameters
    ----------
    fs:
        Filesystem providing the intermediate and final run files.
    fan_in:
        Runs merged simultaneously per merge node.
    memory_capacity:
        Records of memory available to the merge phase; divided into
        ``fan_in`` input buffers plus one output buffer (all in whole
        pages, minimum one page each).
    """

    def __init__(
        self,
        fs: SimulatedFileSystem,
        fan_in: int = DEFAULT_FAN_IN,
        memory_capacity: int = 10_000,
    ) -> None:
        if fan_in < 2:
            raise ValueError(f"fan_in must be >= 2, got {fan_in}")
        if memory_capacity < 1:
            raise ValueError(
                f"memory_capacity must be >= 1, got {memory_capacity}"
            )
        self.fs = fs
        self.fan_in = fan_in
        self.memory_capacity = memory_capacity
        self.counter = MergeCounter()
        self._next_id = 0

    @property
    def buffer_pages(self) -> int:
        """Pages per input/output buffer at the configured fan-in."""
        page_records = self.fs.disk.geometry.page_records
        per_buffer = self.memory_capacity // (self.fan_in + 1)
        return max(1, per_buffer // page_records)

    def merge(self, sources: Sequence[Any]) -> SimulatedFile:
        """Merge ``sources`` (run files / readers) into one sorted file.

        Input :class:`SimulatedFile` objects are deleted from the
        filesystem after they are consumed, as the real algorithm frees
        temporary run files between passes.
        """
        if not sources:
            empty = self._new_file()
            empty.close()
            return empty
        level: List[Any] = list(sources)
        while True:
            if len(level) == 1 and isinstance(level[0], SimulatedFile):
                return level[0]
            # A single non-file source still needs copying into a file.
            groups = [
                level[start : start + self.fan_in]
                for start in range(0, len(level), self.fan_in)
            ]
            level = [self._merge_group(group) for group in groups]

    def _merge_group(self, group: Sequence[Any]) -> SimulatedFile:
        buffer_pages = self.buffer_pages
        out = self._new_file()
        streams = [_stream_of(source, buffer_pages) for source in group]
        for record in kway_merge(streams, self.counter):
            out.append(record)
        out.close()
        for source in group:
            if isinstance(source, SimulatedFile) and source.name in self.fs:
                self.fs.delete(source.name)
        return out

    def _new_file(self) -> SimulatedFile:
        name = f"merge-{id(self)}-{self._next_id}"
        self._next_id += 1
        return self.fs.create(name, write_buffer_pages=self.buffer_pages)


def merge_files(
    fs: SimulatedFileSystem,
    sources: Sequence[Any],
    fan_in: int = DEFAULT_FAN_IN,
    memory_capacity: int = 10_000,
    counter: Optional[MergeCounter] = None,
) -> SimulatedFile:
    """One-shot helper around :class:`MergeTree`."""
    tree = MergeTree(fs, fan_in=fan_in, memory_capacity=memory_capacity)
    if counter is not None:
        tree.counter = counter
    return tree.merge(sources)
