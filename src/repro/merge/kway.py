"""k-way merge of sorted streams (Section 2.1.2).

At each step the smallest of the k head records is selected (with a
min-heap, so selection costs ``log2 k`` comparisons) and moved to the
output.  When a stream empties the merge continues as a (k-1)-way merge,
exactly as in the paper's worked example (Figures 2.1-2.3).

The merge heap is :mod:`heapq` over ``(record, stream_index)`` entries
— tuple comparison orders by record and breaks ties on the stream
index, the same total order the explicit array heap used to compute
through a Python ``before`` predicate.  Unlike the 2WRS
:class:`~repro.heaps.double_heap.DoubleHeap` (which needs direct index
arithmetic and keeps the paper's array layout), this heap has no
structural role, and the C implementation keeps the per-record cost at
one native comparison: for binary spill records that comparison is a
raw ``bytes`` memcmp, which is the point of the whole binary path.
"""

from __future__ import annotations

from heapq import heapify, heappop, heapreplace
from itertools import groupby
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.runs.base import log_cost


class MergeCounter:
    """Optional cost accumulator threaded through merges."""

    def __init__(self) -> None:
        self.records = 0
        self.cpu_ops = 0


def validate_merge_params(
    fan_in: Optional[int] = None, buffer_records: Optional[int] = None
) -> None:
    """Reject nonsensical merge parameters with clear errors.

    A fan-in below 2 cannot make progress (merging one stream is a
    copy) and a read buffer below one record can never hold a head —
    both used to slip through to confusing downstream behaviour when a
    caller bypassed the backend constructors.
    """
    if fan_in is not None and fan_in < 2:
        raise ValueError(f"fan_in must be >= 2, got {fan_in}")
    if buffer_records is not None and buffer_records < 1:
        raise ValueError(
            f"buffer_records must be >= 1, got {buffer_records}"
        )


def kway_merge(
    streams: Sequence[Iterable[Any]],
    counter: Optional[MergeCounter] = None,
    *,
    fan_in: Optional[int] = None,
    buffer_records: Optional[int] = None,
) -> Iterator[Any]:
    """Lazily merge ``streams`` (each ascending) into one ascending stream.

    Parameters
    ----------
    streams:
        Sorted record sources; anything iterable.
    counter:
        When given, ``records`` and ``cpu_ops`` are accumulated on it
        (``log2 k`` ops per output record, the analytic CPU model).
    fan_in:
        Optional declared merge width: validated (``>= 2``) and
        enforced against ``len(streams)``, so a scheduling bug that
        hands the final merge more runs than its fan-in fails loudly
        instead of silently over-widening the merge.
    buffer_records:
        Optional declared reader buffer size; validated (``>= 1``).
        The merge itself does not buffer — the parameter exists so
        file-backed callers funnel their knobs through one validator.
    """
    validate_merge_params(fan_in, buffer_records)
    if fan_in is not None and len(streams) > fan_in:
        raise ValueError(
            f"{len(streams)} streams exceed the declared fan_in {fan_in}"
        )
    iterators: List[Iterator[Any]] = [iter(s) for s in streams]
    heap: List[tuple] = []
    exhausted: Iterator[Any] = iter(())
    try:
        for index, iterator in enumerate(iterators):
            try:
                head = next(iterator)
            except StopIteration:
                iterators[index] = exhausted
                continue
            heap.append((head, index))
        heapify(heap)

        while heap:
            key, index = heap[0]
            if counter is not None:
                counter.records += 1
                counter.cpu_ops += log_cost(len(heap))
            yield key
            try:
                head = next(iterators[index])
            except StopIteration:
                # Drop the reference so a file-backed reader (and any
                # chunk it buffers) is freed as soon as its run is
                # exhausted, not at the end of the whole merge.
                iterators[index] = exhausted
                heappop(heap)
            else:
                heapreplace(heap, (head, index))
    finally:
        # One raising reader (or an abandoned merge) must not leak the
        # other streams' open file handles until garbage collection:
        # close every closeable reader still referenced.  Harmless for
        # plain iterables and already-finished generators.
        for iterator in iterators:
            close = getattr(iterator, "close", None)
            if close is not None:
                close()


def grouped(
    records: Iterable[Any], key_of: Callable[[Any], Any]
) -> Iterator[Tuple[Any, Iterator[Any]]]:
    """Lazily group an *ascending* record stream by key.

    The duplicate-run-aware half of the aggregating merge: individual
    runs are internally sorted but any key can recur in *every* run,
    and :func:`kway_merge` interleaves them so all duplicates of a key
    become adjacent — this exposes that adjacency as ``(key, group)``
    pairs where ``group`` is a lazy iterator over the consecutive
    records sharing ``key``.  No group is ever materialised, which is
    what lets the :mod:`repro.ops` operators fold arbitrarily large
    (skewed) groups in O(1) memory while the final merge pass streams.
    Like :func:`itertools.groupby` (which this wraps), advancing to
    the next pair invalidates the previous group iterator, and an
    unconsumed group is skipped automatically.
    """
    return iter(groupby(records, key=key_of))


def reduce_to_fan_in(
    runs: Sequence[Any],
    fan_in: int,
    merge_group: Callable[[Sequence[Any]], Any],
) -> Tuple[List[Any], int]:
    """Schedule intermediate merge passes until ``fan_in`` runs remain.

    This is the pass structure of a merge tree over *abstract* runs:
    each pass groups the surviving runs ``fan_in`` at a time and calls
    ``merge_group`` to combine one group into one new run.  A trailing
    singleton group is carried forward untouched — merging one run
    would only copy it.  Both the file-spill backend and the parallel
    partitioned sort drive their real-I/O passes through this function.

    Returns ``(runs, extra_passes)`` where ``runs`` has at most
    ``fan_in`` entries ready for a final (usually streaming) merge and
    ``extra_passes`` counts the intermediate passes performed.
    """
    validate_merge_params(fan_in)
    level = list(runs)
    passes = 0
    while len(level) > fan_in:
        passes += 1
        level = [
            group[0] if len(group) == 1 else merge_group(group)
            for group in (
                level[i : i + fan_in] for i in range(0, len(level), fan_in)
            )
        ]
    return level, passes


def merge_runs(runs: Sequence[Sequence[Any]]) -> List[Any]:
    """Eagerly merge in-memory runs; convenience wrapper for tests."""
    return list(kway_merge(runs))
