"""Merge-phase algorithms (Section 2.1.2 and 6.1.1)."""

from repro.merge.kway import (
    MergeCounter,
    kway_merge,
    merge_runs,
    validate_merge_params,
)
from repro.merge.merge_tree import DEFAULT_FAN_IN, MergeTree, merge_files
from repro.merge.reading import (
    STRATEGIES,
    ReadingReport,
    ReadingSimulator,
)
from repro.merge.polyphase import (
    PolyphaseMerger,
    PolyphaseStep,
    polyphase_merge,
    polyphase_schedule,
)

__all__ = [
    "DEFAULT_FAN_IN",
    "MergeCounter",
    "MergeTree",
    "PolyphaseMerger",
    "PolyphaseStep",
    "ReadingReport",
    "ReadingSimulator",
    "STRATEGIES",
    "kway_merge",
    "merge_files",
    "merge_runs",
    "polyphase_merge",
    "polyphase_schedule",
    "validate_merge_params",
]
