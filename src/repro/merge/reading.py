"""Merge-phase reading strategies (Section 3.7.2).

The naive merge keeps one input buffer per run and stalls whenever a
buffer empties.  Three classic improvements overlap reading with
processing:

* **forecasting** (Knuth): one extra buffer; by comparing the *last*
  key of every in-memory block the merge knows which buffer empties
  first, and prefetches that run's next block while merging;
* **double buffering** (Salzberg): two half-sized buffers per run; one
  is consumed while the other refills — refills hide, but halving the
  buffer doubles the number of (seek-paying) refills;
* **planning** (Zheng & Larson): like forecasting, but with all spare
  memory as extra buffers and a read *schedule* that batches blocks
  that are contiguous on disk, trading buffer space for fewer seeks.

This module contains a discrete-event simulator of the merge's I/O
timeline over the :class:`~repro.iosim.disk.DiskGeometry` cost model:
the CPU consumes records at a constant rate while the disk serves one
block request at a time; a block requested before it is needed hides
(part of) its latency.  The simulator reproduces the papers' findings:
planning < forecasting ~ double buffering < naive in total time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.iosim.disk import DiskGeometry

#: Simulated seconds of CPU per merged record.
DEFAULT_CPU_PER_RECORD = 3e-5

STRATEGIES = ("naive", "forecasting", "double_buffering", "planning")


@dataclass(slots=True)
class ReadingReport:
    """Outcome of one simulated merge."""

    strategy: str
    total_time: float
    io_time: float
    stall_time: float
    block_reads: int
    seeks: int


class _RunCursor:
    """Per-run view: blocks of records plus the read position."""

    def __init__(self, run: Sequence[Any], block_records: int) -> None:
        self.blocks: List[List[Any]] = [
            list(run[i : i + block_records])
            for i in range(0, len(run), block_records)
        ]
        self.next_block = 0  # next block index to *request* from disk

    @property
    def exhausted(self) -> bool:
        return self.next_block >= len(self.blocks)


class ReadingSimulator:
    """Simulate one k-way merge under a reading strategy.

    Parameters
    ----------
    runs:
        The sorted runs to merge.
    memory_records:
        Total records of merge memory, divided among the buffers the
        strategy wants.
    geometry:
        Disk cost model; a block read costs one seek + rotation plus a
        sequential transfer per page, except when it directly follows
        the previous block of the same run on disk.
    cpu_per_record:
        CPU seconds consumed per merged record.
    """

    def __init__(
        self,
        runs: Sequence[Sequence[Any]],
        memory_records: int = 8_192,
        geometry: Optional[DiskGeometry] = None,
        cpu_per_record: float = DEFAULT_CPU_PER_RECORD,
    ) -> None:
        if not runs:
            raise ValueError("need at least one run to merge")
        self.runs = [list(r) for r in runs]
        self.memory_records = memory_records
        self.geometry = geometry if geometry is not None else DiskGeometry()
        self.cpu_per_record = cpu_per_record

    # -- public API ----------------------------------------------------------

    def simulate(self, strategy: str) -> ReadingReport:
        """Run the merge under ``strategy`` and report its timeline."""
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; known: {STRATEGIES}"
            )
        k = len(self.runs)
        if strategy == "naive":
            buffers_per_run, extra = 1, 0
        elif strategy == "forecasting":
            buffers_per_run, extra = 1, 1
        elif strategy == "double_buffering":
            buffers_per_run, extra = 2, 0
        else:  # planning
            # All memory beyond one buffer per run becomes read-ahead.
            buffers_per_run, extra = 1, max(1, k)
        total_buffers = k * buffers_per_run + extra
        block_records = max(1, self.memory_records // total_buffers)
        return self._simulate(strategy, block_records, extra)

    def compare(self) -> Dict[str, ReadingReport]:
        """Simulate all strategies on the same runs."""
        return {s: self.simulate(s) for s in STRATEGIES}

    # -- internals ----------------------------------------------------------------

    def _block_cost(self, block_len: int, sequential: bool) -> float:
        pages = max(1, -(-block_len // self.geometry.page_records))
        transfer = pages * self.geometry.transfer_time
        if sequential:
            return transfer
        return self.geometry.seek_time + self.geometry.rotational_delay + transfer

    def _simulate(
        self, strategy: str, block_records: int, extra_buffers: int
    ) -> ReadingReport:
        cursors = [_RunCursor(run, block_records) for run in self.runs]
        io_time = 0.0
        stall_time = 0.0
        block_reads = 0
        seeks = 0
        disk_free = 0.0  # the disk is busy until this time
        clock = 0.0  # the consumer's clock
        last_read: Optional[Tuple[int, int]] = None  # (run, block) last read

        # ready_at[(run, block)] = completion time of an issued read.
        ready_at: Dict[Tuple[int, int], float] = {}

        def issue(run_index: int, at: float, batch: int = 1) -> None:
            """Issue a read of the next `batch` blocks of one run."""
            nonlocal io_time, block_reads, seeks, disk_free, last_read
            cursor = cursors[run_index]
            for _ in range(batch):
                if cursor.exhausted:
                    return
                block_index = cursor.next_block
                cursor.next_block += 1
                sequential = last_read == (run_index, block_index - 1)
                cost = self._block_cost(
                    len(cursor.blocks[block_index]), sequential
                )
                if not sequential:
                    seeks += 1
                start = max(at, disk_free)
                disk_free = start + cost
                io_time += cost
                block_reads += 1
                ready_at[(run_index, block_index)] = disk_free
                last_read = (run_index, block_index)

        # Prime one block per run (all strategies), plus the second
        # block for double buffering.
        for index in range(len(cursors)):
            issue(index, at=0.0)
        if strategy == "double_buffering":
            for index in range(len(cursors)):
                issue(index, at=0.0)

        # The merge consumes blocks in a deterministic order given by
        # the k-way merge over block head/tail keys; we replay it with
        # a heap over (next key, run) using whole blocks.
        heads: List[Tuple[Any, int, int, int]] = []  # key, run, block, offset
        consumed_block: Dict[int, int] = {i: -1 for i in range(len(cursors))}

        def load_block(run_index: int) -> None:
            """Consumer acquires the next block of a run (may stall)."""
            nonlocal clock, stall_time
            block_index = consumed_block[run_index] + 1
            if block_index >= len(cursors[run_index].blocks):
                return
            if (run_index, block_index) not in ready_at:
                issue(run_index, at=clock)
            ready = ready_at[(run_index, block_index)]
            if ready > clock:
                stall_time += ready - clock
                clock = ready
            consumed_block[run_index] = block_index
            block = cursors[run_index].blocks[block_index]
            heapq.heappush(heads, (block[0], run_index, block_index, 0))

        for index in range(len(cursors)):
            load_block(index)

        while heads:
            key, run_index, block_index, offset = heapq.heappop(heads)
            block = cursors[run_index].blocks[block_index]
            clock += self.cpu_per_record
            offset += 1
            if offset < len(block):
                heapq.heappush(
                    heads, (block[offset], run_index, block_index, offset)
                )
                continue
            # Block exhausted; acquire the next one (the strategy's
            # earlier read-ahead decides whether this stalls).
            if strategy == "planning":
                # Batch-read several upcoming blocks of this run while
                # the head is positioned on it (contiguous, no seeks).
                issue(run_index, at=clock, batch=2)
            load_block(run_index)
            if strategy == "forecasting":
                # With the refill in memory, forecast which buffer
                # empties first — the smallest in-memory tail key — and
                # fill the extra buffer with that run's next block while
                # the merge keeps consuming (Knuth's forecast).
                tails = []
                for _, r, b, _ in heads:
                    tails.append((cursors[r].blocks[b][-1], r))
                if tails:
                    _, forecast_run = min(tails)
                    next_needed = consumed_block[forecast_run] + 1
                    if (
                        next_needed < len(cursors[forecast_run].blocks)
                        and (forecast_run, next_needed) not in ready_at
                    ):
                        issue(forecast_run, at=clock)
            if strategy == "double_buffering":
                # Immediately request the block after the one just
                # acquired, refilling the now-free twin buffer.
                follow = consumed_block[run_index] + 1
                if (
                    follow < len(cursors[run_index].blocks)
                    and (run_index, follow) not in ready_at
                ):
                    issue(run_index, at=clock)

        total = max(clock, disk_free)
        return ReadingReport(
            strategy=strategy,
            total_time=total,
            io_time=io_time,
            stall_time=stall_time,
            block_reads=block_reads,
            seeks=seeks,
        )
