"""Polyphase merge (Gilstad 1960; Section 2.1.2, Table 2.1).

Polyphase merge starts with ``T`` tapes, one empty; each *step* performs
k-way merges (k = T - 1) writing to the empty tape until some input tape
runs out of runs; the emptied tape becomes the next output tape.  The
process repeats until a single run remains.

Two entry points:

* :func:`polyphase_schedule` reproduces the run-count bookkeeping of
  Table 2.1 from initial per-tape run counts.
* :class:`PolyphaseMerger` performs the actual record-level merge over
  in-memory tapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence

from repro.merge.kway import MergeCounter, kway_merge


@dataclass(frozen=True, slots=True)
class PolyphaseStep:
    """Run counts per tape after one polyphase step."""

    step: int
    counts: tuple
    output_tape: int


def polyphase_schedule(initial_counts: Sequence[int]) -> List[PolyphaseStep]:
    """Compute per-step run counts, reproducing Table 2.1.

    ``initial_counts`` must contain exactly one zero (the initial output
    tape).  Returns the list of steps including step 0 (the initial
    state, output tape = the empty one).
    """
    counts = list(initial_counts)
    if len(counts) < 3:
        raise ValueError(f"polyphase needs >= 3 tapes, got {len(counts)}")
    if any(c < 0 for c in counts):
        raise ValueError(f"run counts must be non-negative: {counts}")
    empties = [i for i, c in enumerate(counts) if c == 0]
    if len(empties) != 1:
        raise ValueError(
            f"exactly one tape must start empty, got {len(empties)}: {counts}"
        )
    output = empties[0]
    steps = [PolyphaseStep(step=0, counts=tuple(counts), output_tape=output)]
    step = 0
    while sum(counts) > 1:
        inputs = [i for i in range(len(counts)) if i != output and counts[i] > 0]
        if not inputs:
            break
        merges = min(counts[i] for i in inputs)
        for i in inputs:
            counts[i] -= merges
        counts[output] += merges
        step += 1
        # The tape emptied by this step becomes the next output tape.
        next_output_candidates = [i for i in inputs if counts[i] == 0]
        steps.append(PolyphaseStep(step=step, counts=tuple(counts), output_tape=output))
        if sum(counts) <= 1:
            break
        output = next_output_candidates[0]
    return steps


class PolyphaseMerger:
    """Record-level polyphase merge over in-memory tapes.

    Each tape is a list of runs (ascending lists).  ``merge()`` returns
    the single final run.
    """

    def __init__(self, tapes: Sequence[Sequence[Sequence[Any]]]) -> None:
        self.tapes: List[List[List[Any]]] = [
            [list(run) for run in tape] for tape in tapes
        ]
        if len(self.tapes) < 3:
            raise ValueError(f"polyphase needs >= 3 tapes, got {len(self.tapes)}")
        self.counter = MergeCounter()

    def merge(self) -> List[Any]:
        """Run polyphase to completion and return the final sorted run."""
        tapes = self.tapes
        empties = [i for i, t in enumerate(tapes) if not t]
        if not empties:
            raise ValueError("at least one tape must start empty")
        output = empties[0]
        while sum(len(t) for t in tapes) > 1:
            inputs = [i for i in range(len(tapes)) if i != output and tapes[i]]
            if not inputs:
                # Only the output tape holds runs; merge them pairwise
                # onto another tape (degenerate start distribution).
                runs = tapes[output]
                merged = list(kway_merge(runs, self.counter))
                tapes[output] = [merged]
                break
            merges = min(len(tapes[i]) for i in inputs)
            for _ in range(merges):
                batch = [tapes[i].pop(0) for i in inputs]
                tapes[output].append(list(kway_merge(batch, self.counter)))
            emptied = [i for i in inputs if not tapes[i]]
            if sum(len(t) for t in tapes) <= 1:
                break
            output = emptied[0]
        for tape in tapes:
            if tape:
                return tape[0]
        return []


def polyphase_merge(tapes: Sequence[Sequence[Sequence[Any]]]) -> List[Any]:
    """Convenience wrapper: merge ``tapes`` and return the final run."""
    return PolyphaseMerger(tapes).merge()
