"""Input data distributions (Section 5.2, Figure 5.1).

The paper evaluates six basic distributions which it presents as building
blocks of more complicated real inputs:

* ``sorted``            — records already in ascending order.
* ``reverse_sorted``    — records in descending order.
* ``alternating``       — interleaved increasing / decreasing sections.
* ``random``            — uniformly random records.
* ``mixed_balanced``    — alternates one record of an increasing sequence
  with one record of a decreasing sequence.
* ``mixed_imbalanced``  — one increasing record per three decreasing ones.

The paper adds a uniform random value in ``[1, 1000]`` to every record so
that repeated executions with different seeds produce variance (for the
ANOVA study); generators accept ``noise`` to reproduce that.

All generators are lazy (they yield ints) so arbitrarily long inputs can
be streamed without materialising them; ``n`` records span the value
range ``[0, value_span)`` scaled like the paper's 10**9 key space.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, Optional

DEFAULT_NOISE = 1000
DEFAULT_VALUE_SPAN = 10**9


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def _noise_rng(seed: Optional[int], noise_seed: Optional[int]) -> random.Random:
    """RNG for the additive noise; defaults to the base seed.

    The paper's ANOVA replicates re-draw only the noise on top of a
    fixed base dataset (Section 5.2); passing ``noise_seed`` reproduces
    that: same ``seed`` -> same structure, different ``noise_seed`` ->
    different replicate.
    """
    return random.Random(seed if noise_seed is None else noise_seed)


def _noisy(value: int, noise: int, rng: random.Random) -> int:
    if noise <= 0:
        return value
    return value + rng.randint(1, noise)


def _step(n: int, value_span: int) -> int:
    """Spacing between consecutive structured records."""
    return max(1, value_span // max(1, n))


def sorted_input(
    n: int,
    *,
    seed: Optional[int] = None,
    noise_seed: Optional[int] = None,
    noise: int = 0,
    value_span: int = DEFAULT_VALUE_SPAN,
) -> Iterator[int]:
    """Ascending records (Figure 5.1a)."""
    noise_rng = _noise_rng(seed, noise_seed)
    step = _step(n, value_span)
    for i in range(n):
        yield _noisy(i * step, noise, noise_rng)


def reverse_sorted_input(
    n: int,
    *,
    seed: Optional[int] = None,
    noise_seed: Optional[int] = None,
    noise: int = 0,
    value_span: int = DEFAULT_VALUE_SPAN,
) -> Iterator[int]:
    """Descending records (Figure 5.1b)."""
    noise_rng = _noise_rng(seed, noise_seed)
    step = _step(n, value_span)
    for i in range(n):
        yield _noisy((n - 1 - i) * step, noise, noise_rng)


def alternating_input(
    n: int,
    *,
    sections: int = 50,
    seed: Optional[int] = None,
    noise_seed: Optional[int] = None,
    noise: int = 0,
    value_span: int = DEFAULT_VALUE_SPAN,
) -> Iterator[int]:
    """Increasing sections interleaved with decreasing ones (Figure 5.1c).

    ``sections`` counts the total number of monotone sections; the paper's
    default of 50 corresponds to 25 increasing and 25 decreasing sections.
    Each section sweeps the full value span.
    """
    if sections < 1:
        raise ValueError(f"sections must be >= 1, got {sections}")
    noise_rng = _noise_rng(seed, noise_seed)
    per_section = max(1, n // sections)
    step = _step(per_section, value_span)
    emitted = 0
    section = 0
    while emitted < n:
        length = min(per_section, n - emitted)
        ascending = section % 2 == 0
        for i in range(length):
            pos = i if ascending else length - 1 - i
            yield _noisy(pos * step, noise, noise_rng)
        emitted += length
        section += 1


def random_input(
    n: int,
    *,
    seed: Optional[int] = None,
    noise_seed: Optional[int] = None,
    noise: int = 0,
    value_span: int = DEFAULT_VALUE_SPAN,
) -> Iterator[int]:
    """Uniformly random records (Figure 5.1d)."""
    rng = _rng(seed)
    noise_rng = _noise_rng(seed, noise_seed)
    for _ in range(n):
        yield _noisy(rng.randrange(value_span), noise, noise_rng)


def mixed_input(
    n: int,
    *,
    down_per_up: int = 1,
    seed: Optional[int] = None,
    noise_seed: Optional[int] = None,
    noise: int = 0,
    value_span: int = DEFAULT_VALUE_SPAN,
) -> Iterator[int]:
    """Interleave an increasing sequence with a decreasing one.

    ``down_per_up = 1`` gives the *mixed balanced* dataset (Figure 5.1e);
    ``down_per_up = 3`` gives *mixed imbalanced* (Figure 5.1f).  The two
    sequences live in disjoint halves of the value span so a victim-aware
    algorithm can capture both trends in a single run.
    """
    if down_per_up < 1:
        raise ValueError(f"down_per_up must be >= 1, got {down_per_up}")
    noise_rng = _noise_rng(seed, noise_seed)
    group = 1 + down_per_up
    n_up = (n + group - 1) // group
    n_down = n - n_up
    half = value_span // 2
    up_step = _step(max(1, n_up), half)
    down_step = _step(max(1, n_down), half)
    up_i = 0
    down_i = 0
    emitted = 0
    while emitted < n:
        if emitted % group == 0 and up_i < n_up:
            # Increasing sequence in the lower half of the span.
            yield _noisy(up_i * up_step, noise, noise_rng)
            up_i += 1
        else:
            # Decreasing sequence in the upper half of the span.
            yield _noisy(value_span - 1 - down_i * down_step, noise, noise_rng)
            down_i += 1
        emitted += 1


def mixed_balanced_input(
    n: int,
    *,
    seed: Optional[int] = None,
    noise_seed: Optional[int] = None,
    noise: int = 0,
    value_span: int = DEFAULT_VALUE_SPAN,
) -> Iterator[int]:
    """Mixed balanced dataset (Figure 5.1e): 1 up record per 1 down record."""
    return mixed_input(
        n,
        down_per_up=1,
        seed=seed,
        noise_seed=noise_seed,
        noise=noise,
        value_span=value_span,
    )


def mixed_imbalanced_input(
    n: int,
    *,
    seed: Optional[int] = None,
    noise_seed: Optional[int] = None,
    noise: int = 0,
    value_span: int = DEFAULT_VALUE_SPAN,
) -> Iterator[int]:
    """Mixed imbalanced dataset (Figure 5.1f): 1 up record per 3 down."""
    return mixed_input(
        n,
        down_per_up=3,
        seed=seed,
        noise_seed=noise_seed,
        noise=noise,
        value_span=value_span,
    )


Generator = Callable[..., Iterator[int]]

#: Name -> generator registry used by the experiment harnesses.  Keys are
#: the paper's dataset names.
DISTRIBUTIONS: Dict[str, Generator] = {
    "sorted": sorted_input,
    "reverse_sorted": reverse_sorted_input,
    "alternating": alternating_input,
    "random": random_input,
    "mixed_balanced": mixed_balanced_input,
    "mixed_imbalanced": mixed_imbalanced_input,
}


def make_input(
    name: str,
    n: int,
    *,
    seed: Optional[int] = None,
    noise_seed: Optional[int] = None,
    noise: int = DEFAULT_NOISE,
    **kwargs,
) -> Iterator[int]:
    """Instantiate a named distribution from :data:`DISTRIBUTIONS`.

    Unlike the raw generators, noise defaults to the paper's 1..1000 so
    that seeded replicates differ (Section 5.2).
    """
    try:
        generator = DISTRIBUTIONS[name]
    except KeyError:
        known = ", ".join(sorted(DISTRIBUTIONS))
        raise ValueError(f"unknown distribution {name!r}; known: {known}") from None
    return generator(n, seed=seed, noise_seed=noise_seed, noise=noise, **kwargs)
