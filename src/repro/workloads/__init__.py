"""Input data distributions from the paper's evaluation (Figure 5.1)."""

from repro.workloads.generators import (
    DEFAULT_NOISE,
    DEFAULT_VALUE_SPAN,
    DISTRIBUTIONS,
    alternating_input,
    make_input,
    mixed_balanced_input,
    mixed_imbalanced_input,
    mixed_input,
    random_input,
    reverse_sorted_input,
    sorted_input,
)

__all__ = [
    "DEFAULT_NOISE",
    "DEFAULT_VALUE_SPAN",
    "DISTRIBUTIONS",
    "alternating_input",
    "make_input",
    "mixed_balanced_input",
    "mixed_imbalanced_input",
    "mixed_input",
    "random_input",
    "reverse_sorted_input",
    "sorted_input",
]
