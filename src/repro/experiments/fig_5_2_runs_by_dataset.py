"""Figure 5.2 — number of runs generated as a function of the dataset.

The paper's boxplot over all 2160 configurations x 5 seeds: sorted and
reverse-sorted always give one run, alternating always 50, random sits
in a narrow band near (input / 2 memory), and the two mixed datasets
spread widely because they are heuristic-sensitive.

We reproduce the distribution summary (min / mean / max / spread) per
dataset over a reduced factorial sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.stats.factorial import FactorialSettings, runs_by_dataset
from repro.workloads.generators import DISTRIBUTIONS

#: Reduced sweep: 2 x 2 x 2 x 2 cells, 2 seeds (the full paper sweep is
#: available through FactorialSettings defaults).
REDUCED = FactorialSettings(
    memory_capacity=500,
    input_records=10_000,
    seeds=(11, 22),
    buffer_setups=("input", "both"),
    buffer_sizes=(0.002, 0.02),
    input_heuristics=("mean", "random"),
    output_heuristics=("random", "balancing"),
)


@dataclass(slots=True)
class DatasetSummary:
    """Distribution of the number of runs for one dataset."""

    dataset: str
    minimum: float
    mean: float
    maximum: float

    @property
    def spread(self) -> float:
        return self.maximum - self.minimum


def run(
    datasets: Sequence[str] = tuple(DISTRIBUTIONS),
    settings: FactorialSettings = REDUCED,
) -> List[DatasetSummary]:
    """Collect run counts per dataset over the factorial sweep."""
    observations: Dict[str, List[float]] = runs_by_dataset(datasets, settings)
    summaries = []
    for dataset, values in observations.items():
        summaries.append(
            DatasetSummary(
                dataset=dataset,
                minimum=min(values),
                mean=sum(values) / len(values),
                maximum=max(values),
            )
        )
    return summaries


def main() -> None:
    summaries = run()
    print("Figure 5.2 — number of runs by input dataset (factorial sweep)")
    print(f"{'dataset':<18} {'min':>6} {'mean':>8} {'max':>6} {'spread':>7}")
    for s in summaries:
        print(
            f"{s.dataset:<18} {s.minimum:>6.0f} {s.mean:>8.1f} "
            f"{s.maximum:>6.0f} {s.spread:>7.0f}"
        )
    print(
        "paper shape: sorted/reverse = 1 run always; alternating constant; "
        "random narrow band; mixed datasets spread widely"
    )


if __name__ == "__main__":
    main()
