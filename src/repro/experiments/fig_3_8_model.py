"""Figure 3.8 — evolution of the memory-content density in the RS model.

Solves the Section 3.6 differential system with RK4, starting from a
uniform density (m(x, 0) = 1), and reports the density profile at the
start of each of the first four runs.  The paper observes rapid
convergence to the stable solution m(x) = 2 - 2x, with the third run's
profile "indistinguishable" from it; run lengths converge to 2x the
memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.model.snowplow import ModelRun, SnowplowModel, stable_density


@dataclass(slots=True)
class ModelFit:
    """Convergence of one run's starting density to 2 - 2x."""

    run_index: int
    run_length: float
    max_abs_error: float


def run(num_runs: int = 4, cells: int = 256, dt: float = 5e-4) -> List[ModelFit]:
    """Solve the model and measure convergence per run."""
    model = SnowplowModel(cells=cells)
    runs: List[ModelRun] = model.solve(num_runs=num_runs, dt=dt)
    fits = []
    for model_run in runs:
        error = max(
            abs(value - stable_density(x))
            for value, x in zip(model_run.density_at_start, model.grid)
        )
        fits.append(
            ModelFit(
                run_index=model_run.index,
                run_length=model_run.length,
                max_abs_error=error,
            )
        )
    return fits


def main() -> None:
    print("Figure 3.8 — density convergence of the RS snowplow model")
    print(f"{'run':>4} {'length (x memory)':>18} {'max |m - (2-2x)|':>18}")
    for fit in run():
        print(
            f"{fit.run_index:>4} {fit.run_length:>18.3f} {fit.max_abs_error:>18.3f}"
        )
    print("paper: lengths -> 2.0; run 3 density indistinguishable from 2-2x")


if __name__ == "__main__":
    main()
