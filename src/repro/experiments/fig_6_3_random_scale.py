"""Figure 6.3 — random input: sorting time vs input size.

The paper fixes 10 K records of memory and grows the input from 100 MB
to 1 GB: both algorithms scale identically on random data.

Scaled setup: 1 000-record memory, inputs 25 K..200 K records.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.common import TimingRow, compare_rs_twrs, dataset_records, timing_table

DEFAULT_INPUT_SIZES = (25_000, 50_000, 100_000, 200_000)
DEFAULT_MEMORY = 1_000


def run(
    input_sizes: Sequence[int] = DEFAULT_INPUT_SIZES,
    memory_capacity: int = DEFAULT_MEMORY,
    seed: int = 5,
) -> List[TimingRow]:
    """Time both algorithms at each input size."""
    rows: List[TimingRow] = []
    for n in input_sizes:
        records = dataset_records("random", n, seed=seed)
        rows.append(compare_rs_twrs(n, records, memory_capacity))
    return rows


def main() -> None:
    rows = run()
    print("Figure 6.3 — random input, input-size sweep (simulated seconds)")
    print(timing_table(rows, "input"))
    print("paper shape: both algorithms scale identically on random data")


if __name__ == "__main__":
    main()
