"""Tables 5.4-5.9 and Figure 5.8 — ANOVA for the mixed balanced input.

Paper pipeline (Section 5.2.5):

1. configurations *without* the victim buffer behave erratically and
   are removed (Figure 5.5);
2. a model over j, k, l and their first-order interactions is fitted
   (Table 5.5), then re-estimated with WLS weights 1/var(buffer-size
   level) (Table 5.6) which brings CV below 1%;
3. Tukey tests pick the best input heuristics {Alternate, Mean, Median}
   (Table 5.7) and best output heuristics {Random, Balancing}
   (Table 5.8); optimal configurations reach the minimum of 2 runs.

Figure 5.8's data — mean runs per (input, output) heuristic pair — is
also produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.stats.anova import AnovaResult, anova, wls_weights_by_factor
from repro.stats.diagnostics import AssumptionReport, check_assumptions
from repro.stats.factorial import FactorialSettings, run_factorial
from repro.stats.tukey import TukeyResult, tukey_hsd

#: Victim-less configurations are removed per the paper, so only
#: "both" and "victim" setups are swept.  The memory/input scale is the
#: smallest at which the input buffer is a usable sample (2% of memory
#: must hold several records for Mean/Median to behave as in the paper).
REDUCED = FactorialSettings(
    memory_capacity=1_000,
    input_records=20_000,
    seeds=(11, 22, 33),
    buffer_setups=("both", "victim"),
    buffer_sizes=(0.02, 0.20),
    input_heuristics=("random", "alternate", "mean", "median", "balancing"),
    output_heuristics=("random", "alternate", "balancing"),
)

_MODEL_TERMS: Tuple[Tuple[str, ...], ...] = (
    ("j",),
    ("k",),
    ("l",),
    ("j", "k"),
    ("j", "l"),
    ("k", "l"),
)


@dataclass(slots=True)
class MixedAnova:
    """Results of the Section 5.2.5 analysis."""

    mls_model: AnovaResult
    wls_model: AnovaResult
    input_tukey: TukeyResult
    output_tukey: TukeyResult
    best_input_heuristics: List[str]
    best_output_heuristics: List[str]
    heuristic_pair_means: Dict[tuple, float]
    minimum_runs: float
    assumptions: AssumptionReport


def run(settings: Optional[FactorialSettings] = None) -> MixedAnova:
    """Fit the mixed-balanced models and Tukey comparisons."""
    settings = settings if settings is not None else REDUCED
    design = run_factorial("mixed_balanced", settings)
    assumptions = check_assumptions(design, ["i", "j", "k", "l"])
    mls = anova(design, _MODEL_TERMS)
    weights = wls_weights_by_factor(design, "j")
    wls = anova(design, _MODEL_TERMS, weights=weights)
    input_tukey = tukey_hsd(design, wls, ["k"])
    output_tukey = tukey_hsd(design, wls, ["l"])
    return MixedAnova(
        mls_model=mls,
        wls_model=wls,
        input_tukey=input_tukey,
        output_tukey=output_tukey,
        best_input_heuristics=input_tukey.best_levels(),
        best_output_heuristics=output_tukey.best_levels(),
        heuristic_pair_means=design.group_means(["k", "l"]),
        minimum_runs=min(design.values),
        assumptions=assumptions,
    )


def main() -> None:
    result = run()
    wls_factors = result.assumptions.wls_recommended()
    print(
        "Appendix B.3 checks: heteroscedastic factors "
        f"{wls_factors or 'none'} (the paper observes unequal variances "
        "across buffer sizes and re-estimates with WLS)"
    )
    print()
    print("Table 5.5 — MLS model (j, k, l + first-order interactions)")
    print(result.mls_model.format_table())
    print()
    print("Table 5.6 — same model, WLS weights 1/var(j level)")
    print(result.wls_model.format_table())
    print()
    print("Table 5.7 — Tukey, input heuristics")
    print(result.input_tukey.format_table())
    print(f"best input heuristics: {result.best_input_heuristics}")
    print()
    print("Table 5.8 — Tukey, output heuristics")
    print(result.output_tukey.format_table())
    print(f"best output heuristics: {result.best_output_heuristics}")
    print()
    print("Figure 5.8 — mean runs per (input, output) heuristic pair")
    for (k, l), mean in sorted(result.heuristic_pair_means.items()):
        print(f"  {k:<10} x {l:<10} -> {mean:8.1f}")
    print(f"minimum runs observed: {result.minimum_runs:.0f} (paper: 2)")


if __name__ == "__main__":
    main()
