"""Figure 6.7 — reverse-sorted input: sorting time vs input size.

RS's worst case: every run is exactly the memory size.  2WRS's
BottomHeap absorbs the whole input into a single run, making its merge
phase trivial; the paper measures a constant ~2.5x speedup.

Scaled setup: 1 000-record memory, inputs 25 K..200 K records.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.common import TimingRow, compare_rs_twrs, dataset_records, timing_table

DEFAULT_INPUT_SIZES = (25_000, 50_000, 100_000, 200_000)
DEFAULT_MEMORY = 1_000


def run(
    input_sizes: Sequence[int] = DEFAULT_INPUT_SIZES,
    memory_capacity: int = DEFAULT_MEMORY,
    seed: int = 5,
) -> List[TimingRow]:
    """Time both algorithms at each input size."""
    rows: List[TimingRow] = []
    for n in input_sizes:
        records = dataset_records("reverse_sorted", n, seed=seed)
        rows.append(compare_rs_twrs(n, records, memory_capacity))
    return rows


def main() -> None:
    rows = run()
    print("Figure 6.7 — reverse-sorted input, input-size sweep (simulated s)")
    print(timing_table(rows, "input"))
    print("paper shape: single 2WRS run; ~2.5x constant speedup over RS")


if __name__ == "__main__":
    main()
