"""Figure 6.6 — alternating input: time vs number of sorted sections.

With few long monotone sections 2WRS folds each descending section into
a single run (RS shatters it into memory-sized runs) and wins by up to
~3x; as the number of sections grows, sections approach the memory size
and both algorithms converge.

Scaled setup: 100 K records, 1 000-record memory, 2..50 sections (the
paper's sweep keeps each section much larger than the memory; beyond
that regime the per-section runs drop below RS's 2x-memory runs and the
curves cross slightly, a reduced-scale artifact noted in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.common import TimingRow, compare_rs_twrs, timing_table
from repro.workloads.generators import alternating_input

DEFAULT_SECTIONS = (2, 4, 10, 20, 50)
DEFAULT_INPUT_RECORDS = 100_000
DEFAULT_MEMORY = 1_000


def run(
    sections_sweep: Sequence[int] = DEFAULT_SECTIONS,
    input_records: int = DEFAULT_INPUT_RECORDS,
    memory_capacity: int = DEFAULT_MEMORY,
    seed: int = 5,
) -> List[TimingRow]:
    """Time both algorithms at each section count."""
    rows: List[TimingRow] = []
    for sections in sections_sweep:
        records = list(
            alternating_input(
                input_records, sections=sections, seed=seed, noise=1000
            )
        )
        rows.append(compare_rs_twrs(sections, records, memory_capacity))
    return rows


def main() -> None:
    rows = run()
    print("Figure 6.6 — alternating input vs number of sections (simulated s)")
    print(timing_table(rows, "sections"))
    print("paper shape: up to ~3x for few sections, converging as they grow")


if __name__ == "__main__":
    main()
