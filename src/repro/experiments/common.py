"""Shared plumbing for the per-table/figure experiment harnesses.

Every experiment module exposes ``run(...) -> result`` returning plain
data (rows the paper's table or figure would plot) and ``main()``
printing them.  This module holds the scaled default parameters and the
helpers that build comparable RS / 2WRS pipelines.

Scaling (DESIGN.md section 3): the paper sorts 100 MB-1 GB with 100 K
records of memory on a physical disk; we sort 10^4-10^6 records over
the simulated disk with proportional memory.  The response variables
(runs generated, run length relative to memory, simulated-time ratios)
are scale-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.core.config import RECOMMENDED, TwoWayConfig
from repro.core.two_way import TwoWayReplacementSelection
from repro.iosim.disk import DiskGeometry, DiskModel
from repro.iosim.files import SimulatedFileSystem
from repro.runs.replacement_selection import ReplacementSelection
from repro.sort.external import ExternalSort, SortReport
from repro.workloads.generators import make_input

#: Records per simulated page in the timing experiments (smaller than
#: the 4 KiB default so scaled-down memory still spans several pages).
EXPERIMENT_PAGE_RECORDS = 256

#: Default merge fan-in (the paper's measured optimum, Section 6.1.1).
DEFAULT_FAN_IN = 10


def experiment_filesystem() -> SimulatedFileSystem:
    """A fresh simulated disk with experiment-scaled pages."""
    geometry = DiskGeometry(page_records=EXPERIMENT_PAGE_RECORDS)
    return SimulatedFileSystem(DiskModel(geometry=geometry))


@dataclass(slots=True)
class TimingRow:
    """One point of a Chapter 6 plot: RS and 2WRS timings side by side."""

    x: Any
    rs_run_time: float
    rs_total_time: float
    twrs_run_time: float
    twrs_total_time: float
    rs_runs: int
    twrs_runs: int

    @property
    def speedup(self) -> float:
        """RS total time over 2WRS total time (the paper's speedup)."""
        if self.twrs_total_time == 0:
            return float("inf")
        return self.rs_total_time / self.twrs_total_time


def sort_with(
    generator, records: Iterable[Any], fan_in: int = DEFAULT_FAN_IN
) -> SortReport:
    """Run one full external sort on a fresh simulated disk."""
    pipeline = ExternalSort(
        generator, fs=experiment_filesystem(), fan_in=fan_in
    )
    _, report = pipeline.sort(records)
    return report


def compare_rs_twrs(
    x: Any,
    records: List[Any],
    memory_capacity: int,
    config: Optional[TwoWayConfig] = None,
    fan_in: int = DEFAULT_FAN_IN,
) -> TimingRow:
    """Sort the same records with RS and 2WRS; return one plot point."""
    config = config if config is not None else RECOMMENDED
    rs_report = sort_with(ReplacementSelection(memory_capacity), records, fan_in)
    twrs_report = sort_with(
        TwoWayReplacementSelection(memory_capacity, config), records, fan_in
    )
    return TimingRow(
        x=x,
        rs_run_time=rs_report.run_time,
        rs_total_time=rs_report.total_time,
        twrs_run_time=twrs_report.run_time,
        twrs_total_time=twrs_report.total_time,
        rs_runs=rs_report.runs,
        twrs_runs=twrs_report.runs,
    )


def timing_table(rows: Sequence[TimingRow], x_label: str) -> str:
    """Format Chapter 6 plot data as an aligned text table."""
    header = (
        f"{x_label:>12} {'RS run':>10} {'RS total':>10} "
        f"{'2WRS run':>10} {'2WRS total':>11} {'speedup':>8} "
        f"{'RS#':>5} {'2WRS#':>6}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{str(row.x):>12} {row.rs_run_time:>10.3f} {row.rs_total_time:>10.3f} "
            f"{row.twrs_run_time:>10.3f} {row.twrs_total_time:>11.3f} "
            f"{row.speedup:>8.2f} {row.rs_runs:>5d} {row.twrs_runs:>6d}"
        )
    return "\n".join(lines)


def dataset_records(
    name: str, n: int, seed: int = 1, **kwargs
) -> List[Any]:
    """Materialise one of the paper's input datasets."""
    return list(make_input(name, n, seed=seed, **kwargs))
