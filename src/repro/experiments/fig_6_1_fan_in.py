"""Figure 6.1 — merge time as a function of the fan-in.

The paper merges 400 pre-sorted 16 MB run files with fan-ins 2..18 and
finds the minimum at fan-in 10: a small fan-in forces extra merge
passes, a large one splits the merge memory into tiny per-run buffers
whose refills each pay a disk seek.

Scaled setup: 100 pre-sorted runs of 1024 records merged with a
12 800-record memory over the simulated disk; the same two forces
produce the same U-shaped curve with its minimum at 10 (100 runs need
three passes below fan-in 10 and two passes from 10 up, after which
seeks take over).

:func:`run_real` repeats the sweep on *real* run files through
:meth:`repro.engine.SortEngine.merge_files` — the engine's
block-batched readers and a §3.7.2 reading strategy against actual
file handles — reporting measured wall time, merge passes, and block
reads per fan-in.  Real-file wall times on a cached filesystem do not
reproduce the paper's seek-driven right half of the U; the pass count
(the left half) and the block-read totals do, which is what
``main()`` prints next to the simulated curve.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.config import GeneratorSpec
from repro.core.records import INT
from repro.engine.block_io import write_sequence
from repro.engine.planner import SortEngine
from repro.experiments.common import experiment_filesystem
from repro.merge.merge_tree import MergeTree
from repro.workloads.generators import random_input

DEFAULT_FAN_INS = tuple(range(2, 19))
DEFAULT_NUM_RUNS = 100
DEFAULT_RUN_RECORDS = 1_024
DEFAULT_MERGE_MEMORY = 12_800


@dataclass(slots=True)
class FanInPoint:
    """One point of the Figure 6.1 curve."""

    fan_in: int
    merge_io_time: float
    passes: int
    seeks: int


def run(
    fan_ins: Sequence[int] = DEFAULT_FAN_INS,
    num_runs: int = DEFAULT_NUM_RUNS,
    run_records: int = DEFAULT_RUN_RECORDS,
    merge_memory: int = DEFAULT_MERGE_MEMORY,
    seed: int = 3,
) -> List[FanInPoint]:
    """Merge the same pre-sorted runs at every fan-in."""
    import math

    points: List[FanInPoint] = []
    for fan_in in fan_ins:
        fs = experiment_filesystem()
        files = []
        for index in range(num_runs):
            records = sorted(
                random_input(run_records, seed=seed * 10_000 + index)
            )
            files.append(fs.create_from(f"run-{index}", records))
        fs.disk.reset_stats()
        tree = MergeTree(fs, fan_in=fan_in, memory_capacity=merge_memory)
        result = tree.merge(files)
        assert len(result) == num_runs * run_records
        passes = max(1, math.ceil(math.log(num_runs, fan_in)))
        points.append(
            FanInPoint(
                fan_in=fan_in,
                merge_io_time=fs.disk.elapsed,
                passes=passes,
                seeks=fs.disk.stats.random_accesses,
            )
        )
    return points


@dataclass(slots=True)
class RealFanInPoint:
    """One point of the real-file engine sweep."""

    fan_in: int
    wall_time: float
    passes: int
    block_reads: int
    prefetch_hits: int


def run_real(
    fan_ins: Sequence[int] = DEFAULT_FAN_INS,
    num_runs: int = DEFAULT_NUM_RUNS,
    run_records: int = DEFAULT_RUN_RECORDS,
    merge_memory: int = DEFAULT_MERGE_MEMORY,
    reading: str = "forecasting",
    seed: int = 3,
) -> List[RealFanInPoint]:
    """Merge the same pre-sorted *files* at every fan-in via the engine.

    The per-run read buffer scales as ``merge_memory / fan_in``,
    mirroring how a fixed merge memory is split in the simulated sweep.
    """
    points: List[RealFanInPoint] = []
    with tempfile.TemporaryDirectory(prefix="repro-fig61-") as work_dir:
        paths = []
        for index in range(num_runs):
            records = sorted(
                random_input(run_records, seed=seed * 10_000 + index)
            )
            path = os.path.join(work_dir, f"run-{index:03d}.txt")
            write_sequence(path, records, INT)
            paths.append(path)
        for fan_in in fan_ins:
            engine = SortEngine(
                GeneratorSpec("lss", merge_memory),
                fan_in=fan_in,
                buffer_records=max(1, merge_memory // (fan_in + 1)),
                reading=reading,
                tmp_dir=work_dir,
            )
            merged = sum(1 for _ in engine.merge_files(paths))
            assert merged == num_runs * run_records
            stats = engine.reading_stats
            points.append(
                RealFanInPoint(
                    fan_in=fan_in,
                    wall_time=engine.report.merge_phase.wall_time,
                    passes=engine.merge_passes,
                    block_reads=stats.block_reads,
                    prefetch_hits=stats.prefetch_hits,
                )
            )
    return points


def main() -> None:
    points = run()
    print("Figure 6.1 — merge time vs fan-in (simulated disk)")
    print(f"{'fan-in':>7} {'merge time (s)':>15} {'passes':>7} {'seeks':>8}")
    for point in points:
        print(
            f"{point.fan_in:>7} {point.merge_io_time:>15.3f} "
            f"{point.passes:>7} {point.seeks:>8}"
        )
    best = min(points, key=lambda p: p.merge_io_time)
    print(f"minimum at fan-in {best.fan_in} (paper: 10)")
    real = run_real()
    print()
    print("Same sweep over real run files (SortEngine.merge_files)")
    print(
        f"{'fan-in':>7} {'wall (s)':>10} {'passes':>7} "
        f"{'block reads':>12} {'prefetch hits':>14}"
    )
    for point in real:
        print(
            f"{point.fan_in:>7} {point.wall_time:>10.3f} "
            f"{point.passes:>7} {point.block_reads:>12} "
            f"{point.prefetch_hits:>14}"
        )


if __name__ == "__main__":
    main()
