"""Figure 6.2 — random input: sorting time vs available memory.

The paper fixes a 1 GB random input and sweeps memory from 1 K to 1 M
records: RS and 2WRS take essentially the same total time (random data
defeats both victim and heuristics), with 2WRS paying a small run-phase
overhead for its extra machinery; both get faster as memory grows.

Scaled setup: 100 K-record input, memory sweep 250..8000 records.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.common import TimingRow, compare_rs_twrs, dataset_records, timing_table

DEFAULT_MEMORIES = (250, 500, 1_000, 2_000, 4_000, 8_000)
DEFAULT_INPUT_RECORDS = 100_000


def run(
    memories: Sequence[int] = DEFAULT_MEMORIES,
    input_records: int = DEFAULT_INPUT_RECORDS,
    seed: int = 5,
) -> List[TimingRow]:
    """Time both algorithms at each memory size."""
    records = dataset_records("random", input_records, seed=seed)
    return [
        compare_rs_twrs(memory, records, memory) for memory in memories
    ]


def main() -> None:
    rows = run()
    print("Figure 6.2 — random input, memory sweep (simulated seconds)")
    print(timing_table(rows, "memory"))
    print("paper shape: RS and 2WRS nearly equal; both drop as memory grows")


if __name__ == "__main__":
    main()
