"""Tables 5.10-5.12 and Figures 5.11-5.12 — mixed imbalanced ANOVA.

Paper pipeline (Section 5.2.6): the buffer setup i matters here — the
model keeps i, j, k, l plus the interactions of i with the heuristics
and the second-order i*k*l term, re-estimated with WLS.  The best
configurations use *both* buffers with the Mean or Median input
heuristic and the Random or Alternate output heuristic, reaching the
minimum of 2 runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.stats.anova import AnovaResult, anova, wls_weights_by_factor
from repro.stats.factorial import FactorialSettings, run_factorial
from repro.stats.tukey import TukeyResult, tukey_hsd

REDUCED = FactorialSettings(
    memory_capacity=500,
    input_records=12_000,
    seeds=(11, 22, 33),
    buffer_setups=("input", "both", "victim"),
    buffer_sizes=(0.002, 0.02, 0.20),
    input_heuristics=("random", "mean", "median", "useful"),
    output_heuristics=("random", "alternate", "min_distance"),
)

_MODEL_TERMS: Tuple[Tuple[str, ...], ...] = (
    ("i",),
    ("j",),
    ("k",),
    ("l",),
    ("i", "k"),
    ("i", "l"),
    ("k", "l"),
    ("i", "k", "l"),
)


@dataclass(slots=True)
class ImbalancedAnova:
    """Results of the Section 5.2.6 analysis."""

    mls_model: AnovaResult
    wls_model: AnovaResult
    setup_tukey: TukeyResult
    best_setups: List[str]
    setup_means: Dict[str, float]
    setup_heuristic_means: Dict[tuple, float]
    minimum_runs: float


def run(settings: Optional[FactorialSettings] = None) -> ImbalancedAnova:
    """Fit the mixed-imbalanced models and Tukey comparisons."""
    settings = settings if settings is not None else REDUCED
    design = run_factorial("mixed_imbalanced", settings)
    mls = anova(design, _MODEL_TERMS)
    weights = wls_weights_by_factor(design, "j")
    wls = anova(design, _MODEL_TERMS, weights=weights)
    setup_tukey = tukey_hsd(design, wls, ["i"])
    return ImbalancedAnova(
        mls_model=mls,
        wls_model=wls,
        setup_tukey=setup_tukey,
        best_setups=setup_tukey.best_levels(),
        setup_means=design.level_means("i"),
        setup_heuristic_means=design.group_means(["i", "k"]),
        minimum_runs=min(design.values),
    )


def main() -> None:
    result = run()
    print("Table 5.10 — MLS model (i, j, k, l + i*k, i*l, k*l, i*k*l)")
    print(result.mls_model.format_table())
    print()
    print("Table 5.11 — same model with WLS weights 1/var(j level)")
    print(result.wls_model.format_table())
    print()
    print("Figure 5.11 — mean runs per buffer setup")
    for setup, mean in sorted(result.setup_means.items()):
        print(f"  {setup:<8} -> {mean:8.1f}")
    print(f"best buffer setups (Tukey): {result.best_setups} (paper: both)")
    print()
    print("Figure 5.12 — mean runs per (setup, input heuristic)")
    for (i, k), mean in sorted(result.setup_heuristic_means.items()):
        print(f"  {i:<8} x {k:<10} -> {mean:8.1f}")
    print(f"minimum runs observed: {result.minimum_runs:.0f} (paper: 2)")


if __name__ == "__main__":
    main()
