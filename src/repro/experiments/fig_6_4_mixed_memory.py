"""Figure 6.4 — mixed input: sorting time vs available memory.

On the mixed dataset 2WRS generates far fewer runs (the victim buffer
captures the converging middle band), so its merge phase shrinks and
the paper measures a sustained ~3x total-time speedup across the whole
memory sweep.

Scaled setup: 100 K-record mixed input, memory sweep 250..8000 records.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.common import TimingRow, compare_rs_twrs, dataset_records, timing_table

DEFAULT_MEMORIES = (250, 500, 1_000, 2_000, 4_000, 8_000)
DEFAULT_INPUT_RECORDS = 100_000


def run(
    memories: Sequence[int] = DEFAULT_MEMORIES,
    input_records: int = DEFAULT_INPUT_RECORDS,
    seed: int = 5,
) -> List[TimingRow]:
    """Time both algorithms at each memory size."""
    records = dataset_records("mixed_balanced", input_records, seed=seed)
    return [
        compare_rs_twrs(memory, records, memory) for memory in memories
    ]


def main() -> None:
    rows = run()
    print("Figure 6.4 — mixed input, memory sweep (simulated seconds)")
    print(timing_table(rows, "memory"))
    print("paper shape: 2WRS ~3x faster in total at every memory size")


if __name__ == "__main__":
    main()
