"""One experiment module per table/figure of the paper's evaluation.

Run any module directly, e.g.::

    python -m repro.experiments.table_5_13_run_lengths
    python -m repro.experiments.fig_6_1_fan_in

Submodules are intentionally not imported eagerly (each pulls in its
experiment dependencies); import the one you need.  The per-experiment
index lives in DESIGN.md; measured-vs-paper notes in EXPERIMENTS.md.
"""

#: Module name per experiment, in paper order.
EXPERIMENTS = (
    "table_2_1_polyphase",
    "fig_3_8_model",
    "fig_5_2_runs_by_dataset",
    "table_5_2_anova_random",
    "fig_5_4_buffer_size",
    "table_5_6_anova_mixed",
    "table_5_11_anova_imbalanced",
    "table_5_13_run_lengths",
    "fig_6_1_fan_in",
    "fig_6_2_random_memory",
    "fig_6_3_random_scale",
    "fig_6_4_mixed_memory",
    "fig_6_5_mixed_scale",
    "fig_6_6_alternating",
    "fig_6_7_reverse",
)

__all__ = ["EXPERIMENTS"]
