"""Table 5.13 — average run length relative to memory size.

The headline run-length comparison: RS against three 2WRS
parameterisations (all Mean input / Random output heuristics) over the
six input datasets.

Paper values (for 100 K-record memory, 25 M-record input):

====================  =====  ======  ======  ======
input                 RS     cfg1    cfg2    cfg3
====================  =====  ======  ======  ======
sorted                inf    inf     inf     inf
reverse sorted        1.0    inf     inf     inf
alternating           1.94   50      50      50
random                2.0    2.0     1.6     1.96
mixed balanced        2.0    1.2     125     63
mixed imbalanced      2.0    1.2     125     63
====================  =====  ======  ======  ======

"inf" means a single run holding the whole input; the mixed rows' large
values correspond to the minimum possible number of runs (2).  At our
scale the same structure appears as: one run where the paper says inf,
2 runs for mixed with cfg2/cfg3, roughly 2.0 for random, and ~one run
per section for alternating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import TABLE_5_13_CONFIGS
from repro.core.two_way import TwoWayReplacementSelection
from repro.runs.replacement_selection import ReplacementSelection
from repro.workloads.generators import DISTRIBUTIONS, make_input

#: Alternating sections chosen so each section is 5x memory, the
#: regime of the paper's alternating dataset (Section 5.2).
SECTIONS = 20


@dataclass(slots=True)
class RunLengthRow:
    """One table row: relative run lengths per algorithm."""

    dataset: str
    rs: float
    cfg1: float
    cfg2: float
    cfg3: float
    rs_runs: int
    cfg_runs: Dict[str, int]


def _relative_length(num_runs: int, n: int, memory: int) -> float:
    if num_runs == 0:
        return 0.0
    return (n / num_runs) / memory


def run(
    memory_capacity: int = 1_000, input_records: int = 100_000, seed: int = 7
) -> List[RunLengthRow]:
    """Measure every cell of Table 5.13 at the scaled size."""
    rows: List[RunLengthRow] = []
    for dataset in DISTRIBUTIONS:
        kwargs = {"sections": SECTIONS} if dataset == "alternating" else {}
        data = list(make_input(dataset, input_records, seed=seed, **kwargs))
        rs_runs = ReplacementSelection(memory_capacity).count_runs(data)
        cfg_runs: Dict[str, int] = {}
        for name, config in TABLE_5_13_CONFIGS.items():
            algo = TwoWayReplacementSelection(memory_capacity, config)
            cfg_runs[name] = algo.count_runs(data)
        rows.append(
            RunLengthRow(
                dataset=dataset,
                rs=_relative_length(rs_runs, input_records, memory_capacity),
                cfg1=_relative_length(cfg_runs["cfg1"], input_records, memory_capacity),
                cfg2=_relative_length(cfg_runs["cfg2"], input_records, memory_capacity),
                cfg3=_relative_length(cfg_runs["cfg3"], input_records, memory_capacity),
                rs_runs=rs_runs,
                cfg_runs=cfg_runs,
            )
        )
    return rows


def main() -> None:
    memory, n = 1_000, 100_000
    rows = run(memory, n)
    single = n / memory  # the relative length of one all-input run
    print("Table 5.13 — average run length relative to memory size")
    print(f"(memory={memory} records, input={n} records; {single:.0f} = single run)")
    print(f"{'input':<18} {'RS':>8} {'cfg1':>8} {'cfg2':>8} {'cfg3':>8}")
    for row in rows:
        print(
            f"{row.dataset:<18} {row.rs:>8.2f} {row.cfg1:>8.2f} "
            f"{row.cfg2:>8.2f} {row.cfg3:>8.2f}"
        )
    print(
        "paper shape: RS worst on reverse (1.0); 2WRS single-run on "
        "sorted/reverse; cfg2/cfg3 collapse mixed to 2 runs; random ~2.0"
    )


if __name__ == "__main__":
    main()
