"""Figures 5.3 / 5.4 and Table 5.3 — random input: buffer size is all.

The ANOVA for random input keeps a single factor, the buffer size j:
memory handed to the buffers is simply memory taken from the heaps, so
the relative run length falls linearly from 2.0 as the buffer share
grows (Figure 5.4), and the j-only model explains the data (Table 5.3:
R-squared ~ 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.config import TwoWayConfig
from repro.core.two_way import TwoWayReplacementSelection
from repro.workloads.generators import random_input

DEFAULT_FRACTIONS = (0.0002, 0.002, 0.02, 0.10, 0.20)
DEFAULT_MEMORY = 1_000
DEFAULT_INPUT_RECORDS = 100_000


@dataclass(slots=True)
class BufferSizePoint:
    """One point of the Figure 5.4 curve."""

    buffer_fraction: float
    relative_run_length: float
    runs: int


def run(
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    memory_capacity: int = DEFAULT_MEMORY,
    input_records: int = DEFAULT_INPUT_RECORDS,
    seeds: Sequence[int] = (5, 6, 7),
) -> List[BufferSizePoint]:
    """Measure relative run length for each buffer-size level."""
    points: List[BufferSizePoint] = []
    for fraction in fractions:
        config = TwoWayConfig(
            buffer_setup="both",
            buffer_fraction=fraction,
            input_heuristic="mean",
            output_heuristic="random",
        )
        total_runs = 0
        for seed in seeds:
            algo = TwoWayReplacementSelection(memory_capacity, config)
            total_runs += algo.count_runs(random_input(input_records, seed=seed))
        mean_runs = total_runs / len(seeds)
        points.append(
            BufferSizePoint(
                buffer_fraction=fraction,
                relative_run_length=(input_records / mean_runs) / memory_capacity,
                runs=round(mean_runs),
            )
        )
    return points


def main() -> None:
    points = run()
    print("Figure 5.4 — run length vs buffer size, random input")
    print(f"{'buffer %':>9} {'run length / memory':>20} {'runs':>6}")
    for p in points:
        print(
            f"{100 * p.buffer_fraction:>8.2f}% {p.relative_run_length:>20.2f} "
            f"{p.runs:>6}"
        )
    print("paper shape: ~2.0 at tiny buffers, falling linearly with size")


if __name__ == "__main__":
    main()
