"""Tables 5.2 / 5.3 — ANOVA of the 2WRS configuration on random input.

Paper findings: with a model over all four factors (Table 5.2) every
factor is *statistically* significant but the buffer size j has an F
value orders of magnitude above the others; dropping everything else
(Table 5.3, the j-only model) keeps R-squared at 1.0 and CV well under
5%.  Conclusion: for random inputs only the buffer share matters — the
less memory diverted from the heaps, the longer the runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.stats.anova import AnovaResult, all_main_effects, anova
from repro.stats.factorial import FactorialSettings, run_factorial

#: Reduced sweep for benchmark runtimes; raise to the paper's full
#: crossing with FactorialSettings() when time allows.
REDUCED = FactorialSettings(
    memory_capacity=500,
    input_records=50_000,
    seeds=(11, 22, 33),
    buffer_setups=("input", "both", "victim"),
    buffer_sizes=(0.0002, 0.002, 0.02, 0.20),
    input_heuristics=("mean", "random"),
    output_heuristics=("random", "balancing"),
)


@dataclass(slots=True)
class RandomAnova:
    """The two fitted models of Section 5.2.4."""

    full_model: AnovaResult
    j_only_model: AnovaResult
    dominant_factor: str


def run(settings: Optional[FactorialSettings] = None) -> RandomAnova:
    """Fit the Table 5.2 and Table 5.3 models on fresh observations."""
    settings = settings if settings is not None else REDUCED
    design = run_factorial("random", settings)
    full = anova(design, all_main_effects(design))
    dominant = max(full.terms, key=lambda t: t.f_value).label
    j_only = anova(design, [("j",)])
    return RandomAnova(
        full_model=full, j_only_model=j_only, dominant_factor=dominant
    )


def main() -> None:
    result = run()
    print("Table 5.2 — model y = mu + i + j + k + l, random input")
    print(result.full_model.format_table())
    print()
    print("Table 5.3 — model y = mu + j (buffer size only)")
    print(result.j_only_model.format_table())
    print(f"dominant factor: {result.dominant_factor} (paper: j, buffer size)")


if __name__ == "__main__":
    main()
