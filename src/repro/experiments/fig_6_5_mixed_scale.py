"""Figure 6.5 — mixed input: sorting time vs input size.

The ~3x advantage of 2WRS on the mixed dataset is sustained as the
input grows; the paper also notes the 2WRS *run phase* is faster here
because most records flow through the victim buffer's library sort
rather than the heaps.

Scaled setup: 1 000-record memory, inputs 25 K..200 K records.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.common import TimingRow, compare_rs_twrs, dataset_records, timing_table

DEFAULT_INPUT_SIZES = (25_000, 50_000, 100_000, 200_000)
DEFAULT_MEMORY = 1_000


def run(
    input_sizes: Sequence[int] = DEFAULT_INPUT_SIZES,
    memory_capacity: int = DEFAULT_MEMORY,
    seed: int = 5,
) -> List[TimingRow]:
    """Time both algorithms at each input size."""
    rows: List[TimingRow] = []
    for n in input_sizes:
        records = dataset_records("mixed_balanced", n, seed=seed)
        rows.append(compare_rs_twrs(n, records, memory_capacity))
    return rows


def main() -> None:
    rows = run()
    print("Figure 6.5 — mixed input, input-size sweep (simulated seconds)")
    print(timing_table(rows, "input"))
    print("paper shape: ~3x speedup sustained as the input grows")


if __name__ == "__main__":
    main()
