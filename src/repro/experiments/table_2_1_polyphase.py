"""Table 2.1 — polyphase merge bookkeeping for 6 tapes.

The background chapter's worked example: tapes start with
{8, 10, 3, 0, 8, 11} runs and the table lists the run counts after each
polyphase step until a single run remains.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.merge.polyphase import PolyphaseStep, polyphase_schedule

#: The paper's starting distribution.
PAPER_INITIAL_COUNTS = (8, 10, 3, 0, 8, 11)

#: The rows of Table 2.1 (run counts per tape after each step).
PAPER_TABLE_2_1 = (
    (8, 10, 3, 0, 8, 11),
    (5, 7, 0, 3, 5, 8),
    (2, 4, 3, 0, 2, 5),
    (0, 2, 1, 2, 0, 3),
    (1, 1, 0, 1, 0, 2),
    (0, 0, 1, 0, 0, 1),
    (1, 0, 0, 0, 0, 0),
)


def run(initial_counts: Sequence[int] = PAPER_INITIAL_COUNTS) -> List[PolyphaseStep]:
    """Compute the polyphase schedule for the paper's example."""
    return polyphase_schedule(initial_counts)


def main() -> None:
    steps = run()
    tapes = len(PAPER_INITIAL_COUNTS)
    header = "Step    " + "".join(f"Tape {i + 1:<3}" for i in range(tapes))
    print("Table 2.1 — polyphase merge with 6 tapes")
    print(header)
    for step in steps:
        counts = "".join(f"{c:<8}" for c in step.counts)
        print(f"{step.step:<8}{counts}")
    matches = tuple(s.counts for s in steps) == PAPER_TABLE_2_1
    print(f"matches the paper's table exactly: {matches}")


if __name__ == "__main__":
    main()
