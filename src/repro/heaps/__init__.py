"""Heap data structures (Chapter 3 and Section 4.1 of the paper)."""

from repro.heaps.binary_heap import (
    BinaryHeap,
    HeapEmptyError,
    HeapFullError,
    MaxHeap,
    MinHeap,
    left_child_index,
    parent_index,
    right_child_index,
)
from repro.heaps.double_heap import DoubleHeap, HeapSide
from repro.heaps.heapsort import heapsort, heapsort_inplace
from repro.heaps.run_heap import BottomRunHeap, TaggedRecord, TopRunHeap

__all__ = [
    "BinaryHeap",
    "BottomRunHeap",
    "DoubleHeap",
    "HeapEmptyError",
    "HeapFullError",
    "HeapSide",
    "MaxHeap",
    "MinHeap",
    "TaggedRecord",
    "TopRunHeap",
    "heapsort",
    "heapsort_inplace",
    "left_child_index",
    "parent_index",
    "right_child_index",
]
