"""Array-backed binary heaps (Section 3.1 of the paper).

The paper implements heaps explicitly as complete binary trees stored in
a one-dimensional array: node ``i`` has parent ``(i - 1) // 2`` and
children ``2 i + 1`` and ``2 i + 2``.  We reproduce that implementation
instead of using :mod:`heapq` because the core 2WRS data structure (the
:class:`~repro.heaps.double_heap.DoubleHeap`) stores *two* heaps in one
fixed array, which requires direct control of the index arithmetic.

Two concrete classes are provided, :class:`MinHeap` and :class:`MaxHeap`,
both deriving from :class:`BinaryHeap` which is parameterised by a
``before(a, b)`` ordering predicate.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class HeapEmptyError(IndexError):
    """Raised when ``peek`` or ``pop`` is called on an empty heap."""


class HeapFullError(OverflowError):
    """Raised when pushing into a bounded heap that is at capacity."""


def parent_index(i: int) -> int:
    """Return the array index of the parent of node ``i`` (root has none)."""
    if i <= 0:
        raise ValueError(f"node {i} has no parent")
    return (i - 1) // 2


def left_child_index(i: int) -> int:
    """Return the array index of the left child of node ``i``."""
    return 2 * i + 1


def right_child_index(i: int) -> int:
    """Return the array index of the right child of node ``i``."""
    return 2 * i + 2


class BinaryHeap(Generic[T]):
    """A binary heap ordered by a ``before`` predicate.

    ``before(a, b)`` must return True when ``a`` has to be popped before
    ``b``; for a min heap this is ``a < b``.  The predicate must induce a
    strict weak ordering.

    Parameters
    ----------
    before:
        The ordering predicate.
    items:
        Optional initial items; heapified in O(n).
    capacity:
        Optional bound; pushing beyond it raises :class:`HeapFullError`.
    """

    def __init__(
        self,
        before: Callable[[T, T], bool],
        items: Optional[Iterable[T]] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._before = before
        self._capacity = capacity
        self._items: List[T] = list(items) if items is not None else []
        if capacity is not None and len(self._items) > capacity:
            raise HeapFullError(
                f"{len(self._items)} initial items exceed capacity {capacity}"
            )
        self._heapify()

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[T]:
        """Iterate over the backing array (heap order, not sorted order)."""
        return iter(self._items)

    def __contains__(self, item: T) -> bool:
        return item in self._items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self._items!r})"

    # -- properties ----------------------------------------------------------

    @property
    def capacity(self) -> Optional[int]:
        """Maximum number of items, or None when unbounded."""
        return self._capacity

    @property
    def is_full(self) -> bool:
        """True when a bounded heap has reached its capacity."""
        return self._capacity is not None and len(self._items) >= self._capacity

    # -- core operations (Section 3.1.1) --------------------------------------

    def peek(self) -> T:
        """Return the top record without removing it."""
        if not self._items:
            raise HeapEmptyError("peek from an empty heap")
        return self._items[0]

    def push(self, item: T) -> None:
        """Add a record, restoring the heap property with *upheap*."""
        if self.is_full:
            raise HeapFullError(f"heap is at capacity {self._capacity}")
        self._items.append(item)
        self._sift_up(len(self._items) - 1)

    def pop(self) -> T:
        """Remove and return the top record with *downheap*."""
        if not self._items:
            raise HeapEmptyError("pop from an empty heap")
        top = self._items[0]
        last = self._items.pop()
        if self._items:
            self._items[0] = last
            self._sift_down(0)
        return top

    def replace(self, item: T) -> T:
        """Pop the top record and push ``item`` in a single sift.

        This is the inner step of replacement selection: one output, one
        input, one traversal of the tree.
        """
        if not self._items:
            raise HeapEmptyError("replace on an empty heap")
        top = self._items[0]
        self._items[0] = item
        self._sift_down(0)
        return top

    def pushpop(self, item: T) -> T:
        """Push then pop, short-circuiting when ``item`` would win anyway."""
        if not self._items or self._before(item, self._items[0]):
            return item
        top = self._items[0]
        self._items[0] = item
        self._sift_down(0)
        return top

    def clear(self) -> None:
        """Remove all items."""
        self._items.clear()

    def drain_sorted(self) -> Iterator[T]:
        """Yield all items in pop order, emptying the heap."""
        while self._items:
            yield self.pop()

    def as_list(self) -> List[T]:
        """Return a copy of the backing array (level order)."""
        return list(self._items)

    def check_invariant(self) -> bool:
        """Return True iff the heap property holds everywhere (for tests)."""
        n = len(self._items)
        for i in range(1, n):
            p = parent_index(i)
            if self._before(self._items[i], self._items[p]):
                return False
        return True

    # -- internals -------------------------------------------------------------

    def _heapify(self) -> None:
        n = len(self._items)
        for i in range(n // 2 - 1, -1, -1):
            self._sift_down(i)

    def _sift_up(self, i: int) -> None:
        items = self._items
        item = items[i]
        while i > 0:
            p = parent_index(i)
            if self._before(item, items[p]):
                items[i] = items[p]
                i = p
            else:
                break
        items[i] = item

    def _sift_down(self, i: int) -> None:
        items = self._items
        n = len(items)
        item = items[i]
        while True:
            child = left_child_index(i)
            if child >= n:
                break
            right = child + 1
            if right < n and self._before(items[right], items[child]):
                child = right
            if self._before(items[child], item):
                items[i] = items[child]
                i = child
            else:
                break
        items[i] = item


class MinHeap(BinaryHeap[T]):
    """Binary heap that pops the smallest record first.

    The sift loops are re-stated here with the ``<`` operator inlined:
    they perform exactly the same comparisons in the same order as the
    generic predicate-driven loops in :class:`BinaryHeap` (so array
    states and pop order are identical), but skip the Python function
    call per comparison.  That call is pure overhead in the run
    generation hot loop — for binary spill records each comparison is a
    raw ``bytes`` memcmp, and the lambda indirection used to cost more
    than the comparison itself.
    """

    def __init__(
        self, items: Optional[Iterable[T]] = None, capacity: Optional[int] = None
    ) -> None:
        super().__init__(lambda a, b: a < b, items=items, capacity=capacity)

    def pushpop(self, item: T) -> T:
        items = self._items
        if not items or item < items[0]:
            return item
        top = items[0]
        items[0] = item
        self._sift_down(0)
        return top

    def _sift_up(self, i: int) -> None:
        items = self._items
        item = items[i]
        while i > 0:
            p = (i - 1) // 2
            if item < items[p]:
                items[i] = items[p]
                i = p
            else:
                break
        items[i] = item

    def _sift_down(self, i: int) -> None:
        items = self._items
        n = len(items)
        item = items[i]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            right = child + 1
            if right < n and items[right] < items[child]:
                child = right
            if items[child] < item:
                items[i] = items[child]
                i = child
            else:
                break
        items[i] = item


class MaxHeap(BinaryHeap[T]):
    """Binary heap that pops the largest record first.

    Sift loops inlined with ``>`` for the same reason as
    :class:`MinHeap` — identical comparisons, no per-comparison call.
    """

    def __init__(
        self, items: Optional[Iterable[T]] = None, capacity: Optional[int] = None
    ) -> None:
        super().__init__(lambda a, b: a > b, items=items, capacity=capacity)

    def pushpop(self, item: T) -> T:
        items = self._items
        if not items or item > items[0]:
            return item
        top = items[0]
        items[0] = item
        self._sift_down(0)
        return top

    def _sift_up(self, i: int) -> None:
        items = self._items
        item = items[i]
        while i > 0:
            p = (i - 1) // 2
            if item > items[p]:
                items[i] = items[p]
                i = p
            else:
                break
        items[i] = item

    def _sift_down(self, i: int) -> None:
        items = self._items
        n = len(items)
        item = items[i]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            right = child + 1
            if right < n and items[right] > items[child]:
                child = right
            if items[child] > item:
                items[i] = items[child]
                i = child
            else:
                break
        items[i] = item
