"""Run-tagged heaps for replacement-selection style algorithms.

During run generation every record in memory is tagged with the run it
belongs to (Section 3.3).  Records of the *next* run must sink below all
records of the *current* run so that "top record belongs to the next run"
is equivalent to "every record in memory belongs to the next run".

:class:`TaggedRecord` is an immutable (run, key, payload) triple.
:class:`TopRunHeap` orders by (run asc, key asc)   — the RS / TopHeap order.
:class:`BottomRunHeap` orders by (run asc, key desc) — the 2WRS BottomHeap
order: within the current run the *largest* key pops first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.heaps.binary_heap import BinaryHeap


@dataclass(frozen=True, slots=True)
class TaggedRecord:
    """A record tagged with the run it belongs to.

    Attributes
    ----------
    run:
        Index of the run this record can still join.
    key:
        The sort key.
    payload:
        Opaque data carried alongside the key (ignored by ordering).
    """

    run: int
    key: Any
    payload: Any = field(default=None, compare=False)


def top_before(a: TaggedRecord, b: TaggedRecord) -> bool:
    """Current run before next run; within a run, ascending keys."""
    if a.run != b.run:
        return a.run < b.run
    return a.key < b.key


def bottom_before(a: TaggedRecord, b: TaggedRecord) -> bool:
    """Current run before next run; within a run, descending keys."""
    if a.run != b.run:
        return a.run < b.run
    return a.key > b.key


class TopRunHeap(BinaryHeap[TaggedRecord]):
    """Min-heap over (run, key): the heap used by RS and the 2WRS TopHeap."""

    def __init__(
        self,
        items: Optional[Iterable[TaggedRecord]] = None,
        capacity: Optional[int] = None,
    ) -> None:
        super().__init__(top_before, items=items, capacity=capacity)


class BottomRunHeap(BinaryHeap[TaggedRecord]):
    """Max-by-key heap over (run, key): the 2WRS BottomHeap.

    Records of the current run pop in *descending* key order, so the heap
    releases a decreasing stream; records marked for the next run still
    sink below every current-run record.
    """

    def __init__(
        self,
        items: Optional[Iterable[TaggedRecord]] = None,
        capacity: Optional[int] = None,
    ) -> None:
        super().__init__(bottom_before, items=items, capacity=capacity)
