"""Two heaps sharing one fixed array (Section 4.1, Figures 4.2-4.5).

2WRS keeps a *BottomHeap* and a *TopHeap* in a single statically
allocated array so that one heap can grow at the expense of the other
without dynamic allocation.  The bottom heap occupies positions
``0 .. len(bottom) - 1`` growing upward; the top heap occupies positions
``capacity - len(top) .. capacity - 1`` growing downward, stored in
*reverse level order* (the top heap's logical node ``i`` lives at array
index ``capacity - 1 - i``).

:class:`DoubleHeap` exposes the combined structure; :class:`HeapSide`
gives each heap the familiar push/pop/peek interface while sharing the
backing array.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, List, Optional, TypeVar

from repro.heaps.binary_heap import (
    HeapEmptyError,
    HeapFullError,
    left_child_index,
    parent_index,
)

T = TypeVar("T")


class HeapSide(Generic[T]):
    """One of the two heaps of a :class:`DoubleHeap`.

    The side does not own storage: it reads and writes the shared array
    through an index mapping supplied by the parent.

    Parameters
    ----------
    owner:
        The :class:`DoubleHeap` whose array this side shares.
    before:
        Ordering predicate; ``before(a, b)`` means ``a`` pops first.
    physical:
        Maps a logical node index (0 = root) to an index of the shared
        array.
    """

    def __init__(
        self,
        owner: "DoubleHeap[T]",
        before: Callable[[T, T], bool],
        physical: Callable[[int], int],
    ) -> None:
        self._owner = owner
        self._before = before
        self._physical = physical
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # -- logical array access ------------------------------------------------

    def _get(self, i: int) -> T:
        return self._owner._array[self._physical(i)]

    def _set(self, i: int, value: T) -> None:
        self._owner._array[self._physical(i)] = value

    # -- heap operations -------------------------------------------------------

    def peek(self) -> T:
        """Return this side's top record."""
        if self._size == 0:
            raise HeapEmptyError("peek from an empty heap side")
        return self._get(0)

    def push(self, item: T) -> None:
        """Insert into this side; fails when the *shared* array is full."""
        if self._owner.is_full:
            raise HeapFullError(
                f"double heap is at capacity {self._owner.capacity}"
            )
        i = self._size
        self._size += 1
        self._set(i, item)
        self._sift_up(i)

    def pop(self) -> T:
        """Remove and return this side's top record."""
        if self._size == 0:
            raise HeapEmptyError("pop from an empty heap side")
        top = self._get(0)
        self._size -= 1
        if self._size > 0:
            self._set(0, self._get(self._size))
            self._sift_down(0)
        return top

    def replace(self, item: T) -> T:
        """Pop the top and push ``item`` with a single sift-down."""
        if self._size == 0:
            raise HeapEmptyError("replace on an empty heap side")
        top = self._get(0)
        self._set(0, item)
        self._sift_down(0)
        return top

    def as_list(self) -> List[T]:
        """Return this side's records in level order (a copy)."""
        return [self._get(i) for i in range(self._size)]

    def check_invariant(self) -> bool:
        """True iff the heap property holds on this side (for tests)."""
        for i in range(1, self._size):
            if self._before(self._get(i), self._get(parent_index(i))):
                return False
        return True

    # -- internals ---------------------------------------------------------------

    def _sift_up(self, i: int) -> None:
        item = self._get(i)
        while i > 0:
            p = parent_index(i)
            parent = self._get(p)
            if self._before(item, parent):
                self._set(i, parent)
                i = p
            else:
                break
        self._set(i, item)

    def _sift_down(self, i: int) -> None:
        n = self._size
        item = self._get(i)
        while True:
            child = left_child_index(i)
            if child >= n:
                break
            right = child + 1
            if right < n and self._before(self._get(right), self._get(child)):
                child = right
            winner = self._get(child)
            if self._before(winner, item):
                self._set(i, winner)
                i = child
            else:
                break
        self._set(i, item)


class DoubleHeap(Generic[T]):
    """Two opposed heaps in one statically allocated array.

    Parameters
    ----------
    capacity:
        Total number of records both heaps may hold together.
    bottom_before / top_before:
        Ordering predicates for the bottom and top sides.

    Notes
    -----
    ``bottom`` grows from index 0 upward; ``top`` grows from index
    ``capacity - 1`` downward (reverse level order, as in Figure 4.3).
    The structure is full when ``len(bottom) + len(top) == capacity``.
    """

    def __init__(
        self,
        capacity: int,
        bottom_before: Callable[[T, T], bool],
        top_before: Callable[[T, T], bool],
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._capacity = capacity
        self._array: List[Any] = [None] * capacity
        self.bottom: HeapSide[T] = HeapSide(self, bottom_before, lambda i: i)
        self.top: HeapSide[T] = HeapSide(
            self, top_before, lambda i: capacity - 1 - i
        )

    def __len__(self) -> int:
        return len(self.bottom) + len(self.top)

    def __bool__(self) -> bool:
        return len(self) > 0

    @property
    def capacity(self) -> int:
        """Total shared capacity."""
        return self._capacity

    @property
    def is_full(self) -> bool:
        """True when no record can be pushed into either side."""
        return len(self) >= self._capacity

    @property
    def free(self) -> int:
        """Number of array slots not used by either heap."""
        return self._capacity - len(self)

    def as_array(self) -> List[Any]:
        """Return a copy of the raw shared array (Figure 4.3 layout).

        Slots not owned by either heap hold stale values or None; callers
        should interpret the array with ``len(bottom)`` and ``len(top)``.
        """
        return list(self._array)

    def check_invariant(self) -> bool:
        """True iff both sides satisfy their heap property and fit."""
        if len(self) > self._capacity:
            return False
        return self.bottom.check_invariant() and self.top.check_invariant()
