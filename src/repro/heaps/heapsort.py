"""Heapsort (Section 3.2).

The paper presents heapsort with a heap *separate* from the output array
"for clarity"; replacement selection is then derived from it by inserting
a new record after every pop.  We provide both that didactic two-array
variant and the classic in-place variant for completeness.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.heaps.binary_heap import MinHeap


def heapsort(records: Iterable[Any], key: Optional[Callable[[Any], Any]] = None) -> List[Any]:
    """Sort ``records`` ascending using a separate min-heap (paper variant).

    Every record is pushed once and popped once, giving the O(n log n)
    bound derived in Section 3.2.
    """
    if key is None:
        heap = MinHeap(records)
        return list(heap.drain_sorted())
    decorated = MinHeap((key(r), i, r) for i, r in enumerate(records))
    return [r for (_, _, r) in decorated.drain_sorted()]


def heapsort_inplace(records: List[Any]) -> List[Any]:
    """Sort ``records`` ascending in place using a max-heap and return it.

    The standard array trick: build a max-heap over the whole array, then
    repeatedly swap the root with the last unsorted slot and sift down.
    """
    n = len(records)

    def sift_down(start: int, end: int) -> None:
        root = start
        while True:
            child = 2 * root + 1
            if child > end:
                break
            if child + 1 <= end and records[child] < records[child + 1]:
                child += 1
            if records[root] < records[child]:
                records[root], records[child] = records[child], records[root]
                root = child
            else:
                break

    for start in range(n // 2 - 1, -1, -1):
        sift_down(start, n - 1)
    for end in range(n - 1, 0, -1):
        records[0], records[end] = records[end], records[0]
        sift_down(0, end - 1)
    return records
