"""Reusable test harnesses shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection layer
(DESIGN.md §11): any test — in this repository or downstream — can
schedule an exception, short write, bit flip or silent truncation at
an exact block-I/O call and watch how the sorting engine fails and
recovers.  It lives inside the package (not under ``tests/``) because
worker processes of the parallel backend must be able to import it
after ``spawn``.
"""
