"""Deterministic fault injection for the real-file sort backends.

A :class:`FaultPlan` schedules exactly one failure mode at the Nth
matching block-I/O call:

* ``raise`` — the call raises :class:`FaultInjected` (a crash at a
  block boundary: worker death, disk error);
* ``short_write`` — half the payload reaches the file, then the call
  raises (a torn write: power loss mid-block);
* ``bit_flip`` — one character of the payload is silently corrupted
  and the sort *continues* (latent media corruption, caught later by
  block checksums);
* ``truncate`` — the call and every later matching one silently drop
  their payload / report end-of-file (a lost file tail).

Injection is *deterministic*: calls are counted per process in call
order, filtered by operation (``open`` / ``read`` / ``write``) and an
optional path substring, so a failing case reproduces from its plan
alone.  Activation installs a wrapper on the single
:func:`repro.engine.block_io.open_text` seam every backend opens its
spill, shard and partition files through — no backend code is patched
— and mirrors the plan into the ``REPRO_FAULT_PLAN`` environment
variable so ``spawn`` worker processes of the parallel backend (and
``repro.cli`` subprocesses) inherit the same schedule and fault their
own I/O at the same deterministic points.

:class:`FaultyFormat` is the record-format twin for unit tests that
want a decode/encode failure mid-merge without real files.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Any, Iterator, List, Optional, Sequence, TextIO

from repro.core.records import RecordFormat
from repro.engine.block_io import set_io_wrapper
from repro.engine.errors import SortError

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultInjected",
    "FaultPlan",
    "FaultState",
    "FaultyFile",
    "FaultyFormat",
    "activate",
    "activate_from_env",
    "deactivate",
]

#: Environment variable carrying the active plan to child processes.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Operations a plan can target.
FAULT_OPS = ("open", "read", "write")

#: Failure modes a plan can inject.
FAULT_KINDS = ("raise", "short_write", "bit_flip", "truncate")


class FaultInjected(SortError, OSError):
    """The scheduled fault fired.

    Subclasses both :class:`~repro.engine.errors.SortError` (the sort
    failed cleanly and reportably) and :class:`OSError` (what the real
    failure being simulated — a dying disk, a killed worker — would
    look like to the I/O layer), so tests can assert either contract.
    """


@dataclass(frozen=True)
class FaultPlan:
    """One scheduled fault: the Nth matching call of ``op`` fails.

    Parameters
    ----------
    op:
        Which block-I/O operation to count: ``"open"``, ``"read"``
        (one line handed to a reader) or ``"write"`` (one buffered
        block or header flushed).
    nth:
        1-based index of the matching call that faults.
    kind:
        ``"raise"``, ``"short_write"``, ``"bit_flip"`` or
        ``"truncate"`` (see the module docstring).
    path_substring:
        Only calls on files whose path contains this substring are
        counted (empty = every file).  ``"run-"`` targets spill runs,
        ``"shard-"`` sorted shard outputs, ``"part-"`` partition files,
        ``"merge"`` intermediate merge outputs.
    """

    op: str
    nth: int
    kind: str
    path_substring: str = ""

    def __post_init__(self) -> None:
        if self.op not in FAULT_OPS:
            raise ValueError(
                f"op must be one of {FAULT_OPS}, got {self.op!r}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            fields = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"unparseable fault plan {text!r}: {exc}"
            ) from exc
        return cls(**fields)

    def describe(self) -> str:
        where = f" on *{self.path_substring}*" if self.path_substring else ""
        return f"{self.kind} at {self.op} #{self.nth}{where}"


class FaultState:
    """Per-process counters and audit trail of an activated plan.

    ``opened`` / ``closed`` record every path the harness saw pass
    through the seam, so leak regressions can assert "every handle
    opened during the faulted merge was closed again" without groping
    around ``/proc``.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.calls = 0
        self.fired = False
        self.truncating = False
        self.opened: List[str] = []
        self.closed: List[str] = []

    def leaked(self) -> List[str]:
        """Paths opened through the seam and never closed."""
        remaining = list(self.closed)
        leaks = []
        for path in self.opened:
            if path in remaining:
                remaining.remove(path)
            else:
                leaks.append(path)
        return leaks

    def _matches(self, op: str, path: str) -> bool:
        return (
            self.plan.op == op
            and self.plan.path_substring in path
        )

    def due(self, op: str, path: str) -> bool:
        """Count one call; True when the plan's Nth call is reached."""
        if self.fired or not self._matches(op, path):
            return False
        self.calls += 1
        if self.calls == self.plan.nth:
            self.fired = True
            return True
        return False


def _flip_char(text: str) -> str:
    """Corrupt one payload character, preserving the line structure."""
    for index, char in enumerate(text):
        if char != "\n":
            flipped = "0" if char != "0" else "9"
            return text[:index] + flipped + text[index + 1 :]
    return text


def _flip_byte(data: bytes) -> bytes:
    """Corrupt one payload byte (binary twin of :func:`_flip_char`)."""
    if not data:
        return data
    flipped = 0x30 if data[0] != 0x30 else 0x39
    return bytes((flipped,)) + data[1:]


class FaultyFile:
    """File proxy that applies the active plan to one file's calls.

    Wraps a real handle — text or binary, the seam passes both
    through here.  Text reads are counted per line handed out
    (``__next__``, which is how the text block readers consume files);
    binary reads per ``read()`` call (the binary reader makes exactly
    two per block: header, then body).  Writes are counted per
    ``write()`` call (one buffered block, checksum header, or binary
    header/body each).  Everything else is forwarded untouched.
    """

    def __init__(self, handle: TextIO, path: str, state: FaultState) -> None:
        self._handle = handle
        self._path = path
        self._state = state
        self._read_eof = False
        state.opened.append(path)

    # -- faulted operations ----------------------------------------------------

    def write(self, text: Any) -> int:
        state = self._state
        if state.truncating and state.plan.path_substring in self._path:
            return len(text)
        if state.due("write", self._path):
            kind = state.plan.kind
            if kind == "raise":
                raise FaultInjected(
                    f"injected write fault ({state.plan.describe()}) "
                    f"on {self._path!r}"
                )
            if kind == "short_write":
                self._handle.write(text[: len(text) // 2])
                self._handle.flush()
                raise FaultInjected(
                    f"injected torn write ({state.plan.describe()}) "
                    f"on {self._path!r}"
                )
            if kind == "bit_flip":
                flip = _flip_byte if isinstance(text, bytes) else _flip_char
                return self._handle.write(flip(text))
            if kind == "truncate":
                state.truncating = True
                return len(text)
        return self._handle.write(text)

    def read(self, size: int = -1) -> Any:
        """Counted binary-style read (one block header or body each)."""
        if self._read_eof:
            return b"" if "b" in getattr(self._handle, "mode", "") else ""
        data = self._handle.read(size)
        state = self._state
        if state.due("read", self._path):
            kind = state.plan.kind
            if kind in ("raise", "short_write"):
                raise FaultInjected(
                    f"injected read fault ({state.plan.describe()}) "
                    f"on {self._path!r}"
                )
            if kind == "bit_flip":
                return _flip_byte(data) if isinstance(data, bytes) else (
                    _flip_char(data)
                )
            if kind == "truncate":
                self._read_eof = True
                return data[:0]
        return data

    def __next__(self) -> str:
        if self._read_eof:
            raise StopIteration
        line = next(self._handle)
        state = self._state
        if state.due("read", self._path):
            kind = state.plan.kind
            if kind in ("raise", "short_write"):
                raise FaultInjected(
                    f"injected read fault ({state.plan.describe()}) "
                    f"on {self._path!r}"
                )
            if kind == "bit_flip":
                return _flip_char(line)
            if kind == "truncate":
                self._read_eof = True
                raise StopIteration
        return line

    def __iter__(self) -> "FaultyFile":
        return self

    # -- plumbing -------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._path

    def close(self) -> None:
        if not self._handle.closed:
            self._state.closed.append(self._path)
        self._handle.close()

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __getattr__(self, attribute: str) -> Any:
        return getattr(self._handle, attribute)


#: The plan currently wired into the block-I/O seam (per process).
_ACTIVE: Optional[FaultState] = None


def _wrap(handle: TextIO, path: str, mode: str) -> TextIO:
    state = _ACTIVE
    if state is None:  # pragma: no cover - unhooked race guard
        return handle
    if state.due("open", path):
        handle.close()
        raise FaultInjected(
            f"injected open fault ({state.plan.describe()}) on {path!r}"
        )
    return FaultyFile(handle, path, state)


def _install(plan: FaultPlan) -> FaultState:
    global _ACTIVE
    state = FaultState(plan)
    _ACTIVE = state
    set_io_wrapper(_wrap)
    return state


def deactivate() -> None:
    """Remove the active plan, the I/O wrapper and the environment relay."""
    global _ACTIVE
    _ACTIVE = None
    set_io_wrapper(None)
    os.environ.pop(FAULT_PLAN_ENV, None)


@contextmanager
def activate(plan: FaultPlan) -> Iterator[FaultState]:
    """Arm ``plan`` for this process *and* any child it spawns.

    The plan is installed on the block-I/O seam and exported through
    ``REPRO_FAULT_PLAN``, so parallel-sort workers (fresh ``spawn``
    processes) arm themselves on startup with their own independent
    call counters.  Yields the :class:`FaultState` for assertions;
    always disarms on exit, even when the injected fault propagates.
    """
    state = _install(plan)
    os.environ[FAULT_PLAN_ENV] = plan.to_json()
    try:
        yield state
    finally:
        deactivate()


def activate_from_env() -> Optional[FaultState]:
    """Arm the plan found in ``REPRO_FAULT_PLAN``, if any.

    Called at worker-process and CLI startup.  A no-op when the
    variable is unset or a plan is already active in this process, so
    it is always safe to call.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    text = os.environ.get(FAULT_PLAN_ENV)
    if not text:
        return None
    return _install(FaultPlan.from_json(text))


class FaultyFormat(RecordFormat):
    """Record-format proxy that fails the Nth block encode or decode.

    The no-files counterpart to :class:`FaultyFile`: unit tests hand
    it to a backend (or directly to a merge) to make one reader or
    writer raise :class:`FaultInjected` mid-stream — e.g. the
    ``kway_merge`` handle-leak regression.  Counters live on the
    instance, so construct a fresh one per scenario.
    """

    def __init__(
        self,
        inner: RecordFormat,
        fail_decode_at: Optional[int] = None,
        fail_encode_at: Optional[int] = None,
    ) -> None:
        self._inner = inner
        self._fail_decode_at = fail_decode_at
        self._fail_encode_at = fail_encode_at
        self.decode_calls = 0
        self.encode_calls = 0
        self.name = f"faulty[{inner.name}]"
        self.numeric = inner.numeric
        self.blank_input_skippable = inner.blank_input_skippable

    def decode(self, text: str) -> Any:
        return self._inner.decode(text)

    def encode(self, record: Any) -> str:
        return self._inner.encode(record)

    def key(self, record: Any) -> Any:
        return self._inner.key(record)

    def decode_block(self, lines: Sequence[str]) -> List[Any]:
        self.decode_calls += 1
        if self.decode_calls == self._fail_decode_at:
            raise FaultInjected(
                f"injected decode fault at block #{self.decode_calls}"
            )
        return self._inner.decode_block(lines)

    def encode_block(self, records: Sequence[Any]) -> str:
        self.encode_calls += 1
        if self.encode_calls == self._fail_encode_at:
            raise FaultInjected(
                f"injected encode fault at block #{self.encode_calls}"
            )
        return self._inner.encode_block(records)
