"""Closed-form verification of the stable RS model solution (Section 3.6.1).

The paper checks that, for uniform input data (``data(x) = 1``, k1 = 1,
k2 = 1), the pair

    p(t) = t / 2
    m(x, t) = 2 - 2 (x - s(t))   for x >= s(t),   where s(t) = t/2 - floor(t/2)
             -2 (x - s(t))       for x <  s(t)

satisfies all four model equations and yields run length 2.  This
module evaluates those checks numerically on a grid, so the library's
implementation of the solution can be validated the way the paper
validates it by hand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable


def stable_p(t: float) -> float:
    """The stable output front p(t) = t / 2."""
    return t / 2.0


def _front_position(t: float) -> float:
    p = stable_p(t)
    return p - math.floor(p)


def stable_m(x: float, t: float) -> float:
    """The stable density m(x, t) of Section 3.6.1 (uniform input)."""
    if not 0.0 <= x < 1.0:
        raise ValueError(f"x must be in [0, 1), got {x}")
    s = _front_position(t)
    if x >= s:
        return 2.0 - 2.0 * x + 2.0 * s
    return -2.0 * x + 2.0 * s


@dataclass(slots=True)
class VerificationReport:
    """Maximum violation of each model equation on the test grid."""

    equation_3_9_speed: float  # |dp/dt - k1 / m(p, t)|
    equation_3_10_jump: float  # |limits of m across the front - (0, 2)|
    equation_3_11_inflow: float  # |dm/dt - data(x)|
    equation_3_12_memory: float  # |integral m dx - 1|

    def max_violation(self) -> float:
        return max(
            self.equation_3_9_speed,
            self.equation_3_10_jump,
            self.equation_3_11_inflow,
            self.equation_3_12_memory,
        )


def verify_stable_solution(
    times: int = 40,
    cells: int = 400,
    epsilon: float = 1e-6,
) -> VerificationReport:
    """Numerically check Equations 3.9-3.12 for the stable solution.

    Parameters
    ----------
    times:
        Number of time points sampled over two full runs.
    cells:
        Spatial grid for the memory integral.
    epsilon:
        Step used for the numeric derivatives and one-sided limits.
    """
    worst_speed = 0.0
    worst_jump = 0.0
    worst_inflow = 0.0
    worst_memory = 0.0

    for index in range(1, times + 1):
        t = 4.0 * index / times + 0.01  # avoid exact run boundaries

        # Equation 3.9: dp/dt = k1 / m(p - floor(p), t) with k1 = 1.
        dp_dt = (stable_p(t + epsilon) - stable_p(t - epsilon)) / (2 * epsilon)
        density_at_front = stable_m(_front_position(t), t)
        worst_speed = max(
            worst_speed, abs(dp_dt - 1.0 / density_at_front)
        )

        # Equation 3.10: m jumps from 2 (ahead of the front) to 0
        # (just behind it).
        front = _front_position(t)
        ahead = stable_m(min(front + epsilon, 1 - epsilon), t)
        behind = stable_m(max(front - epsilon, 0.0), t)
        worst_jump = max(
            worst_jump, abs(ahead - 2.0), abs(behind - 0.0)
        )

        # Equation 3.11: dm/dt = (k1/k2) data(x) = 1 away from the front.
        for x in (0.1, 0.35, 0.6, 0.85):
            span = 0.01
            if abs(x - front) < 3 * span:
                continue  # the derivative is undefined across the jump
            dm_dt = (stable_m(x, t + span) - stable_m(x, t - span)) / (2 * span)
            worst_inflow = max(worst_inflow, abs(dm_dt - 1.0))

        # Equation 3.12: the memory is exactly full at all times.
        dx = 1.0 / cells
        integral = sum(
            stable_m((i + 0.5) * dx, t) for i in range(cells)
        ) * dx
        worst_memory = max(worst_memory, abs(integral - 1.0))

    return VerificationReport(
        equation_3_9_speed=worst_speed,
        equation_3_10_jump=worst_jump,
        equation_3_11_inflow=worst_inflow,
        equation_3_12_memory=worst_memory,
    )


def stable_run_length() -> float:
    """Path integral of m along the front over one run (Section 3.6.1).

    With m(p(t), t) = 2 and p'(t) = 1/2 over a run of duration 2, the
    integral evaluates to 2: every run releases twice the memory.
    """
    steps = 10_000
    t0, t1 = 0.01, 2.01  # one full run
    dt = (t1 - t0) / steps
    total = 0.0
    for i in range(steps):
        t = t0 + (i + 0.5) * dt
        p_prime = (stable_p(t + 1e-6) - stable_p(t - 1e-6)) / 2e-6
        total += stable_m(_front_position(t), t) * p_prime * dt
    return total
