"""The differential model of replacement selection (Section 3.6).

The paper generalises Knuth's snowplow argument into a system of
equations over a memory-content density ``m(x, t)`` on the unit key
interval and an output front ``p(t)``:

* ``dp/dt = k1 / m(p(t) - floor(p(t)), t)``   (constant throughput k1),
* ``∂m/∂t = (k1 / k2) * data(x)``             (inflow follows the input
  distribution, k2 = ∫ data),
* ``m`` drops to 0 just behind the front     (records are released),
* ``∫ m(x, t) dx <= 1``                       (memory budget).

Between two passes of the front over a point ``x``, ``m(x, ·)`` grows
*linearly*, so its value is known in closed form from the last clearing
time; only ``p(t)`` needs numerical integration, done here with the
classic fourth-order Runge-Kutta scheme the paper uses.

The run length of run ``n`` is the path integral of ``m`` along the
front, which for constant throughput is simply ``k1 *`` (duration of the
run).  For uniform input the model converges to the stable solution
``m(x) = 2 - 2x`` at run starts and run length 2 (twice the memory),
reproducing Figure 3.8 and Knuth's classic result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True, slots=True)
class ModelRun:
    """Summary of one simulated run of the model."""

    index: int
    start_time: float
    end_time: float
    length: float  # records released, in units of total memory
    density_at_start: tuple  # m(x, t_start) sampled on the grid


class SnowplowModel:
    """Numerical solver for the Section 3.6 system.

    Parameters
    ----------
    data:
        Input key density ``data(x)`` on [0, 1); defaults to uniform.
    cells:
        Spatial grid resolution.
    k1:
        Throughput constant (records released per unit time, in units
        of total memory).
    initial_density:
        ``m(x, 0)``; defaults to uniform 1 (memory full of uniform
        data), the initial condition of Figure 3.8.
    """

    def __init__(
        self,
        data: Optional[Callable[[float], float]] = None,
        cells: int = 512,
        k1: float = 1.0,
        initial_density: Optional[Callable[[float], float]] = None,
    ) -> None:
        if cells < 8:
            raise ValueError(f"cells must be >= 8, got {cells}")
        self.cells = cells
        self.k1 = k1
        self._data = data if data is not None else (lambda x: 1.0)
        self._dx = 1.0 / cells
        xs = [(i + 0.5) * self._dx for i in range(cells)]
        self.grid = xs
        self._data_values = [max(0.0, self._data(x)) for x in xs]
        self.k2 = sum(self._data_values) * self._dx
        if self.k2 <= 0:
            raise ValueError("data(x) must have positive mass on [0, 1)")
        init = initial_density if initial_density is not None else (lambda x: 1.0)
        self._base = [max(0.0, init(x)) for x in xs]
        # Time each cell was last cleared by the front (None = never).
        self._cleared_at: List[Optional[float]] = [None] * cells

    # -- density bookkeeping ------------------------------------------------------

    def density(self, x: float, t: float) -> float:
        """Closed-form m(x, t) from the last clearing of the cell at x."""
        i = min(self.cells - 1, max(0, int(x / self._dx)))
        cleared = self._cleared_at[i]
        inflow_rate = (self.k1 / self.k2) * self._data_values[i]
        if cleared is None:
            return self._base[i] + inflow_rate * t
        return inflow_rate * (t - cleared)

    def density_profile(self, t: float) -> List[float]:
        """Sample m(x, t) over the whole grid."""
        return [self.density(x, t) for x in self.grid]

    def memory_usage(self, t: float) -> float:
        """∫ m(x, t) dx — should stay at 1 in the balanced regime."""
        return sum(self.density_profile(t)) * self._dx

    # -- integration -------------------------------------------------------------------

    def _dp_dt(self, p: float, t: float) -> float:
        density = self.density(p - math.floor(p), t)
        # A vanishing density means a jump discontinuity (the front
        # skips empty key ranges); cap the speed at one cell per step.
        floor_density = self.k1 * 1e-3
        return self.k1 / max(density, floor_density)

    def solve(self, num_runs: int = 4, dt: float = 1e-3) -> List[ModelRun]:
        """Integrate with RK4 until ``num_runs`` runs have completed.

        Returns one :class:`ModelRun` per completed run; the density
        snapshot of run ``n`` is taken at its start (the moments plotted
        in Figure 3.8).
        """
        if num_runs < 1:
            raise ValueError(f"num_runs must be >= 1, got {num_runs}")
        runs: List[ModelRun] = []
        t = 0.0
        p = 0.0
        run_start_t = 0.0
        snapshot = tuple(self.density_profile(0.0))
        max_steps = int(50 * num_runs / (self.k1 * dt)) + 10_000
        for _ in range(max_steps):
            # Classic RK4 on dp/dt = k1 / m(p mod 1, t).
            k1_ = self._dp_dt(p, t)
            k2_ = self._dp_dt(p + 0.5 * dt * k1_, t + 0.5 * dt)
            k3_ = self._dp_dt(p + 0.5 * dt * k2_, t + 0.5 * dt)
            k4_ = self._dp_dt(p + dt * k3_, t + dt)
            p_next = p + dt / 6.0 * (k1_ + 2 * k2_ + 2 * k3_ + k4_)
            t_next = t + dt
            self._clear_swept(p, p_next, t_next)
            if math.floor(p_next) > math.floor(p):
                index = len(runs)
                runs.append(
                    ModelRun(
                        index=index,
                        start_time=run_start_t,
                        end_time=t_next,
                        length=self.k1 * (t_next - run_start_t),
                        density_at_start=snapshot,
                    )
                )
                run_start_t = t_next
                snapshot = tuple(self.density_profile(t_next))
                if len(runs) >= num_runs:
                    return runs
            p, t = p_next, t_next
        raise RuntimeError(
            f"RK4 did not complete {num_runs} runs within {max_steps} steps"
        )

    def _clear_swept(self, p_old: float, p_new: float, t: float) -> None:
        """Mark cells the front passed during [p_old, p_new] as cleared."""
        start = int(p_old / self._dx)
        stop = int(p_new / self._dx)
        for k in range(start, stop):
            self._cleared_at[k % self.cells] = t


def stable_density(x: float) -> float:
    """The stable run-start density 2 - 2x of the uniform-input solution."""
    return 2.0 - 2.0 * x
