"""The snowplow differential model of RS (Section 3.6)."""

from repro.model.snowplow import ModelRun, SnowplowModel, stable_density
from repro.model.verification import (
    VerificationReport,
    stable_m,
    stable_p,
    stable_run_length,
    verify_stable_solution,
)

__all__ = [
    "ModelRun",
    "SnowplowModel",
    "VerificationReport",
    "stable_density",
    "stable_m",
    "stable_p",
    "stable_run_length",
    "verify_stable_solution",
]
