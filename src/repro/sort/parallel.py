"""Parallel partitioned external sort (DESIGN.md §8).

:class:`FileSpillSort` made the CLI pipeline O(memory) in space but it
still sorts on one core.  This module adds the classic shared-nothing
decomposition on top of it: the input stream is partitioned into
``workers`` shards (by hash or by sampled key ranges), each shard runs
the *entire* run-generation + spill + shard-local merge in its own
worker process, and the parent performs one final fan-in-bounded k-way
merge over the per-shard sorted files.  Because every shard's output is
itself sorted, the final merge is correct for any partitioning, and for
integer keys the merged stream is byte-identical to a serial sort of
the same input.

Memory is arbitrated, not multiplied: the workers share one
:class:`~repro.sort.memory_broker.MemoryBroker` budget hosted in a
manager process (:class:`~repro.sort.memory_broker.SharedMemoryBroker`),
so ``--workers 8 --memory 10000`` still uses ~10 000 records of sorting
memory in total.  Workers that cannot be granted their share
immediately wait in the broker's five-situation queue and are served
when a finishing worker releases.

Workers are spawn-safe: the only things crossing the process boundary
are a picklable :class:`~repro.core.config.GeneratorSpec`, file paths,
top-level encode/decode callables, and a broker proxy.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
import zlib
from bisect import bisect_right
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.config import GeneratorSpec
from repro.core.records import KeyOnlyRecord, RecordFormat
from repro.engine.block_io import BlockWriter, iter_records, open_run
from repro.engine.errors import SortError
from repro.engine.merge_reading import validate_reading
from repro.engine.spill_codec import validate_codec
from repro.merge.kway import MergeCounter, validate_merge_params
from repro.merge.merge_tree import DEFAULT_FAN_IN
from repro.sort.external import DEFAULT_CPU_OP_TIME, PhaseReport, SortReport
from repro.sort.memory_broker import (
    MemoryBroker,
    SharedMemoryBroker,
    WaitSituation,
)
from repro.sort.spill import (
    DEFAULT_BUFFER_RECORDS,
    FileSpillSort,
    SpilledRun,
    SpillSession,
    merge_spilled_runs,
    resolve_record_format,
)

#: Supported partitioning strategies.
PARTITION_STRATEGIES = ("hash", "range")

#: Smallest memory grant a worker will sort with.
MIN_WORKER_MEMORY = 2

#: Records sampled from the head of the stream to pick range cut points.
DEFAULT_SAMPLE_RECORDS = 8_192

#: 64-bit Fibonacci multiplier (golden-ratio hashing).
_FIB64 = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    The honest parallelism bound for sizing worker pools and for
    deciding whether a speedup assertion is even meaningful (the
    CPU-gated test and the scale benchmark both use this).
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def hash_shard(
    record: Any, workers: int, encode: Callable[[Any], str] = str
) -> int:
    """Deterministic shard index of ``record`` under hash partitioning.

    Numeric records use ``hash()`` (seed-independent for numbers; the
    Fibonacci multiply scrambles the small-int identity mapping that
    would otherwise turn consecutive keys into ``key % workers``
    patterns).  Key-only binary records (float spill) hash the float
    their key encodes, which reproduces the text path's shard
    assignment *record for record* — worker-local sorts are not
    stable, so equal keys with distinct spellings (``1e3`` vs
    ``1000.0``) only keep the text path's relative order if every
    worker sees exactly the same shard either way.  Everything else —
    strings, delimited-row tuples, tuple-shaped binary records —
    hashes ``crc32`` of its *encoded* line instead, because ``hash()``
    on text depends on ``PYTHONHASHSEED`` and would make shard sizes
    (and the ``shards=[...]`` report) differ on every invocation.
    (Tuple-shaped binary delimited records hash their payload — the
    encoded line — so they, too, shard exactly like the text path.)
    """
    if isinstance(record, (int, float)):
        h = hash(record)
    elif isinstance(record, KeyOnlyRecord):
        h = hash(record.value)
    else:
        h = zlib.crc32(encode(record).encode("utf-8"))
    return (((h * _FIB64) & _MASK64) >> 40) % workers


def range_cut_points(sample: Sequence[Any], workers: int) -> List[Any]:
    """``workers - 1`` ascending cut points from a sample of the input.

    Shard ``i`` receives the records in the ``[cut[i-1], cut[i])`` band
    (closed left, open right: :func:`bisect.bisect_right` sends a record
    equal to a cut point to the shard on its right), so per-shard
    outputs cover disjoint key ranges and the final merge degenerates
    to concatenation.  A skewed or tiny sample yields skewed shards —
    correctness never depends on the cuts, only balance does.
    """
    if workers < 2:
        return []
    ordered = sorted(sample)
    if not ordered:
        return []
    return [
        ordered[min(len(ordered) - 1, (len(ordered) * i) // workers)]
        for i in range(1, workers)
    ]


def _read_encoded(
    path: str,
    record_format: RecordFormat,
    buffer_records: int,
    checksum: bool = False,
    codec: str = "none",
) -> Iterator[Any]:
    """Stream the records of one newline-delimited partition file.

    Decoding happens block-at-a-time through the record format, so the
    worker's ingest loop pays one Python-level call per
    ``buffer_records`` records instead of one per line.  ``checksum``
    verifies the per-block headers the parent wrote (DESIGN.md §11),
    so a partition file corrupted between parent and worker fails
    loudly in the worker instead of poisoning its shard.

    Under a binary working format the partition files themselves are
    length-prefixed binary blocks (shard transfer never decodes), so
    the opener and reader both defer to the format's framing.
    """
    with open_run(path, "r", record_format, codec=codec) as handle:
        yield from iter_records(
            handle, record_format, buffer_records, checksum=checksum,
            codec=codec,
        )


def _acquire_memory(
    broker: Any, owner: str, want: int, poll: float, timeout: float
) -> int:
    """Block until the shared broker grants ``want`` records to ``owner``.

    The first attempt is one atomic grant-or-enqueue round-trip; after
    that the worker polls its own allocation, which the broker fills in
    priority order as finishing workers release their grants.  The
    ``timeout`` bounds the wait: if a sibling dies while holding its
    grant (OOM kill, signal) its release never runs, and an unbounded
    poll would hang the whole sort silently instead of failing.  The
    deadline restarts whenever the broker shows activity (a grant or
    release anywhere in the pool), so a busy pool with slow-but-alive
    siblings is not mistaken for a dead one — only a pool where nothing
    moves for ``timeout`` seconds fails.
    """
    granted = broker.request_or_enqueue(
        owner, want, WaitSituation.ABOUT_TO_START, maximum=want
    )
    deadline = time.monotonic() + timeout
    last_activity = broker.activity_count()
    while not granted:
        if time.monotonic() > deadline:
            raise RuntimeError(
                f"{owner}: no memory grant of {want} records within "
                f"{timeout:.0f}s of broker inactivity — a sibling worker "
                f"may have died while holding its grant"
            )
        time.sleep(poll)
        activity = broker.activity_count()
        if activity != last_activity:
            last_activity = activity
            deadline = time.monotonic() + timeout
        granted = broker.allocated_to(owner)
    return granted


@dataclass(frozen=True, slots=True)
class ShardTask:
    """Everything one worker process needs, in picklable form."""

    index: int
    partition_path: str
    output_path: str
    spec: GeneratorSpec
    fan_in: int
    buffer_records: int
    work_dir: str
    memory_request: int
    record_format: RecordFormat
    cpu_op_time: float
    poll_interval: float
    acquire_timeout: float
    #: Per-block checksums on partition, spill and shard files.
    checksum: bool = False
    #: Spill codec on partition, spill and shard files (DESIGN.md §15).
    codec: str = "none"
    #: Durable mode: fsync the shard output and leave a ``.ok``
    #: completion marker behind so a resumed parent can skip it.
    durable: bool = False
    #: Records the parent routed into this shard's partition file;
    #: the worker refuses to return a shard that lost any of them.
    expected_records: Optional[int] = None


@dataclass(slots=True)
class ShardResult:
    """What one worker sends back: its shard's report and accounting."""

    index: int
    output_path: str
    records: int
    granted_memory: int
    wait_time: float
    report: SortReport


def sort_shard(args: Tuple[ShardTask, Any]) -> ShardResult:
    """Worker entry point: fully sort one partition file.

    Top-level so the spawn start method can pickle it.  The worker
    acquires its memory grant from the shared broker, builds a private
    generator from the spec sized to that grant, streams the partition
    file through a :class:`FileSpillSort` into one sorted output file,
    and always releases its grant (re-granting waiters atomically).

    In durable mode the shard file is fsynced and a ``.ok`` completion
    marker (record count + CRC-32 of the intended bytes) is committed
    atomically afterwards, so a resumed parent re-sorts exactly the
    shards that lack a verifiable marker.
    """
    if os.environ.get("REPRO_FAULT_PLAN"):
        # Deterministic fault injection crosses the spawn boundary via
        # the environment; arm this worker's own counters.
        from repro.testing.faults import activate_from_env

        activate_from_env()
    task, broker = args
    owner = f"shard-{task.index}"
    waited = time.perf_counter()
    try:
        granted = _acquire_memory(
            broker, owner, task.memory_request, task.poll_interval,
            task.acquire_timeout,
        )
    except BaseException:
        # Sign off the broker even when the wait fails: the queued
        # request must be cancelled (and any grant that raced in
        # between the last poll and the raise released), or the pool
        # leaks memory to a worker that is about to exit.
        broker.release_and_regrant(owner)
        raise
    waited = time.perf_counter() - waited
    try:
        generator = task.spec.with_memory(granted).build()
        sorter = FileSpillSort(
            generator,
            fan_in=task.fan_in,
            buffer_records=task.buffer_records,
            tmp_dir=task.work_dir,
            record_format=task.record_format,
            checksum=task.checksum,
            cpu_op_time=task.cpu_op_time,
            spill_codec=task.codec,
        )
        length = sorter.sort_to_path(
            _read_encoded(
                task.partition_path, task.record_format,
                task.buffer_records, checksum=task.checksum,
                codec=task.codec,
            ),
            task.output_path,
            track_crc=task.durable,
            fsync=task.durable,
        )
        if (
            task.expected_records is not None
            and length != task.expected_records
        ):
            raise SortError(
                f"shard {task.index}: partition file "
                f"{task.partition_path!r} carried {task.expected_records} "
                f"records but {length} were sorted — partition data was "
                f"lost or corrupted in transit"
            )
        if task.durable:
            from repro.engine.resilience import MARKER_SUFFIX, write_marker

            write_marker(
                task.output_path + MARKER_SUFFIX,
                {"records": length, "crc32": sorter.last_output_crc},
            )
        # The partition file is fully consumed; free its disk before
        # the parent merge doubles the footprint.
        os.remove(task.partition_path)
        return ShardResult(
            task.index, task.output_path, length, granted, waited, sorter.report
        )
    finally:
        broker.release_and_regrant(owner)


class PartitionedSort:
    """Partition the input into shards and sort them in parallel.

    Parameters
    ----------
    spec:
        Recipe for each worker's run generator.  ``spec.memory`` is the
        *shared* budget for the whole sort unless ``total_memory``
        overrides it; each worker asks the broker for an equal share.
    workers:
        Number of shard processes (1 = serial in-process fallback that
        still goes through partitioning, for byte-identical plumbing).
    partition:
        "hash" (default; balanced for any distribution) or "range"
        (sampled cut points; shards cover disjoint key ranges).
    fan_in / buffer_records / tmp_dir / record_format / reading /
    cpu_op_time:
        As in :class:`FileSpillSort`; the format (or the legacy
        ``encode``/``decode`` top-level callables) must be picklable so
        the spawn start method can ship it to workers.  ``reading``
        selects the parent merge's real-file reading strategy.
    total_memory:
        Broker pool size in records (defaults to ``spec.memory``).
    mp_context:
        Multiprocessing start method ("spawn" by default — the only
        one that is safe everywhere and matches production forkservers).
    sample_records:
        Head-of-stream records buffered to choose range cut points.
    checksum:
        Per-block CRC-32 headers on partition, spill and shard files
        (DESIGN.md §11): corruption anywhere between parent and final
        merge fails loudly with file + offset.
    work_dir / resume / input_fingerprint:
        Durable mode (DESIGN.md §11): shards are sorted under a stable
        ``work_dir`` with fsync + atomic ``.ok`` completion markers,
        kept on failure, and ``resume=True`` skips every shard whose
        marker still verifies — a killed worker costs only its own
        shard, not the whole sort.  ``input_fingerprint`` ties the
        directory to one input (mismatch wipes and starts fresh).

    After a sort is fully consumed, :attr:`report` holds the combined
    :class:`SortReport`, :attr:`worker_reports` the per-shard reports
    in shard order, :attr:`cut_points` the sampled range boundaries
    (range partitioning only), and :attr:`partition_wall` /
    :attr:`merge_passes` / :attr:`max_resident_records` /
    :attr:`max_open_readers` describe the parent-side phases.
    """

    def __init__(
        self,
        spec: GeneratorSpec,
        workers: int,
        partition: str = "hash",
        fan_in: int = DEFAULT_FAN_IN,
        buffer_records: int = DEFAULT_BUFFER_RECORDS,
        tmp_dir: Optional[str] = None,
        encode: Optional[Callable[[Any], str]] = None,
        decode: Optional[Callable[[str], Any]] = None,
        record_format: Optional[RecordFormat] = None,
        reading: str = "naive",
        total_memory: Optional[int] = None,
        mp_context: str = "spawn",
        sample_records: int = DEFAULT_SAMPLE_RECORDS,
        checksum: bool = False,
        work_dir: Optional[str] = None,
        resume: bool = False,
        input_fingerprint: Optional[str] = None,
        cpu_op_time: float = DEFAULT_CPU_OP_TIME,
        poll_interval: float = 0.005,
        acquire_timeout: float = 600.0,
        spill_codec: str = "none",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if partition not in PARTITION_STRATEGIES:
            raise ValueError(
                f"partition must be one of {PARTITION_STRATEGIES}, "
                f"got {partition!r}"
            )
        validate_merge_params(fan_in, buffer_records)
        if sample_records < 1:
            raise ValueError(
                f"sample_records must be >= 1, got {sample_records}"
            )
        self.spec = spec
        self.workers = workers
        self.partition = partition
        self.fan_in = fan_in
        self.buffer_records = buffer_records
        self.tmp_dir = tmp_dir
        self.record_format = resolve_record_format(
            record_format, encode, decode
        )
        self.reading = validate_reading(reading)
        self.total_memory = total_memory if total_memory is not None else spec.memory
        if self.total_memory < MIN_WORKER_MEMORY:
            raise ValueError(
                f"total_memory must be >= {MIN_WORKER_MEMORY}, "
                f"got {self.total_memory}"
            )
        self.mp_context = mp_context
        self.sample_records = sample_records
        self.checksum = checksum
        #: Spill codec (DESIGN.md §15) on partition, worker-spill and
        #: shard files; the parent's final merge reads it back.
        self.spill_codec = validate_codec(spill_codec)
        self.work_dir = work_dir
        self.resume = resume
        self.input_fingerprint = input_fingerprint
        self.cpu_op_time = cpu_op_time
        self.poll_interval = poll_interval
        self.acquire_timeout = acquire_timeout
        #: Equal broker share each worker requests (all-or-nothing).
        self.memory_per_worker = max(
            MIN_WORKER_MEMORY, self.total_memory // workers
        )
        # -- filled in once a sort() is fully consumed --
        self.report: Optional[SortReport] = None
        self.worker_reports: List[SortReport] = []
        self.shard_records: List[int] = []
        self.granted_memories: List[int] = []
        self.cut_points: List[Any] = []
        self.partition_wall = 0.0
        self.merge_passes = 0
        self.max_resident_records = 0
        self.max_open_readers = 0
        #: Reading-strategy instrumentation of the parent's final merge.
        self.reading_stats = None
        #: Shards whose completion markers let a resume skip re-sorting.
        self.shards_reused = 0
        #: Records routed into each partition file by the last sort.
        self._partition_counts: List[Optional[int]] = [None] * workers
        #: (raw, disk) bytes the parent wrote into partition files.
        self._partition_bytes: Tuple[int, int] = (0, 0)

    # -- public API --------------------------------------------------------------

    def sort(self, records: Iterable[Any]) -> Iterator[Any]:
        """Lazily yield ``records`` in ascending order.

        Partitioning and the worker fan-out happen on the first
        ``next()``; the returned iterator then streams the parent-side
        merge of the per-shard sorted files.  Without a ``work_dir``
        all temporary files are removed even when the sort raises or
        is abandoned mid-stream; in durable mode a failed sort keeps
        the directory (sorted shards, completion markers, journal) so
        a ``resume`` re-sorts only what is missing, and only a fully
        consumed sort removes it.
        """
        durable = self.work_dir is not None
        if durable:
            from repro.engine.resilience import SortJournal

            # The journal is the compatibility gate: a manifest from a
            # different configuration or input wipes the directory so
            # stale shards can never be merged into fresh output.
            # Shard-level progress itself lives in the ``.ok`` markers
            # the workers commit (concurrency-free, crash-atomic).
            SortJournal.open_dir(
                self.work_dir, self._fingerprint(), self.resume
            ).close()
            work_dir = self.work_dir
        else:
            work_dir = tempfile.mkdtemp(prefix="repro-psort-", dir=self.tmp_dir)
        self.shards_reused = 0
        completed = False
        try:
            started = time.perf_counter()
            partition_paths = self._partition(records, work_dir)
            self.partition_wall = time.perf_counter() - started

            started = time.perf_counter()
            results = self._run_workers(partition_paths, work_dir, durable)
            workers_wall = time.perf_counter() - started

            report = self._combine_reports(results)
            report.run_phase.wall_time = self.partition_wall + workers_wall

            started = time.perf_counter()
            merge_dir = os.path.join(work_dir, "merge")
            os.makedirs(merge_dir, exist_ok=True)
            session = SpillSession(
                merge_dir, checksum=self.checksum, codec=self.spill_codec
            )
            counter = MergeCounter()
            runs = [
                SpilledRun(
                    session,
                    result.output_path,
                    result.records,
                    self.record_format,
                    self.buffer_records,
                    # Durable shard files must survive a failed final
                    # merge so the resume can reuse them; cleanup
                    # removes them with the directory on success.
                    keep=durable,
                )
                for result in results
            ]
            try:
                yield from merge_spilled_runs(
                    session,
                    runs,
                    counter,
                    self.record_format,
                    self.fan_in,
                    self.buffer_records,
                    self.reading,
                )
                merge_wall = time.perf_counter() - started

                report.merge_phase.cpu_ops += counter.cpu_ops
                report.merge_phase.cpu_time += (
                    counter.cpu_ops * self.cpu_op_time
                )
                report.merge_phase.wall_time = merge_wall
                completed = True
            finally:
                # Mirror FileSpillSort: instrumentation and the report
                # (run-phase stats at least) reflect the sort even when
                # the stream is abandoned mid-merge.
                report.spill_raw_bytes += session.spill_raw_bytes
                report.spill_disk_bytes += session.spill_disk_bytes
                self.report = report
                self.merge_passes = session.merge_passes
                self.reading_stats = session.reading_stats
                self.max_resident_records = session.max_resident_records
                self.max_open_readers = session.max_open_readers
        finally:
            if not durable or completed:
                shutil.rmtree(work_dir, ignore_errors=True)

    # -- internals -----------------------------------------------------------------

    def _fingerprint(self) -> dict:
        """Parameters a durable work directory must match to be resumed."""
        return {
            "mode": "parallel",
            "workers": self.workers,
            "partition": self.partition,
            "memory": self.spec.memory,
            "total_memory": self.total_memory,
            "fan_in": self.fan_in,
            "buffer_records": self.buffer_records,
            "checksum": self.checksum,
            "format": self.record_format.name,
            # Binary and text spill files are not mutually readable, so
            # a resume across an encoding switch must start fresh even
            # though every other knob matches.
            "encoding": (
                "binary" if getattr(self.record_format, "spill_binary", False)
                else "text"
            ),
            # Same rule for codecs: shard files written under one codec
            # are unreadable under another, so the codec is part of the
            # resume identity (no mixed-codec work dirs).
            "codec": self.spill_codec,
            "input": self.input_fingerprint,
        }

    def _partition(
        self, records: Iterable[Any], work_dir: str
    ) -> List[str]:
        """Route the input stream into one partition file per worker.

        This loop is the sort's sequential bottleneck, so it does no
        accounting — per-shard record counts come back from the workers.
        Writes are batched per shard, but the batches together never
        hold more than ``total_memory`` records: the parent's
        partitioning residency stays inside the same budget the
        workers share, instead of adding ``workers * buffer_records``
        of unaccounted memory on top.
        """
        paths = [
            os.path.join(work_dir, f"part-{i:03d}.txt")
            for i in range(self.workers)
        ]
        block_records = max(
            1, min(self.buffer_records, self.total_memory // self.workers)
        )
        shard_of, stream = self._shard_function(iter(records))
        handles: List[Any] = []
        try:
            for path in paths:
                handles.append(
                    open_run(
                        path, "w", self.record_format,
                        codec=self.spill_codec,
                    )
                )
            writers = [
                BlockWriter(
                    handle, self.record_format, block_records,
                    checksum=self.checksum, codec=self.spill_codec,
                )
                for handle in handles
            ]
            for record in stream:
                writers[shard_of(record)].write(record)
            for writer in writers:
                writer.flush()
            #: Per-shard routed counts; workers verify nothing was lost
            #: between the parent's writes and their reads.
            self._partition_counts = [writer.written for writer in writers]
            self._partition_bytes = (
                sum(writer.raw_bytes for writer in writers),
                sum(writer.disk_bytes for writer in writers),
            )
        finally:
            for handle in handles:
                handle.close()
        return paths

    def _shard_function(
        self, stream: Iterator[Any]
    ) -> Tuple[Callable[[Any], int], Iterator[Any]]:
        """Build the record -> shard map; returns (map, stream).

        For range partitioning the first ``sample_records`` records are
        buffered to pick cut points and then chained back in front of
        the remaining stream, so no record is lost and the input is
        still consumed exactly once.
        """
        if self.workers == 1:
            return (lambda record: 0), stream
        if self.partition == "hash":
            workers = self.workers
            encode = self.record_format.encode
            return (
                lambda record: hash_shard(record, workers, encode)
            ), stream
        sample: List[Any] = []
        for record in stream:
            sample.append(record)
            if len(sample) >= self.sample_records:
                break
        cuts = range_cut_points(sample, self.workers)
        self.cut_points = cuts

        def _replay(remainder: Iterator[Any]) -> Iterator[Any]:
            yield from sample
            yield from remainder

        return (lambda record: bisect_right(cuts, record)), _replay(stream)

    def _run_workers(
        self, partition_paths: List[str], work_dir: str, durable: bool
    ) -> List[ShardResult]:
        """Fan the shard tasks out to the worker pool; shard order kept.

        In durable mode, shards whose completion markers verify
        against their on-disk files are not re-sorted: their results
        are synthesised from the markers (``algorithm="REUSED"``,
        zero worker cost) and only the remaining shards go to the
        pool — a killed worker's shard is exactly what gets redone.
        """
        tasks = [
            ShardTask(
                index=i,
                partition_path=path,
                output_path=os.path.join(work_dir, f"shard-{i:03d}.sorted"),
                spec=self.spec,
                fan_in=self.fan_in,
                buffer_records=self.buffer_records,
                work_dir=work_dir,
                memory_request=self.memory_per_worker,
                record_format=self.record_format,
                cpu_op_time=self.cpu_op_time,
                poll_interval=self.poll_interval,
                acquire_timeout=self.acquire_timeout,
                checksum=self.checksum,
                codec=self.spill_codec,
                durable=durable,
                expected_records=self._partition_counts[i],
            )
            for i, path in enumerate(partition_paths)
        ]
        results: List[ShardResult] = []
        pending = tasks
        if durable:
            from repro.engine.resilience import (
                MARKER_SUFFIX,
                artifact_valid,
                read_marker,
            )

            pending = []
            for task in tasks:
                marker = read_marker(task.output_path + MARKER_SUFFIX)
                if (
                    marker is not None
                    and isinstance(marker.get("records"), int)
                    and artifact_valid(
                        task.output_path,
                        marker["records"],
                        marker.get("crc32", -1),
                    )
                ):
                    try:
                        os.remove(task.partition_path)
                    except OSError:
                        pass
                    results.append(
                        ShardResult(
                            index=task.index,
                            output_path=task.output_path,
                            records=marker["records"],
                            granted_memory=0,
                            wait_time=0.0,
                            report=SortReport(
                                algorithm="REUSED",
                                records=marker["records"],
                            ),
                        )
                    )
                else:
                    pending.append(task)
            self.shards_reused = len(results)
        if not pending:
            pass
        elif self.workers == 1 or len(pending) == 1:
            # Serial fallback: same worker code path, but against a
            # plain in-process broker — no manager process, no proxies.
            broker = MemoryBroker(self.total_memory)
            results.extend(sort_shard((task, broker)) for task in pending)
        else:
            with SharedMemoryBroker(
                self.total_memory, self.mp_context
            ) as broker:
                ctx = get_context(self.mp_context)
                with ctx.Pool(
                    processes=min(self.workers, len(pending))
                ) as pool:
                    results.extend(
                        pool.map(
                            sort_shard,
                            [(task, broker.proxy) for task in pending],
                        )
                    )
        results.sort(key=lambda result: result.index)
        self.worker_reports = [result.report for result in results]
        self.shard_records = [result.records for result in results]
        self.granted_memories = [result.granted_memory for result in results]
        return results

    def _combine_reports(self, results: List[ShardResult]) -> SortReport:
        """Aggregate per-shard reports into one combined SortReport.

        CPU ops add up across shards (total work); wall times do not
        (the shards overlap), so the phase wall times are measured on
        the parent side instead.
        """
        reports = [result.report for result in results]
        combined = SortReport(
            algorithm=(
                f"{self.spec.algorithm.upper()}"
                f"[{self.partition}:{self.workers}]"
            ),
            records=sum(r.records for r in reports),
            runs=sum(r.runs for r in reports),
            run_lengths=[n for r in reports for n in r.run_lengths],
        )
        run_ops = sum(r.run_phase.cpu_ops for r in reports)
        merge_ops = sum(r.merge_phase.cpu_ops for r in reports)
        combined.run_phase = PhaseReport(
            cpu_ops=run_ops, cpu_time=run_ops * self.cpu_op_time
        )
        combined.merge_phase = PhaseReport(
            cpu_ops=merge_ops, cpu_time=merge_ops * self.cpu_op_time
        )
        # Spill traffic: the parent's partition files plus every
        # worker's runs, intermediate merges and shard output.  The
        # parent-side final merge adds its own bytes when it finishes.
        part_raw, part_disk = self._partition_bytes
        combined.spill_raw_bytes = part_raw + sum(
            r.spill_raw_bytes for r in reports
        )
        combined.spill_disk_bytes = part_disk + sum(
            r.spill_disk_bytes for r in reports
        )
        return combined
