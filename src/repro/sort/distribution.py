"""Bucket sort and external distribution sort (Section 2.2).

The distribution paradigm partitions records into *buckets* with
pairwise disjoint value ranges, sorts each bucket independently, and
concatenates — no merge phase needed.  The external variant stores each
bucket in a (simulated) disk file and recurses when a bucket does not
fit in memory, falling back to an internal sort when it does.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.heaps.heapsort import heapsort
from repro.iosim.files import SimulatedFile, SimulatedFileSystem


def uniform_bucket_ranges(
    low: Any, high: Any, num_buckets: int
) -> List[tuple]:
    """Split ``[low, high]`` into ``num_buckets`` equal half-open ranges.

    The last range is closed so ``high`` itself lands in a bucket.
    """
    if num_buckets < 1:
        raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
    if high < low:
        raise ValueError(f"invalid range: low={low} > high={high}")
    width = (high - low) / num_buckets
    return [(low + i * width, low + (i + 1) * width) for i in range(num_buckets)]


def bucket_index(value: Any, low: Any, high: Any, num_buckets: int) -> int:
    """Index of the bucket holding ``value`` under the uniform split."""
    if high == low:
        return 0
    position = (value - low) / (high - low)
    return min(num_buckets - 1, max(0, int(position * num_buckets)))


def bucket_sort(
    records: Sequence[Any],
    num_buckets: int = 10,
    sort: Optional[Callable[[List[Any]], List[Any]]] = None,
) -> List[Any]:
    """In-memory bucket sort with a uniform value split (Figures 2.4-2.5)."""
    items = list(records)
    if len(items) <= 1:
        return items
    low, high = min(items), max(items)
    inner_sort = sort if sort is not None else heapsort
    buckets: List[List[Any]] = [[] for _ in range(num_buckets)]
    for value in items:
        buckets[bucket_index(value, low, high, num_buckets)].append(value)
    out: List[Any] = []
    for bucket in buckets:
        out.extend(inner_sort(bucket))
    return out


class ExternalDistributionSort:
    """External distribution sort over the simulated filesystem.

    Parameters
    ----------
    fs:
        Storage stack to charge.
    memory_capacity:
        Records that fit in memory; buckets below this are sorted
        internally, larger buckets recurse.
    num_buckets:
        Fan-out of each distribution step.
    max_depth:
        Safety bound on recursion for heavily clustered data (beyond
        it, buckets are sorted with the internal sort regardless).
    """

    def __init__(
        self,
        fs: Optional[SimulatedFileSystem] = None,
        memory_capacity: int = 1000,
        num_buckets: int = 10,
        max_depth: int = 8,
    ) -> None:
        if memory_capacity < 1:
            raise ValueError(
                f"memory_capacity must be >= 1, got {memory_capacity}"
            )
        if num_buckets < 2:
            raise ValueError(f"num_buckets must be >= 2, got {num_buckets}")
        self.fs = fs if fs is not None else SimulatedFileSystem()
        self.memory_capacity = memory_capacity
        self.num_buckets = num_buckets
        self.max_depth = max_depth
        self._next_id = 0

    def sort(self, records) -> SimulatedFile:
        """Sort ``records`` into a simulated file, charging all I/O."""
        staged = self._new_file("dsort-input")
        staged.extend(records)
        staged.close()
        out = self._new_file("dsort-output")
        self._sort_file(staged, out, depth=0)
        out.close()
        return out

    # -- internals -------------------------------------------------------------

    def _sort_file(self, source: SimulatedFile, out: SimulatedFile, depth: int) -> None:
        n = len(source)
        if n <= self.memory_capacity or depth >= self.max_depth:
            chunk = source.read_all()
            chunk.sort()
            out.extend(chunk)
            self.fs.delete(source.name)
            return
        # One streaming pass to find the value range.
        low: Optional[Any] = None
        high: Optional[Any] = None
        for value in source.records():
            if low is None or value < low:
                low = value
            if high is None or value > high:
                high = value
        if low == high:
            # All keys equal: already sorted.
            out.extend(source.records())
            self.fs.delete(source.name)
            return
        buckets = [self._new_file(f"bucket-d{depth}") for _ in range(self.num_buckets)]
        for value in source.records():
            index = bucket_index(value, low, high, self.num_buckets)
            buckets[index].append(value)
        for bucket in buckets:
            bucket.close()
        self.fs.delete(source.name)
        for bucket in buckets:
            if len(bucket) == 0:
                self.fs.delete(bucket.name)
                continue
            self._sort_file(bucket, out, depth + 1)

    def _new_file(self, prefix: str) -> SimulatedFile:
        name = f"{prefix}-{id(self)}-{self._next_id}"
        self._next_id += 1
        return self.fs.create(name, write_buffer_pages=2)
