"""External sorting pipelines: mergesort (Ch. 2, 6) and distribution sort."""

from repro.sort.distribution import (
    ExternalDistributionSort,
    bucket_index,
    bucket_sort,
    uniform_bucket_ranges,
)
from repro.sort.hierarchical import (
    HierarchicalSorter,
    TreeNode,
    parse,
    serialize,
)
from repro.sort.memory_broker import (
    ConcurrentSortSimulator,
    MemoryBroker,
    SharedMemoryBroker,
    SortJob,
    WaitSituation,
)
from repro.sort.parallel import (
    PARTITION_STRATEGIES,
    PartitionedSort,
    hash_shard,
    range_cut_points,
)
from repro.sort.spill import FileSpillSort, SpilledRun
from repro.sort.external import (
    DEFAULT_CPU_OP_TIME,
    ExternalSort,
    PhaseReport,
    SortReport,
)

__all__ = [
    "ConcurrentSortSimulator",
    "DEFAULT_CPU_OP_TIME",
    "FileSpillSort",
    "HierarchicalSorter",
    "MemoryBroker",
    "PARTITION_STRATEGIES",
    "PartitionedSort",
    "SharedMemoryBroker",
    "SortJob",
    "SpilledRun",
    "TreeNode",
    "WaitSituation",
    "hash_shard",
    "parse",
    "range_cut_points",
    "serialize",
    "ExternalDistributionSort",
    "ExternalSort",
    "PhaseReport",
    "SortReport",
    "bucket_index",
    "bucket_sort",
    "uniform_bucket_ranges",
]
