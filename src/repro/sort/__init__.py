"""External sorting pipelines: mergesort (Ch. 2, 6) and distribution sort."""

from repro.sort.distribution import (
    ExternalDistributionSort,
    bucket_index,
    bucket_sort,
    uniform_bucket_ranges,
)
from repro.sort.hierarchical import (
    HierarchicalSorter,
    TreeNode,
    parse,
    serialize,
)
from repro.sort.memory_broker import (
    ConcurrentSortSimulator,
    MemoryBroker,
    SortJob,
    WaitSituation,
)
from repro.sort.external import (
    DEFAULT_CPU_OP_TIME,
    ExternalSort,
    PhaseReport,
    SortReport,
)

__all__ = [
    "ConcurrentSortSimulator",
    "DEFAULT_CPU_OP_TIME",
    "HierarchicalSorter",
    "MemoryBroker",
    "SortJob",
    "TreeNode",
    "WaitSituation",
    "parse",
    "serialize",
    "ExternalDistributionSort",
    "ExternalSort",
    "PhaseReport",
    "SortReport",
    "bucket_index",
    "bucket_sort",
    "uniform_bucket_ranges",
]
