"""The complete external mergesort pipeline (Chapters 2 and 6).

Glues a run generator to the merge tree over the simulated storage
stack and reports the paper's two headline measurements per sort:

* **run time** — reading the input and writing the generated runs,
* **total time** — run time plus the merge phase.

Simulated time is ``disk_io_time + cpu_ops * cpu_op_time``; the I/O part
comes from the :class:`~repro.iosim.disk.DiskModel` clock and the CPU
part from the analytic comparison counts maintained by the generators
and the merge (DESIGN.md §3 explains the substitution for the paper's
wall-clock minutes).

2WRS runs are persisted as their four streams: the increasing streams
(1 and 3) as ordinary files, the decreasing streams (2 and 4) in the
backwards-written format of Appendix A, so the merge phase reads every
file forward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Optional, Sequence

from repro.core.two_way import TwoWayReplacementSelection
from repro.iosim.disk import DiskStats
from repro.iosim.files import SimulatedFile, SimulatedFileSystem
from repro.iosim.reverse_file import ReverseRunReader, ReverseRunWriter
from repro.merge.merge_tree import DEFAULT_FAN_IN, MergeTree
from repro.runs.base import RunGenerator

#: Simulated seconds per analytic CPU comparison/move.
DEFAULT_CPU_OP_TIME = 2e-8


@dataclass(slots=True)
class PhaseReport:
    """Timing and I/O of one pipeline phase.

    ``io_time``/``cpu_time`` are simulated seconds (DESIGN.md §3);
    ``wall_time`` is real elapsed seconds, filled only by backends that
    do real I/O (:class:`~repro.sort.spill.FileSpillSort`).
    """

    io_time: float = 0.0
    cpu_ops: int = 0
    cpu_time: float = 0.0
    wall_time: float = 0.0
    disk: Optional[DiskStats] = None

    @property
    def time(self) -> float:
        """Simulated seconds spent in this phase."""
        return self.io_time + self.cpu_time


@dataclass(slots=True)
class SortReport:
    """Result of one external sort."""

    algorithm: str
    records: int
    runs: int = 0
    run_lengths: List[int] = field(default_factory=list)
    run_phase: PhaseReport = field(default_factory=PhaseReport)
    merge_phase: PhaseReport = field(default_factory=PhaseReport)
    #: Spill traffic of the real-file backends (DESIGN.md §15):
    #: encoded record bytes before codec framing vs bytes actually
    #: written.  Both zero for in-memory and simulated sorts.
    spill_raw_bytes: int = 0
    spill_disk_bytes: int = 0

    @property
    def run_time(self) -> float:
        """Simulated seconds of the run-generation phase."""
        return self.run_phase.time

    @property
    def total_time(self) -> float:
        """Simulated seconds of the whole sort."""
        return self.run_phase.time + self.merge_phase.time

    @property
    def spill_ratio(self) -> float:
        """raw/on-disk spill ratio (>= 1 when the codec wins)."""
        if not self.spill_disk_bytes:
            return 1.0
        return self.spill_raw_bytes / self.spill_disk_bytes

    @property
    def average_run_length(self) -> float:
        if not self.run_lengths:
            return 0.0
        return sum(self.run_lengths) / len(self.run_lengths)

    def summary(self) -> str:
        """Human-readable multi-line report (the CLI's ``--report``)."""

        def phase_line(label: str, phase: PhaseReport) -> str:
            parts = [f"cpu_ops={phase.cpu_ops}"]
            if phase.wall_time:
                parts.append(f"wall={phase.wall_time:.3f}s")
            if phase.io_time:
                parts.append(f"sim_io={phase.io_time:.3f}s")
            if phase.cpu_time:
                parts.append(f"sim_cpu={phase.cpu_time:.4f}s")
            return f"  {label:<6}" + "  ".join(parts)

        lines = [
            f"{self.algorithm}: {self.records} records in {self.runs} runs "
            f"(avg {self.average_run_length:.0f} records)",
            phase_line("runs", self.run_phase),
            phase_line("merge", self.merge_phase),
        ]
        if self.spill_raw_bytes or self.spill_disk_bytes:
            lines.append(
                f"  spilled bytes raw={self.spill_raw_bytes}  "
                f"on_disk={self.spill_disk_bytes}  "
                f"ratio={self.spill_ratio:.2f}"
            )
        return "\n".join(lines)


class _ChainedRunSource:
    """Reads a 2WRS run: streams 4, 3, 2, 1 concatenated ascending."""

    def __init__(self, parts: Sequence[Any]) -> None:
        self._parts = list(parts)

    def records_buffered(self, buffer_pages: int) -> Iterator[Any]:
        for part in self._parts:
            yield from part.records_buffered(buffer_pages)

    def records(self) -> Iterator[Any]:
        return self.records_buffered(1)


class ExternalSort:
    """External mergesort over the simulated storage stack.

    Parameters
    ----------
    generator:
        Any :class:`~repro.runs.base.RunGenerator` (RS, LSS, 2WRS, ...).
    fs:
        Filesystem / disk to charge; a fresh one is created by default.
    fan_in:
        Merge fan-in (the paper's optimum 10 by default).
    merge_memory:
        Records of memory for the merge phase; defaults to the
        generator's memory so both phases obey the same budget.
    cpu_op_time:
        Simulated seconds per analytic CPU operation.
    """

    def __init__(
        self,
        generator: RunGenerator,
        fs: Optional[SimulatedFileSystem] = None,
        fan_in: int = DEFAULT_FAN_IN,
        merge_memory: Optional[int] = None,
        cpu_op_time: float = DEFAULT_CPU_OP_TIME,
    ) -> None:
        self.generator = generator
        self.fs = fs if fs is not None else SimulatedFileSystem()
        self.fan_in = fan_in
        self.merge_memory = (
            merge_memory if merge_memory is not None else generator.memory_capacity
        )
        self.cpu_op_time = cpu_op_time
        self._next_run_id = 0

    # -- public API --------------------------------------------------------------

    def sort(self, records: Iterable[Any]) -> tuple:
        """Sort ``records``; returns ``(sorted_file, report)``.

        The input is first staged to an (uncharged) input file, so the
        run phase pays for reading it exactly as the paper's setup reads
        its input from disk.
        """
        input_file = self._stage_input(records)
        report = SortReport(algorithm=self.generator.name, records=len(input_file))

        self.fs.disk.reset_stats()
        sources = self._generate_runs(input_file)
        stats = self.generator.stats
        report.runs = stats.runs_out
        report.run_lengths = list(stats.run_lengths)
        report.run_phase = PhaseReport(
            io_time=self.fs.disk.elapsed,
            cpu_ops=stats.cpu_ops,
            cpu_time=stats.cpu_ops * self.cpu_op_time,
            disk=self.fs.disk.stats.snapshot(),
        )

        self.fs.disk.reset_stats()
        tree = MergeTree(
            self.fs, fan_in=self.fan_in, memory_capacity=self.merge_memory
        )
        result = tree.merge(sources)
        report.merge_phase = PhaseReport(
            io_time=self.fs.disk.elapsed,
            cpu_ops=tree.counter.cpu_ops,
            cpu_time=tree.counter.cpu_ops * self.cpu_op_time,
            disk=self.fs.disk.stats.snapshot(),
        )
        return result, report

    # -- internals ------------------------------------------------------------------

    def _stage_input(self, records: Iterable[Any]) -> SimulatedFile:
        handle = self.fs.create(self._run_name(), write_buffer_pages=4)
        handle.extend(records)
        handle.close()
        self.fs.disk.reset_stats()
        return handle

    def _generate_runs(self, input_file: SimulatedFile) -> List[Any]:
        stream = input_file.records_buffered(buffer_pages=4)
        if isinstance(self.generator, TwoWayReplacementSelection):
            return [
                self._persist_two_way_run(run_streams)
                for run_streams in self.generator.generate_run_streams(stream)
            ]
        return [self._persist_run(run) for run in self.generator.generate_runs(stream)]

    def _persist_run(self, run: Sequence[Any]) -> SimulatedFile:
        handle = self.fs.create(self._run_name(), write_buffer_pages=4)
        handle.extend(run)
        handle.close()
        return handle

    def _persist_two_way_run(self, run_streams) -> _ChainedRunSource:
        """Write one 2WRS run to disk as two physical files.

        The decreasing BottomHeap output (stream 4) goes to an
        Appendix A backwards-written file so the merge reads it forward;
        the remaining streams — 3, reversed 2, 1, whose concatenation is
        ascending by the range-disjointness of the streams — share one
        ordinary file.  (The paper keeps four physical streams; at our
        reduced scale a run spans only a handful of pages, so the
        per-file fixed costs that are negligible in the paper's setting
        would dominate.  Coalescing the materialised streams preserves
        both the record order and the sequential read pattern; see
        DESIGN.md section 5.)
        """
        page_records = self.fs.disk.geometry.page_records
        parts: List[Any] = []
        if run_streams.stream4:
            pages = max(2, len(run_streams.stream4) // page_records + 2)
            writer = ReverseRunWriter(
                self.fs, self._run_name(), pages_per_file=pages
            )
            for record in run_streams.stream4:
                writer.append(record)
            writer.close()
            parts.append(ReverseRunReader(writer))
        ascending: List[Any] = list(run_streams.stream3)
        ascending.extend(reversed(run_streams.stream2))
        ascending.extend(run_streams.stream1)
        if ascending:
            handle = self.fs.create(self._run_name(), write_buffer_pages=4)
            handle.extend(ascending)
            handle.close()
            parts.append(handle)
        return _ChainedRunSource(parts)

    def _run_name(self) -> str:
        name = f"run-{id(self)}-{self._next_run_id}"
        self._next_run_id += 1
        return name
