"""Dynamic memory adjustment for concurrent external sorts (Section 3.7.3).

Zhang & Larson's policy: when several sort processes compete for a
shared memory pool, a broker decides who gets more memory and who
waits.  A waiting process occupies one of five *situations*; the policy
prioritises them 1 > 3 > 5 > 4 > 2:

1. about to start                  (give tiny sorts a chance to finish),
3. building the first run, above the minimum     (help it grow),
5. before an external merge step   (close to completion, holds memory),
4. in-buffer sorting later runs,
2. building the first run at the minimum memory  (cheap to keep waiting).

This module implements the broker and a cooperative round-robin
simulation of concurrent external sorts over the simulated disk, so the
paper's claim — dynamic adjustment beats static partitioning on
throughput — can be measured (see ``benchmarks/bench_ablation_memory.py``).
"""

from __future__ import annotations

import math
import multiprocessing
import threading
from dataclasses import dataclass, field
from enum import IntEnum
from multiprocessing.managers import BaseManager
from typing import Any, Dict, List, Optional, Sequence

from repro.runs.base import log_cost


class WaitSituation(IntEnum):
    """The five waiting situations of Zhang & Larson."""

    ABOUT_TO_START = 1
    FIRST_RUN_MINIMUM = 2
    FIRST_RUN_GROWING = 3
    LATER_RUNS = 4
    BEFORE_MERGE = 5


#: Grant order: situations served first when memory frees up.
PRIORITY_ORDER = (
    WaitSituation.ABOUT_TO_START,
    WaitSituation.FIRST_RUN_GROWING,
    WaitSituation.BEFORE_MERGE,
    WaitSituation.LATER_RUNS,
    WaitSituation.FIRST_RUN_MINIMUM,
)


class MemoryBroker:
    """A shared memory pool with prioritised waiting.

    All mutating methods are serialised behind an internal lock, so the
    accounting stays exact when the broker is hosted in a manager
    process (:class:`SharedMemoryBroker`) and hammered concurrently
    from several worker processes, each proxy call running in its own
    server thread.

    Parameters
    ----------
    total:
        Pool size in records.
    """

    def __init__(self, total: int) -> None:
        if total < 1:
            raise ValueError(f"total must be >= 1, got {total}")
        self.total = total
        self.allocated: Dict[Any, int] = {}
        self.peak_allocated = 0
        #: Bumped on every successful grant or release — lets waiters
        #: distinguish a busy pool from a dead one (see activity_count).
        self.activity = 0
        # (situation, order, owner, amount, maximum) — one entry per owner.
        self._waiting: List[tuple] = []
        self._order = 0
        #: Owners retired by cancel_owner(); they can never be granted
        #: again — a cancelled waiter has nobody left to release what
        #: it would be granted (the posthumous-grant budget leak).
        self._cancelled: set = set()
        self._lock = threading.RLock()

    @property
    def free(self) -> int:
        return self.total - sum(self.allocated.values())

    # Method twins of the properties: manager proxies expose only
    # callables, so remote callers cannot read ``free``/``allocated``.
    def free_records(self) -> int:
        """Unallocated records (proxy-callable twin of :attr:`free`)."""
        with self._lock:
            return self.free

    def allocated_to(self, owner: Any) -> int:
        """Records currently granted to ``owner``."""
        with self._lock:
            return self.allocated.get(owner, 0)

    def peak(self) -> int:
        """Largest total allocation ever observed (never > ``total``)."""
        with self._lock:
            return self.peak_allocated

    def activity_count(self) -> int:
        """Grants + releases so far — a liveness signal for waiters."""
        with self._lock:
            return self.activity

    def try_allocate(self, owner: Any, amount: int) -> bool:
        """Grant ``amount`` more records to ``owner`` if available.

        A cancelled owner is always refused: granting it would leak the
        records forever, because the canceller already walked away.
        """
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        with self._lock:
            if owner in self._cancelled:
                return False
            if amount > self.free:
                return False
            self.allocated[owner] = self.allocated.get(owner, 0) + amount
            self.activity += 1
            in_use = self.total - self.free
            if in_use > self.peak_allocated:
                self.peak_allocated = in_use
            return True

    def release(self, owner: Any, amount: Optional[int] = None) -> None:
        """Return memory to the pool (all of it when amount is None)."""
        with self._lock:
            held = self.allocated.get(owner, 0)
            release = held if amount is None else min(amount, held)
            if release:
                self.activity += 1
            remaining = held - release
            if remaining:
                self.allocated[owner] = remaining
            else:
                self.allocated.pop(owner, None)

    def enqueue(
        self,
        owner: Any,
        amount: int,
        situation: WaitSituation,
        maximum: Optional[int] = None,
    ) -> None:
        """Register a process waiting for memory in a given situation.

        Each owner holds at most one pending request: re-enqueueing
        updates the amount, situation, and cap in place while keeping
        the original FIFO stamp, so a starved process asking every
        quantum cannot stack requests and be granted several times
        over.  ``maximum`` caps the owner's *total* allocation — at
        grant time the request is clamped to ``maximum - allocated``
        and dropped when the owner is already at its cap.  Cancelled
        owners are never (re-)enqueued.
        """
        with self._lock:
            if owner in self._cancelled:
                return
            for i, (_, order, pending_owner, _, _) in enumerate(self._waiting):
                if pending_owner == owner:
                    self._waiting[i] = (situation, order, owner, amount, maximum)
                    return
            self._order += 1
            self._waiting.append(
                (situation, self._order, owner, amount, maximum)
            )

    def grant_waiting(self) -> List[Any]:
        """Serve waiting processes in priority order; return the granted.

        Entries whose owner was cancelled while enqueued are dropped,
        never granted: the cancelled job's thread is gone, so a
        posthumous grant could not be released by anyone and would
        shrink the pool for every later job.
        """
        granted: List[Any] = []
        remaining: List[tuple] = []
        with self._lock:
            # Priority: the PRIORITY_ORDER rank, then FIFO within a rank.
            rank = {situation: i for i, situation in enumerate(PRIORITY_ORDER)}
            self._waiting.sort(key=lambda w: (rank[w[0]], w[1]))
            for situation, order, owner, amount, maximum in self._waiting:
                if owner in self._cancelled:
                    continue  # retired while waiting; drop the request
                if maximum is not None:
                    amount = min(
                        amount, maximum - self.allocated.get(owner, 0)
                    )
                    if amount <= 0:
                        continue  # already at its cap; drop the request
                if self.try_allocate(owner, amount):
                    granted.append(owner)
                else:
                    remaining.append(
                        (situation, order, owner, amount, maximum)
                    )
            self._waiting = remaining
            return granted

    # -- atomic compound operations (one proxy round-trip each) ----------------

    def request_or_enqueue(
        self,
        owner: Any,
        amount: int,
        situation: WaitSituation = WaitSituation.ABOUT_TO_START,
        maximum: Optional[int] = None,
    ) -> int:
        """Grant ``amount`` now, or register ``owner`` as waiting.

        Returns the records granted (0 when the owner was enqueued
        instead, or was already at its cap).  Check-then-enqueue must be
        one atomic step for cross-process callers: split over two proxy
        calls, a release landing in between would be missed by
        everybody.  ``maximum`` caps the owner's *total* allocation,
        exactly as at :meth:`grant_waiting` time — the immediate-grant
        path must clamp against what the owner already holds or a
        re-requesting owner could be pushed past its cap.  A cancelled
        owner gets 0 and is not enqueued — the caller observed the
        cancellation race and must stop waiting.
        """
        with self._lock:
            if owner in self._cancelled:
                return 0
            if maximum is not None:
                amount = min(amount, maximum - self.allocated.get(owner, 0))
                if amount <= 0:
                    return 0  # already at its cap; nothing to wait for
            if self.try_allocate(owner, amount):
                return amount
            self.enqueue(owner, amount, situation, maximum)
            return 0

    def release_and_regrant(
        self, owner: Any, amount: Optional[int] = None
    ) -> List[Any]:
        """Release ``owner``'s memory and serve the wait queue with it.

        Returns the owners granted memory by the freed records.  Waiting
        workers poll :meth:`allocated_to`, so the release and the regrant
        must be one atomic step or a concurrent ``request_or_enqueue``
        could snatch the freed memory out of priority order.

        The owner is done with the pool, so any wait-queue entry of its
        own is cancelled first: a worker that gave up waiting (acquire
        timeout) must never be granted memory posthumously — nobody
        would ever release it.
        """
        with self._lock:
            self._waiting = [
                entry for entry in self._waiting if entry[2] != owner
            ]
            self.release(owner, amount)
            return self.grant_waiting()

    def cancel_owner(self, owner: Any) -> int:
        """Retire ``owner`` for good and recycle whatever it held.

        One atomic step: mark the owner cancelled (every later
        ``try_allocate``/``enqueue``/``request_or_enqueue`` refuses it),
        drop its wait-queue entry, release any records it already held,
        and regrant them to the survivors.  This is the job-cancellation
        path of the resident service: the cancelling thread races the
        grant path, and without the cancelled mark a release landing in
        between could still grant the dead waiter — leaking that budget
        until the broker dies.  Returns the records released.
        """
        with self._lock:
            self._cancelled.add(owner)
            self._waiting = [
                entry for entry in self._waiting if entry[2] != owner
            ]
            released = self.allocated.get(owner, 0)
            self.release(owner)
            self.grant_waiting()
            return released

    def is_cancelled(self, owner: Any) -> bool:
        """True when ``owner`` was retired by :meth:`cancel_owner`."""
        with self._lock:
            return owner in self._cancelled

    @property
    def waiting(self) -> List[Any]:
        with self._lock:
            return [owner for (_, _, owner, _, _) in self._waiting]


class _BrokerManager(BaseManager):
    """Manager subclass hosting :class:`MemoryBroker` instances."""


_BrokerManager.register("MemoryBroker", MemoryBroker)


class SharedMemoryBroker:
    """A :class:`MemoryBroker` shared across worker processes.

    The broker object lives in a dedicated manager process; this class
    hands out picklable proxies whose method calls execute remotely,
    one server thread per client.  Combined with the broker's internal
    lock this gives process-safe grant accounting: the pool can never
    be over-allocated no matter how many workers race, which
    ``tests/test_memory_broker.py`` asserts by hammering one pool from
    several processes and checking :meth:`MemoryBroker.peak`.

    Use as a context manager so the manager process is always reaped::

        with SharedMemoryBroker(total=10_000) as broker:
            pool.map(worker, [(broker.proxy, ...) for ...])

    Parameters
    ----------
    total:
        Pool size in records.
    mp_context:
        Start-method name for the manager process ("spawn" by default,
        matching the parallel sort's workers).
    """

    def __init__(self, total: int, mp_context: str = "spawn") -> None:
        if total < 1:
            raise ValueError(f"total must be >= 1, got {total}")
        self._manager: Optional[_BrokerManager] = None
        manager = _BrokerManager(ctx=multiprocessing.get_context(mp_context))
        manager.start()
        self._manager = manager
        try:
            #: Picklable proxy; pass it to worker processes.
            self.proxy = self._manager.MemoryBroker(total)
        except BaseException:
            # A failure between manager start and __enter__ (proxy
            # creation, a caller raising before its with-block) must
            # not orphan the manager process.
            self.shutdown()
            raise

    def shutdown(self) -> None:
        """Stop the manager process (idempotent; safe to call twice)."""
        manager, self._manager = self._manager, None
        if manager is None:
            return
        manager.shutdown()

    def __enter__(self) -> "SharedMemoryBroker":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()


@dataclass(slots=True)
class SortJob:
    """One external sort competing for pool memory."""

    name: str
    records: List[Any]
    minimum_memory: int = 64
    maximum_memory: int = 4_096
    # -- progress state --
    position: int = 0
    runs: List[int] = field(default_factory=list)  # run lengths
    finished_at: Optional[float] = None


class ConcurrentSortSimulator:
    """Round-robin simulation of concurrent sorts sharing a pool.

    Each job alternates between run generation (Load-Sort-Store over its
    current allocation — the in-buffer sort phase of Zhang & Larson's
    three-phase algorithm) and a final merge costed analytically.  Time
    advances with the analytic CPU/IO cost of each slice, so static and
    dynamic policies can be compared on completion times.

    Parameters
    ----------
    jobs:
        The competing sorts.
    total_memory:
        Pool size in records.
    dynamic:
        True = broker with the five-situation policy; False = static
        equal partitioning for the whole lifetime.
    slice_records:
        Records a job processes per scheduling quantum.
    time_per_op:
        Simulated seconds per analytic operation.
    """

    #: Analytic I/O cost per record per pass (reading + writing it),
    #: in the same op units as the CPU comparisons; dominates the
    #: per-pass cost exactly as disk traffic dominates a real merge.
    io_ops_per_record = 8

    def __init__(
        self,
        jobs: Sequence[SortJob],
        total_memory: int,
        dynamic: bool = True,
        slice_records: int = 512,
        time_per_op: float = 1e-6,
    ) -> None:
        if not jobs:
            raise ValueError("need at least one job")
        self.jobs = list(jobs)
        self.broker = MemoryBroker(total_memory)
        self.dynamic = dynamic
        self.slice_records = slice_records
        self.time_per_op = time_per_op
        self.clock = 0.0

    def run(self) -> Dict[str, float]:
        """Run all jobs to completion; return finish time per job."""
        if self.dynamic:
            self._grant_initial_dynamic()
        else:
            share = max(1, self.broker.total // len(self.jobs))
            for job in self.jobs:
                self.broker.try_allocate(job.name, share)

        active = list(self.jobs)
        while active:
            progressed = False
            for job in list(active):
                if self._step(job):
                    progressed = True
                if job.finished_at is not None:
                    active.remove(job)
                    self.broker.release(job.name)
                    if self.dynamic:
                        self.broker.grant_waiting()
            if not progressed and active:
                # Everyone is waiting: grant whatever is possible, then
                # top stalled jobs up to their minimums.  If neither
                # frees a job, no future iteration can either (memory
                # only moves through these two paths), so raise instead
                # of spinning forever on an undersized pool.
                self.broker.grant_waiting()
                for job in active:
                    deficit = job.minimum_memory - self._memory_of(job)
                    if deficit > 0:
                        self.broker.try_allocate(job.name, deficit)
                if all(
                    self._memory_of(job) < job.minimum_memory for job in active
                ):
                    minimums = {job.name: job.minimum_memory for job in active}
                    raise RuntimeError(
                        f"memory pool of {self.broker.total} records cannot "
                        f"satisfy the minimum memory of any waiting job "
                        f"(minimums: {minimums}); enlarge the pool or lower "
                        f"the job minimums"
                    )
        return {job.name: job.finished_at for job in self.jobs}

    # -- internals ---------------------------------------------------------------

    def _grant_initial_dynamic(self) -> None:
        for job in self.jobs:
            if not self.broker.try_allocate(job.name, job.minimum_memory):
                self.broker.enqueue(
                    job.name, job.minimum_memory, WaitSituation.ABOUT_TO_START
                )

    def _memory_of(self, job: SortJob) -> int:
        return self.broker.allocated.get(job.name, 0)

    def _step(self, job: SortJob) -> bool:
        """Advance one job by one quantum; True when it made progress."""
        memory = self._memory_of(job)
        if memory < job.minimum_memory:
            return False
        if job.position < len(job.records):
            return self._step_run_generation(job, memory)
        self._finish_with_merge(job, memory)
        return True

    def _step_run_generation(self, job: SortJob, memory: int) -> bool:
        # Opportunistically ask for more memory while building runs
        # (the first-run-growing situation of the policy).  The enqueue
        # carries the job's cap and the broker keeps one pending request
        # per owner, so a starved job re-asking every quantum can never
        # be granted past maximum_memory.
        if self.dynamic and memory < job.maximum_memory:
            want = min(job.maximum_memory - memory, memory)
            if want > 0 and not self.broker.try_allocate(job.name, want):
                self.broker.enqueue(
                    job.name,
                    want,
                    WaitSituation.FIRST_RUN_GROWING
                    if not job.runs
                    else WaitSituation.LATER_RUNS,
                    maximum=job.maximum_memory,
                )
            memory = self._memory_of(job)
        chunk = min(memory, len(job.records) - job.position)
        job.position += chunk
        job.runs.append(chunk)
        # Run formation is I/O-bound: cost ~ records moved, regardless
        # of the allocation; the allocation pays off in the merge.
        self.clock += chunk * self.io_ops_per_record * self.time_per_op
        return True

    def _finish_with_merge(self, job: SortJob, memory: int) -> None:
        # Analytic merge cost: passes * n * log2(fan_in), with fan-in
        # proportional to the merge memory (more memory = fewer passes).
        n = len(job.records)
        fan_in = max(2, memory // 64)
        passes = max(1, math.ceil(math.log(max(2, len(job.runs)), fan_in)))
        per_record = self.io_ops_per_record + log_cost(fan_in)
        self.clock += passes * n * per_record * self.time_per_op
        job.finished_at = self.clock
