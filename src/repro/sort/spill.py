"""Real-file spill backend for streaming external sorts (DESIGN.md §6).

The simulated pipeline (:mod:`repro.sort.external`) charges I/O to an
analytic disk clock; this module is its real-I/O twin for the CLI: runs
are spilled to newline-delimited temporary files *as the generator
produces them*, and the merge phase consumes them through lazy buffered
readers, ``fan_in`` at a time.  Peak resident memory is therefore
O(memory_capacity + fan_in * buffer_records) regardless of the input
size — the whole point of external sorting — where the previous CLI
path materialised every run and the merged output as Python lists.

The backend instruments its own laziness: :attr:`FileSpillSort.
max_resident_records` tracks the largest number of records ever held in
read buffers at once and :attr:`FileSpillSort.max_open_readers` the
widest concurrent reader fan-in, so tests can assert the bounded-memory
property instead of trusting it.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from itertools import islice
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from repro.merge.kway import MergeCounter, kway_merge, reduce_to_fan_in
from repro.merge.merge_tree import DEFAULT_FAN_IN
from repro.runs.base import RunGenerator
from repro.sort.external import DEFAULT_CPU_OP_TIME, PhaseReport, SortReport

#: Records decoded per read chunk of one run reader.
DEFAULT_BUFFER_RECORDS = 4096


class SpillSession:
    """Per-``sort()`` state: temp directory and laziness accounting.

    Each call to :meth:`FileSpillSort.sort` owns one session, so
    overlapping or abandoned sorts on the same backend never share a
    temp directory or cross-wire each other's instrumentation.
    """

    def __init__(self, work_dir: str) -> None:
        self.work_dir = work_dir
        self.next_spill_id = 0
        self.merge_passes = 0
        self.resident = 0
        self.open_readers = 0
        self.max_resident_records = 0
        self.max_open_readers = 0

    def spill_path(self) -> str:
        path = os.path.join(self.work_dir, f"run-{self.next_spill_id:06d}.txt")
        self.next_spill_id += 1
        return path

    def cleanup(self) -> None:
        shutil.rmtree(self.work_dir, ignore_errors=True)

    # -- laziness instrumentation ----------------------------------------------

    def buffer_grew(self, n: int) -> None:
        self.resident += n
        if self.resident > self.max_resident_records:
            self.max_resident_records = self.resident

    def buffer_shrank(self, n: int) -> None:
        self.resident -= n

    def reader_opened(self) -> None:
        self.open_readers += 1
        if self.open_readers > self.max_open_readers:
            self.max_open_readers = self.open_readers

    def reader_closed(self) -> None:
        self.open_readers -= 1


class SpilledRun:
    """One sorted run stored in a real temporary file.

    Records are one per line, written with the owning sort's ``encode``
    and read back with ``decode``.  :meth:`records` is a lazy reader
    that holds at most ``buffer_records`` decoded records at a time and
    deletes the file once it is fully consumed.
    """

    def __init__(
        self,
        session: SpillSession,
        path: str,
        length: int,
        decode: Callable[[str], Any] = int,
        buffer_records: int = DEFAULT_BUFFER_RECORDS,
    ) -> None:
        self._session = session
        self.path = path
        self.length = length
        self.decode = decode
        self.buffer_records = buffer_records

    def records(self) -> Iterator[Any]:
        """Yield the run's records in order, buffered and lazily."""
        session = self._session
        decode = self.decode
        chunk_records = self.buffer_records
        session.reader_opened()
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                while True:
                    # Strip the line terminator before decoding: int()
                    # happens to tolerate it, but a pluggable decoder
                    # (e.g. plain str for string keys) must get exactly
                    # what encode produced.
                    chunk = [
                        decode(line[:-1] if line.endswith("\n") else line)
                        for line in islice(handle, chunk_records)
                    ]
                    if not chunk:
                        break
                    session.buffer_grew(len(chunk))
                    try:
                        yield from chunk
                    finally:
                        session.buffer_shrank(len(chunk))
        finally:
            session.reader_closed()
        self.discard()

    def discard(self) -> None:
        """Delete the backing file (idempotent)."""
        try:
            os.remove(self.path)
        except OSError:
            pass


def merge_group_to_file(
    session: SpillSession,
    group: Sequence[SpilledRun],
    counter: MergeCounter,
    encode: Callable[[Any], str],
    decode: Callable[[str], Any],
    buffer_records: int,
) -> SpilledRun:
    """Merge one group of spilled runs into a new spilled run file.

    The merge_group callable of one intermediate pass (see
    :func:`repro.merge.kway.reduce_to_fan_in`), shared by the serial
    spill backend and the parallel partitioned sort's parent merge.
    """
    path = session.spill_path()
    length = 0
    with open(path, "w", encoding="utf-8") as out:
        for record in kway_merge([run.records() for run in group], counter):
            out.write(f"{encode(record)}\n")
            length += 1
    return SpilledRun(session, path, length, decode, buffer_records)


class FileSpillSort:
    """Streaming external sort over real temporary files.

    Parameters
    ----------
    generator:
        Any :class:`~repro.runs.base.RunGenerator`; each run it yields
        is written to its own temp file immediately and freed.
    fan_in:
        Maximum runs merged simultaneously; with more runs than this,
        intermediate merge passes write new spilled runs first.
    buffer_records:
        Decoded records each run reader holds at a time.
    tmp_dir:
        Parent directory for the per-sort temp directory (system
        default when None).
    encode / decode:
        Record <-> line serialisation (integers by default, matching
        the CLI's key format).
    cpu_op_time:
        Simulated seconds per analytic CPU op, for the report's
        ``cpu_time`` alongside the measured wall times.

    :attr:`report`, :attr:`merge_passes`, :attr:`max_resident_records`
    and :attr:`max_open_readers` describe the most recently *finished*
    sort (each ``sort()`` call keeps its own private state while
    running, so overlapping sorts do not interfere).
    """

    def __init__(
        self,
        generator: RunGenerator,
        fan_in: int = DEFAULT_FAN_IN,
        buffer_records: int = DEFAULT_BUFFER_RECORDS,
        tmp_dir: Optional[str] = None,
        encode: Callable[[Any], str] = str,
        decode: Callable[[str], Any] = int,
        cpu_op_time: float = DEFAULT_CPU_OP_TIME,
    ) -> None:
        if fan_in < 2:
            raise ValueError(f"fan_in must be >= 2, got {fan_in}")
        if buffer_records < 1:
            raise ValueError(
                f"buffer_records must be >= 1, got {buffer_records}"
            )
        self.generator = generator
        self.fan_in = fan_in
        self.buffer_records = buffer_records
        self.tmp_dir = tmp_dir
        self.encode = encode
        self.decode = decode
        self.cpu_op_time = cpu_op_time
        #: Final :class:`SortReport`; set once a sort is fully consumed.
        self.report: Optional[SortReport] = None
        #: Merge passes of the last sort (1 = single lazy merge).
        self.merge_passes = 0
        self.max_resident_records = 0
        self.max_open_readers = 0

    # -- public API --------------------------------------------------------------

    def sort(self, records: Iterable[Any]) -> Iterator[Any]:
        """Lazily yield ``records`` in ascending order.

        Runs are spilled to disk as they are generated; the returned
        iterator streams the merged output.  :attr:`report` holds the
        phase timings once the iterator is exhausted.  Abandoning the
        iterator mid-sort still removes all temporary files.
        """
        # Nothing between creating the temp directory and entering the
        # try: every later failure — run generation raising mid-stream,
        # a decode error during the merge, the caller abandoning the
        # iterator — must reach the finally and remove the directory.
        session = SpillSession(
            tempfile.mkdtemp(prefix="repro-sort-", dir=self.tmp_dir)
        )
        try:
            counter = MergeCounter()
            started = time.perf_counter()
            runs = [
                self._spill_run(session, run)
                for run in self.generator.generate_runs(records)
            ]
            run_wall = time.perf_counter() - started
            # Snapshot now: a later sort() on the same generator resets
            # its stats while this sort's merge is still streaming.
            stats = self.generator.stats
            report = SortReport(
                algorithm=self.generator.name,
                records=stats.records_in,
                runs=stats.runs_out,
                run_lengths=list(stats.run_lengths),
            )
            report.run_phase = PhaseReport(
                cpu_ops=stats.cpu_ops,
                cpu_time=stats.cpu_ops * self.cpu_op_time,
                wall_time=run_wall,
            )

            started = time.perf_counter()
            runs, extra_passes = reduce_to_fan_in(
                runs,
                self.fan_in,
                lambda group: self._merge_to_file(session, group, counter),
            )
            session.merge_passes = 1 + extra_passes
            yield from kway_merge([run.records() for run in runs], counter)
            merge_wall = time.perf_counter() - started

            report.merge_phase = PhaseReport(
                cpu_ops=counter.cpu_ops,
                cpu_time=counter.cpu_ops * self.cpu_op_time,
                wall_time=merge_wall,
            )
            self.report = report
        finally:
            self.merge_passes = session.merge_passes
            self.max_resident_records = session.max_resident_records
            self.max_open_readers = session.max_open_readers
            session.cleanup()

    def sort_to_path(self, records: Iterable[Any], path: str) -> int:
        """Sort ``records`` into the file at ``path``; return the length.

        Streaming write of the merged output — the parallel partitioned
        sort uses this inside worker processes to leave one fully
        sorted file per shard behind.
        """
        encode = self.encode
        length = 0
        with open(path, "w", encoding="utf-8") as out:
            for record in self.sort(records):
                out.write(f"{encode(record)}\n")
                length += 1
        return length

    # -- internals -----------------------------------------------------------------

    def _spill_run(
        self, session: SpillSession, run: Sequence[Any]
    ) -> SpilledRun:
        """Write one generated run to its own temp file."""
        path = session.spill_path()
        encode = self.encode
        with open(path, "w", encoding="utf-8") as out:
            out.writelines(f"{encode(record)}\n" for record in run)
        return SpilledRun(
            session, path, len(run), self.decode, self.buffer_records
        )

    def _merge_to_file(
        self,
        session: SpillSession,
        group: Sequence[SpilledRun],
        counter: MergeCounter,
    ) -> SpilledRun:
        """One intermediate merge pass node: group -> new spilled run."""
        return merge_group_to_file(
            session, group, counter,
            self.encode, self.decode, self.buffer_records,
        )
