"""Real-file spill backend for streaming external sorts (DESIGN.md §6).

The simulated pipeline (:mod:`repro.sort.external`) charges I/O to an
analytic disk clock; this module is its real-I/O twin for the CLI: runs
are spilled to newline-delimited temporary files *as the generator
produces them*, and the merge phase consumes them through lazy buffered
readers, ``fan_in`` at a time.  Peak resident memory is therefore
O(memory_capacity + fan_in * buffer_records) regardless of the input
size — the whole point of external sorting — where the previous CLI
path materialised every run and the merged output as Python lists.

Serialisation is delegated to a :class:`~repro.core.records.
RecordFormat` (DESIGN.md §9): spill files are written and read in
*blocks* of records through :mod:`repro.engine.block_io`, and the final
merge can read through any of the real-file reading strategies of
:mod:`repro.engine.merge_reading` (``naive`` by default — identical
behaviour to the seed).  The legacy ``encode=``/``decode=`` callable
pair is still accepted and wrapped in a
:class:`~repro.core.records.CallableFormat`.

The backend instruments its own laziness: :attr:`FileSpillSort.
max_resident_records` tracks the largest number of records ever held in
read buffers at once and :attr:`FileSpillSort.max_open_readers` the
widest concurrent reader fan-in, so tests can assert the bounded-memory
property instead of trusting it.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from repro.core.records import INT, CallableFormat, RecordFormat
from repro.engine.errors import SortError
from repro.engine.block_io import (
    BlockWriter,
    open_run,
    read_blocks,
    write_sequence,
)
from repro.engine.spill_codec import validate_codec
from repro.engine.merge_reading import (
    ReadingStats,
    open_reading,
    validate_reading,
)
from repro.merge.kway import (
    MergeCounter,
    kway_merge,
    reduce_to_fan_in,
    validate_merge_params,
)
from repro.merge.merge_tree import DEFAULT_FAN_IN
from repro.runs.base import RunGenerator
from repro.sort.external import DEFAULT_CPU_OP_TIME, PhaseReport, SortReport

#: Records decoded per read chunk of one run reader.
DEFAULT_BUFFER_RECORDS = 4096


def resolve_record_format(
    record_format: Optional[RecordFormat],
    encode: Optional[Callable[[Any], str]],
    decode: Optional[Callable[[str], Any]],
) -> RecordFormat:
    """One format from either the new or the legacy constructor shape.

    ``record_format`` wins; a legacy ``encode``/``decode`` pair (or a
    single half, completed with the integer default for the other) is
    wrapped in a :class:`CallableFormat`; neither means integers.
    """
    if record_format is not None:
        if encode is not None or decode is not None:
            raise ValueError(
                "pass either record_format or encode/decode, not both"
            )
        return record_format
    if encode is None and decode is None:
        return INT
    return CallableFormat(encode if encode is not None else str,
                          decode if decode is not None else int)


class SpillSession:
    """Per-``sort()`` state: temp directory and laziness accounting.

    Each call to :meth:`FileSpillSort.sort` owns one session, so
    overlapping or abandoned sorts on the same backend never share a
    temp directory or cross-wire each other's instrumentation.
    """

    def __init__(
        self, work_dir: str, checksum: bool = False, codec: str = "none"
    ) -> None:
        self.work_dir = work_dir
        #: Spill files written under this session carry per-block
        #: checksum headers (DESIGN.md §11); readers verify them.
        self.checksum = checksum
        #: Spill codec (DESIGN.md §15) for every run and intermediate
        #: merge file written under this session.
        self.codec = validate_codec(codec)
        self.next_spill_id = 0
        self.merge_passes = 0
        self.resident = 0
        self.open_readers = 0
        self.max_resident_records = 0
        self.max_open_readers = 0
        #: Spill traffic: encoded record bytes before codec framing vs
        #: bytes actually written (equal when the codec is "none").
        self.spill_raw_bytes = 0
        self.spill_disk_bytes = 0
        #: Final-pass reading instrumentation (set by merge_spilled_runs).
        self.reading_stats: Optional[ReadingStats] = None

    def spilled(self, raw_bytes: int, disk_bytes: int) -> None:
        """Record one spill write's byte accounting."""
        self.spill_raw_bytes += raw_bytes
        self.spill_disk_bytes += disk_bytes

    def spill_path(self) -> str:
        path = os.path.join(self.work_dir, f"run-{self.next_spill_id:06d}.txt")
        self.next_spill_id += 1
        return path

    def cleanup(self) -> None:
        shutil.rmtree(self.work_dir, ignore_errors=True)

    # -- laziness instrumentation ----------------------------------------------

    def buffer_grew(self, n: int) -> None:
        self.resident += n
        if self.resident > self.max_resident_records:
            self.max_resident_records = self.resident

    def buffer_shrank(self, n: int) -> None:
        self.resident -= n

    def reader_opened(self) -> None:
        self.open_readers += 1
        if self.open_readers > self.max_open_readers:
            self.max_open_readers = self.open_readers

    def reader_closed(self) -> None:
        self.open_readers -= 1


class SpilledRun:
    """One sorted run stored in a real temporary file.

    Records are one per line in the owning sort's
    :class:`RecordFormat`.  :meth:`records` is a lazy block-buffered
    reader that holds at most ``buffer_records`` decoded records at a
    time and deletes the file once it is fully consumed.
    """

    def __init__(
        self,
        session: SpillSession,
        path: str,
        length: int,
        record_format: RecordFormat = INT,
        buffer_records: int = DEFAULT_BUFFER_RECORDS,
        keep: bool = False,
        checksum: Optional[bool] = None,
        skip_blank: bool = False,
        binary: Optional[bool] = None,
        codec: Optional[str] = None,
    ) -> None:
        self._session = session
        self.path = path
        self.length = length
        self.record_format = record_format
        self.buffer_records = buffer_records
        #: Per-run framing override: caller-provided merge inputs are
        #: text files even when the engine's working format spills
        #: binary (its text-side codec decodes them); ``None`` defers
        #: to the format's ``spill_binary`` flag.
        self.binary = binary
        #: True for caller-owned files the merge must not delete
        #: (:meth:`SortEngine.merge_files` inputs) and for journaled
        #: durable runs, which only their resilience layer may delete.
        self.keep = keep
        #: Per-run override of the session's checksum mode: caller-
        #: provided merge inputs are plain files even when the session
        #: checksums its own intermediate spills.
        self._checksum = checksum
        #: Tolerate blank separator lines (caller-provided merge
        #: inputs, same contract as the CLI's input streams).  Spill
        #: files the sort writes itself never need it.
        self.skip_blank = skip_blank
        #: Per-run override of the session's spill codec: caller-
        #: provided merge inputs are uncompressed text even when the
        #: session compresses its own intermediate spills.
        self._codec = codec

    @property
    def checksum(self) -> bool:
        """Whether this run's file carries per-block checksum headers."""
        if self._checksum is not None:
            return self._checksum
        return self._session.checksum

    @property
    def codec(self) -> str:
        """The spill codec this run's file was written with."""
        if self._codec is not None:
            return self._codec
        return self._session.codec

    def records(self) -> Iterator[Any]:
        """Yield the run's records in order, buffered and lazily.

        A run whose file ends early — checksums can only vouch for the
        blocks that *are* there, not for silently missing ones — fails
        with a :class:`~repro.engine.errors.SortError` naming the file
        and both counts, instead of quietly merging a partial run.
        """
        session = self._session
        delivered = 0
        session.reader_opened()
        try:
            with open_run(
                self.path, "r", self.record_format, self.binary,
                codec=self.codec,
            ) as handle:
                for chunk in read_blocks(
                    handle, self.record_format, self.buffer_records,
                    checksum=self.checksum, skip_blank=self.skip_blank,
                    binary=self.binary, codec=self.codec,
                ):
                    delivered += len(chunk)
                    session.buffer_grew(len(chunk))
                    try:
                        yield from chunk
                    finally:
                        session.buffer_shrank(len(chunk))
        finally:
            session.reader_closed()
        if self.length and delivered != self.length:
            raise SortError(
                f"spilled run {self.path!r} delivered {delivered} records "
                f"but {self.length} were written — file was truncated or "
                f"lost blocks on disk"
            )
        self.discard()

    def discard(self) -> None:
        """Delete the backing file (idempotent; no-op for kept files)."""
        if self.keep:
            return
        try:
            os.remove(self.path)
        except OSError:
            pass


def merge_group_to_file(
    session: SpillSession,
    group: Sequence[SpilledRun],
    counter: MergeCounter,
    record_format: RecordFormat,
    buffer_records: int,
) -> SpilledRun:
    """Merge one group of spilled runs into a new spilled run file.

    The merge_group callable of one intermediate pass (see
    :func:`repro.merge.kway.reduce_to_fan_in`), shared by the serial
    spill backend, the parallel partitioned sort's parent merge, and
    the engine's file merge.
    """
    path = session.spill_path()
    with open_run(path, "w", record_format, codec=session.codec) as out:
        writer = BlockWriter(
            out, record_format, buffer_records, checksum=session.checksum,
            codec=session.codec,
        )
        writer.write_all(
            kway_merge([run.records() for run in group], counter)
        )
        writer.flush()
    session.spilled(writer.raw_bytes, writer.disk_bytes)
    return SpilledRun(
        session, path, writer.written, record_format, buffer_records
    )


def merge_spilled_runs(
    session: SpillSession,
    runs: Sequence[SpilledRun],
    counter: MergeCounter,
    record_format: RecordFormat,
    fan_in: int,
    buffer_records: int,
    reading: str = "naive",
    merge_group: Optional[Callable[[Sequence[SpilledRun]], SpilledRun]] = None,
) -> Iterator[Any]:
    """Reduce ``runs`` to ``fan_in`` and stream the final k-way merge.

    The shared merge tail of every real-file backend: intermediate
    passes (``merge_group``, :func:`merge_group_to_file` by default)
    write new spill files; the final merge reads through the named
    :mod:`~repro.engine.merge_reading` strategy.  ``session.
    merge_passes`` and ``session.reading_stats`` describe what happened
    once the stream is consumed.
    """
    if merge_group is None:
        def merge_group(group: Sequence[SpilledRun]) -> SpilledRun:
            return merge_group_to_file(
                session, group, counter, record_format, buffer_records
            )
    runs, extra_passes = reduce_to_fan_in(runs, fan_in, merge_group)
    session.merge_passes = 1 + extra_passes
    strategy = open_reading(
        reading, runs, record_format, buffer_records, session
    )
    session.reading_stats = strategy.stats
    try:
        yield from kway_merge(
            strategy.streams(), counter,
            fan_in=fan_in, buffer_records=buffer_records,
        )
    finally:
        strategy.close()


class FileSpillSort:
    """Streaming external sort over real temporary files.

    Parameters
    ----------
    generator:
        Any :class:`~repro.runs.base.RunGenerator`; each run it yields
        is written to its own temp file immediately and freed.
    fan_in:
        Maximum runs merged simultaneously; with more runs than this,
        intermediate merge passes write new spilled runs first.
    buffer_records:
        Decoded records each run reader holds at a time (also the
        block size of spill-file writes).
    tmp_dir:
        Parent directory for the per-sort temp directory (system
        default when None).
    record_format:
        Record <-> line serialisation and key extraction
        (:data:`~repro.core.records.INT` by default, matching the
        CLI's historical key format).  The legacy ``encode`` /
        ``decode`` callables are still accepted instead.
    reading:
        Merge reading strategy for the final pass (``naive`` /
        ``forecasting`` / ``double_buffering``; DESIGN.md §9).
    checksum:
        Write per-block CRC-32 headers into every spill file and
        verify them on read-back (DESIGN.md §11), so a torn or
        bit-flipped block fails the merge loudly with file + offset
        instead of silently merging garbage.
    cpu_op_time:
        Simulated seconds per analytic CPU op, for the report's
        ``cpu_time`` alongside the measured wall times.

    :attr:`report`, :attr:`merge_passes`, :attr:`max_resident_records`,
    :attr:`max_open_readers` and :attr:`reading_stats` describe the
    most recently *finished* sort (each ``sort()`` call keeps its own
    private state while running, so overlapping sorts do not
    interfere).
    """

    def __init__(
        self,
        generator: RunGenerator,
        fan_in: int = DEFAULT_FAN_IN,
        buffer_records: int = DEFAULT_BUFFER_RECORDS,
        tmp_dir: Optional[str] = None,
        encode: Optional[Callable[[Any], str]] = None,
        decode: Optional[Callable[[str], Any]] = None,
        record_format: Optional[RecordFormat] = None,
        reading: str = "naive",
        checksum: bool = False,
        cpu_op_time: float = DEFAULT_CPU_OP_TIME,
        spill_codec: str = "none",
    ) -> None:
        validate_merge_params(fan_in, buffer_records)
        self.generator = generator
        self.fan_in = fan_in
        self.buffer_records = buffer_records
        self.tmp_dir = tmp_dir
        self.record_format = resolve_record_format(
            record_format, encode, decode
        )
        self.reading = validate_reading(reading)
        self.checksum = checksum
        self.cpu_op_time = cpu_op_time
        #: Spill codec (DESIGN.md §15) for runs, intermediate merges
        #: and shard output files.  The final ``sort()`` stream is
        #: unaffected — codecs only change bytes at rest.
        self.spill_codec = validate_codec(spill_codec)
        #: CRC-32 of the bytes the last :meth:`sort_to_path` intended
        #: to write (set when ``track_crc=True``); shard completion
        #: markers record it so resume verification catches any
        #: divergence between intent and disk.
        self.last_output_crc: Optional[int] = None
        #: Final :class:`SortReport`; set once a sort is fully consumed.
        self.report: Optional[SortReport] = None
        #: Merge passes of the last sort (1 = single lazy merge).
        self.merge_passes = 0
        self.max_resident_records = 0
        self.max_open_readers = 0
        #: Reading-strategy instrumentation of the last final merge.
        self.reading_stats: Optional[ReadingStats] = None

    # -- legacy serialisation accessors ---------------------------------------

    @property
    def encode(self) -> Callable[[Any], str]:
        return self.record_format.encode

    @property
    def decode(self) -> Callable[[str], Any]:
        return self.record_format.decode

    # -- public API --------------------------------------------------------------

    def sort(self, records: Iterable[Any]) -> Iterator[Any]:
        """Lazily yield ``records`` in ascending order.

        Runs are spilled to disk as they are generated; the returned
        iterator streams the merged output.  :attr:`report` holds the
        phase timings once the iterator is exhausted.  Abandoning the
        iterator mid-sort still removes all temporary files.
        """
        # Nothing between creating the temp directory and entering the
        # try: every later failure — run generation raising mid-stream,
        # a decode error during the merge, the caller abandoning the
        # iterator — must reach the finally and remove the directory.
        session = SpillSession(
            tempfile.mkdtemp(prefix="repro-sort-", dir=self.tmp_dir),
            checksum=self.checksum,
            codec=self.spill_codec,
        )
        report = None
        try:
            counter = MergeCounter()
            started = time.perf_counter()
            runs = [
                self._spill_run(session, run)
                for run in self.generator.generate_runs(records)
            ]
            run_wall = time.perf_counter() - started
            # Snapshot now: a later sort() on the same generator resets
            # its stats while this sort's merge is still streaming.
            stats = self.generator.stats
            report = SortReport(
                algorithm=self.generator.name,
                records=stats.records_in,
                runs=stats.runs_out,
                run_lengths=list(stats.run_lengths),
            )
            report.run_phase = PhaseReport(
                cpu_ops=stats.cpu_ops,
                cpu_time=stats.cpu_ops * self.cpu_op_time,
                wall_time=run_wall,
            )

            started = time.perf_counter()
            yield from merge_spilled_runs(
                session,
                runs,
                counter,
                self.record_format,
                self.fan_in,
                self.buffer_records,
                self.reading,
                merge_group=lambda group: self._merge_to_file(
                    session, group, counter
                ),
            )
            merge_wall = time.perf_counter() - started

            report.merge_phase = PhaseReport(
                cpu_ops=counter.cpu_ops,
                cpu_time=counter.cpu_ops * self.cpu_op_time,
                wall_time=merge_wall,
            )
        finally:
            # Published even when the consumer abandons (or a fault
            # kills) the merge stream: a truncating caller like top-k
            # still sees the run-phase stats, with merge_phase zeroed.
            if report is not None:
                report.spill_raw_bytes = session.spill_raw_bytes
                report.spill_disk_bytes = session.spill_disk_bytes
                self.report = report
            self.reading_stats = session.reading_stats
            self.merge_passes = session.merge_passes
            self.max_resident_records = session.max_resident_records
            self.max_open_readers = session.max_open_readers
            session.cleanup()

    def sort_to_path(
        self,
        records: Iterable[Any],
        path: str,
        track_crc: bool = False,
        fsync: bool = False,
    ) -> int:
        """Sort ``records`` into the file at ``path``; return the length.

        Streaming block-buffered write of the merged output — the
        parallel partitioned sort uses this inside worker processes to
        leave one fully sorted file per shard behind.  ``track_crc``
        records the output's CRC-32 in :attr:`last_output_crc` and
        ``fsync`` forces the file to stable storage before returning —
        both required before a durable completion marker may be
        written for the file.
        """
        with open_run(
            path, "w", self.record_format, codec=self.spill_codec
        ) as out:
            writer = BlockWriter(
                out, self.record_format, self.buffer_records,
                checksum=self.checksum, track_crc=track_crc,
                codec=self.spill_codec,
            )
            writer.write_all(self.sort(records))
            writer.flush()
            if fsync:
                out.flush()
                os.fsync(out.fileno())
        self.last_output_crc = writer.file_crc if track_crc else None
        if self.report is not None:
            # The shard file is spill traffic too: the parent merge
            # reads it back exactly like a run.
            self.report.spill_raw_bytes += writer.raw_bytes
            self.report.spill_disk_bytes += writer.disk_bytes
        return writer.written

    # -- internals -----------------------------------------------------------------

    def _spill_run(
        self, session: SpillSession, run: Sequence[Any]
    ) -> SpilledRun:
        """Write one generated run to its own temp file, in blocks."""
        path = session.spill_path()
        write_sequence(
            path, run, self.record_format, self.buffer_records,
            checksum=self.checksum, codec=session.codec, session=session,
        )
        return SpilledRun(
            session, path, len(run), self.record_format, self.buffer_records
        )

    def _merge_to_file(
        self,
        session: SpillSession,
        group: Sequence[SpilledRun],
        counter: MergeCounter,
    ) -> SpilledRun:
        """One intermediate merge pass node: group -> new spilled run."""
        return merge_group_to_file(
            session, group, counter, self.record_format, self.buffer_records
        )
