"""Sorting hierarchical data (Koltsidas, Muller & Viglas; Section 3.7.4).

Hermes-style sorting of tree-structured (XML-like) data: the children
of every node must be ordered by key, recursively.  When a node's
children do not fit in memory, replacement selection generates sorted
runs of children which a k-way merge combines — the external-sorting
machinery of this library applied per tree level.

The module includes a minimal XML-ish serialisation so trees can be
round-tripped the way the original system streams documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

from repro.merge.kway import kway_merge
from repro.runs.replacement_selection import ReplacementSelection


@dataclass
class TreeNode:
    """A node of a hierarchical document."""

    key: Any
    data: Any = None
    children: List["TreeNode"] = field(default_factory=list)

    def add(self, child: "TreeNode") -> "TreeNode":
        self.children.append(child)
        return child

    def descendant_count(self) -> int:
        """Number of nodes in this subtree, excluding the node itself."""
        return sum(1 + child.descendant_count() for child in self.children)

    def is_sorted(self) -> bool:
        """True when every node's children are ordered by key."""
        keys = [child.key for child in self.children]
        if keys != sorted(keys):
            return False
        return all(child.is_sorted() for child in self.children)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeNode):
            return NotImplemented
        return (
            self.key == other.key
            and self.data == other.data
            and self.children == other.children
        )


class HierarchicalSorter:
    """Order the children of every node by key (Hermes' task).

    Parameters
    ----------
    memory_capacity:
        Children that fit in memory at once; larger sibling lists go
        through replacement selection + k-way merge, exactly as the
        original applies RS at each node.
    """

    def __init__(self, memory_capacity: int = 1_024) -> None:
        if memory_capacity < 1:
            raise ValueError(
                f"memory_capacity must be >= 1, got {memory_capacity}"
            )
        self.memory_capacity = memory_capacity
        #: Counters for tests/benchmarks.
        self.external_sorts = 0
        self.internal_sorts = 0

    def sort(self, root: TreeNode) -> TreeNode:
        """Return a new tree with every sibling list sorted by key."""
        sorted_children = [self.sort(child) for child in root.children]
        ordered = self._sort_siblings(sorted_children)
        return TreeNode(key=root.key, data=root.data, children=ordered)

    def _sort_siblings(self, children: List[TreeNode]) -> List[TreeNode]:
        if len(children) <= 1:
            return list(children)
        if len(children) <= self.memory_capacity:
            self.internal_sorts += 1
            return sorted(children, key=lambda node: node.key)
        # External path: RS over the sibling stream, then a k-way merge
        # of the generated runs (decorated to keep nodes attached).
        self.external_sorts += 1
        generator = ReplacementSelection(self.memory_capacity)
        decorated = ((child.key, index, child) for index, child in enumerate(children))
        runs = list(generator.generate_runs(decorated))
        merged = kway_merge(runs)
        return [node for (_, _, node) in merged]


# -- XML-ish serialisation ------------------------------------------------------


def serialize(node: TreeNode) -> str:
    """Render a tree as a nested tag string (keys as tag names)."""
    inner = "".join(serialize(child) for child in node.children)
    data = "" if node.data is None else str(node.data)
    return f"<{node.key}>{data}{inner}</{node.key}>"


def parse(text: str) -> TreeNode:
    """Parse the output of :func:`serialize` back into a tree."""
    tokens = _tokenize(text)
    root, position = _parse_node(tokens, 0)
    if position != len(tokens):
        raise ValueError(f"trailing content after the root element: {tokens[position:]}")
    return root


def _tokenize(text: str) -> List[tuple]:
    tokens: List[tuple] = []
    i = 0
    while i < len(text):
        if text[i] == "<":
            end = text.index(">", i)
            tag = text[i + 1 : end]
            if tag.startswith("/"):
                tokens.append(("close", tag[1:]))
            else:
                tokens.append(("open", tag))
            i = end + 1
        else:
            next_tag = text.index("<", i)
            tokens.append(("text", text[i:next_tag]))
            i = next_tag
    return tokens


def _parse_node(tokens: List[tuple], position: int) -> tuple:
    kind, tag = tokens[position]
    if kind != "open":
        raise ValueError(f"expected an opening tag, got {tokens[position]}")
    key: Any = int(tag) if tag.lstrip("-").isdigit() else tag
    node = TreeNode(key=key)
    position += 1
    while position < len(tokens):
        kind, value = tokens[position]
        if kind == "text":
            node.data = value
            position += 1
        elif kind == "open":
            child, position = _parse_node(tokens, position)
            node.children.append(child)
        else:  # close
            if value != tag:
                raise ValueError(f"mismatched tags <{tag}> vs </{value}>")
            return node, position + 1
    raise ValueError(f"unterminated element <{tag}>")
