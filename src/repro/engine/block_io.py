"""Batched block readers and writers over newline-delimited files.

The seed's hot loops touched files one record at a time: an f-string
``write()`` per record on the way out, a ``decode(line)`` call per line
on the way back in.  This module batches both directions through
:class:`~repro.core.records.RecordFormat` block codecs, so a sort
moves ``block_records`` records per Python-level file operation — the
built-in formats decode a whole block with one C-level ``map``.

``benchmarks/bench_block_io.py`` measures the difference against the
line-at-a-time baseline and records it in ``BENCH_blockio.json``.

Two resilience hooks live here as well (DESIGN.md §11):

* **Per-block checksums** — with ``checksum=True`` every encoded block
  is preceded by a one-line header carrying its record count and the
  CRC-32 of its encoded bytes.  :func:`read_blocks` verifies each block
  against its header and raises :class:`~repro.engine.errors.
  CorruptBlockError` naming the file, block index and byte offset when
  a block is torn, truncated or bit-flipped, instead of silently
  merging garbage.
* **The ``open_text`` seam** — every spill/shard/partition file in the
  real-file backends is opened through :func:`open_text`, which routes
  the fresh handle through an installable wrapper.  The deterministic
  fault-injection harness (:mod:`repro.testing.faults`) uses it to
  place exceptions, short writes and bit flips at exact block-I/O
  calls without patching any backend.
"""

from __future__ import annotations

import os
import zlib
from collections.abc import Sequence
from itertools import islice
from typing import Any, Callable, Iterable, Iterator, List, Optional, TextIO, Tuple

from repro.core.records import RecordFormat
from repro.engine.errors import CorruptBlockError

#: Records moved per encode/decode batch by default.  Also the default
#: merge read-buffer size (one buffer holds one block).
DEFAULT_BLOCK_RECORDS = 4096

#: Leading token of a per-block checksum header line.
BLOCK_HEADER_PREFIX = "#repro:blk"

#: Installed by :func:`set_io_wrapper`; wraps every handle that
#: :func:`open_text` returns.  ``None`` = no wrapping (production).
_IO_WRAPPER: Optional[Callable[[TextIO, str, str], TextIO]] = None


def set_io_wrapper(
    wrapper: Optional[Callable[[TextIO, str, str], TextIO]]
) -> None:
    """Install (or clear, with None) the global block-I/O file wrapper.

    The wrapper receives ``(handle, path, mode)`` for every file opened
    through :func:`open_text` and must return a file-like object.  Only
    the fault-injection harness installs one; see
    :func:`repro.testing.faults.activate`.
    """
    global _IO_WRAPPER
    _IO_WRAPPER = wrapper


def open_text(path: str, mode: str = "r") -> TextIO:
    """Open a block-I/O file, routing through the installed wrapper.

    Every real-file backend opens its spill runs, shard files and
    partition files through this one seam, so a single installed
    wrapper observes (and can fault) every block-level read and write
    in the pipeline.
    """
    handle = open(path, mode, encoding="utf-8")
    wrapper = _IO_WRAPPER
    if wrapper is None:
        return handle
    try:
        return wrapper(handle, path, mode)
    except BaseException:
        handle.close()
        raise


def validate_block_records(block_records: int) -> int:
    """Clear error for a nonsensical block size (satellite guard)."""
    if block_records < 1:
        raise ValueError(
            f"block_records must be >= 1, got {block_records}"
        )
    return block_records


def block_header(record_count: int, crc: int) -> str:
    """The checksum header line preceding one encoded block."""
    return f"{BLOCK_HEADER_PREFIX} {record_count} {crc:08x}\n"


def _parse_block_header(
    line: str, path: str, index: int, offset: int
) -> Tuple[int, int]:
    parts = line.split()
    if (
        len(parts) != 3
        or parts[0] != BLOCK_HEADER_PREFIX
        or not parts[1].isdigit()
    ):
        raise CorruptBlockError(
            path, index, offset,
            f"bad or missing block header {line.rstrip()!r} — file is "
            f"torn or was not written with checksums",
        )
    try:
        crc = int(parts[2], 16)
    except ValueError:
        raise CorruptBlockError(
            path, index, offset,
            f"unparseable block checksum {parts[2]!r}",
        ) from None
    return int(parts[1]), crc


def _read_checksummed_blocks(
    handle: TextIO, fmt: RecordFormat
) -> Iterator[List[Any]]:
    """Verify-and-decode loop over a checksummed block file.

    Block sizes are self-describing (each header carries its record
    count), so the caller's ``block_records`` does not apply: blocks
    come back exactly as written.
    """
    path = getattr(handle, "name", "<stream>")
    offset = 0
    index = 0
    while True:
        header = next(handle, None)
        if header is None:
            return
        declared, want_crc = _parse_block_header(header, path, index, offset)
        lines = list(islice(handle, declared))
        text = "".join(lines)
        data = text.encode("utf-8")
        if len(lines) < declared:
            raise CorruptBlockError(
                path, index, offset,
                f"truncated block: header declares {declared} records, "
                f"file ends after {len(lines)}",
            )
        got_crc = zlib.crc32(data)
        if got_crc != want_crc:
            raise CorruptBlockError(
                path, index, offset,
                f"checksum mismatch: header says {want_crc:08x}, block "
                f"bytes hash to {got_crc:08x} — block was corrupted on "
                f"disk or torn mid-write",
            )
        offset += len(header.encode("utf-8")) + len(data)
        index += 1
        yield fmt.decode_block(lines)


def read_blocks(
    handle: TextIO,
    fmt: RecordFormat,
    block_records: int = DEFAULT_BLOCK_RECORDS,
    checksum: bool = False,
    skip_blank: bool = False,
) -> Iterator[List[Any]]:
    """Yield decoded blocks of exactly ``block_records`` records (last
    block may be short).

    Block boundaries are deterministic (``islice`` over lines), so
    buffering instrumentation and tests see stable block sizes
    regardless of record byte lengths.

    ``skip_blank=True`` drops whitespace-only lines before decoding —
    the CLI's historical blank-line tolerance for caller-provided
    files (``repro merge`` inputs); the caller is responsible for only
    requesting it when ``fmt.blank_input_skippable`` holds.

    With ``checksum=True`` the file must carry per-block headers
    (written by a checksumming :class:`BlockWriter`); every block is
    verified against its header and a corrupt, torn or truncated block
    raises :class:`~repro.engine.errors.CorruptBlockError` with the
    file, block index and byte offset.  Checksummed blocks come back
    in their *written* sizes — the headers are authoritative, and
    blank tolerance never applies (such files are machine-written).
    """
    validate_block_records(block_records)
    if checksum:
        yield from _read_checksummed_blocks(handle, fmt)
        return
    while True:
        lines = list(islice(handle, block_records))
        if not lines:
            return
        if skip_blank:
            lines = [line for line in lines if line.strip()]
            if not lines:
                continue
        yield fmt.decode_block(lines)


def iter_records(
    handle: TextIO,
    fmt: RecordFormat,
    block_records: int = DEFAULT_BLOCK_RECORDS,
    skip_blank: bool = False,
    checksum: bool = False,
) -> Iterator[Any]:
    """Stream individual records, decoded block-at-a-time.

    ``skip_blank`` requests the CLI's historical input tolerance
    (trailing newlines, blank separator lines); it only takes effect
    for formats whose records cannot be whitespace
    (``fmt.blank_input_skippable`` — the numeric formats).  For text
    formats a blank or whitespace-only line *is* a record, so nothing
    is dropped and the output agrees with ``sort(1)`` line for line.
    Spill and shard files, which the sort writes itself, never need
    the tolerance.

    ``checksum`` reads a per-block-checksummed file (see
    :func:`read_blocks`); blank-line tolerance never applies there
    because such files are always machine-written.
    """
    validate_block_records(block_records)
    if checksum:
        for block in _read_checksummed_blocks(handle, fmt):
            yield from block
        return
    for block in read_blocks(
        handle, fmt, block_records,
        skip_blank=skip_blank and fmt.blank_input_skippable,
    ):
        yield from block


class BlockWriter:
    """Buffered record writer: one ``write()`` per encoded block.

    Not a context manager on purpose — it never owns the handle; the
    caller must invoke :meth:`flush` before closing the file (or use
    :func:`write_records`, which does).

    ``checksum=True`` prefixes every flushed block with a header line
    carrying the block's record count and CRC-32, so readers can
    detect torn and bit-flipped blocks (:func:`read_blocks` with
    ``checksum=True``).  ``track_crc=True`` additionally maintains
    :attr:`file_crc` — the running CRC-32 of every byte written so far
    — which the resilience journal records per finished run so a
    resumed sort can verify survivors without trusting them.  Both
    default off: the extra UTF-8 encode per block is only paid when a
    durability feature asks for it.
    """

    def __init__(
        self,
        handle: TextIO,
        fmt: RecordFormat,
        block_records: int = DEFAULT_BLOCK_RECORDS,
        checksum: bool = False,
        track_crc: bool = False,
    ) -> None:
        validate_block_records(block_records)
        self._handle = handle
        self._fmt = fmt
        self._block_records = block_records
        self._checksum = checksum
        self._track_crc = track_crc or checksum
        self._pending: List[Any] = []
        #: Total records written (including still-buffered ones).
        self.written = 0
        #: Running CRC-32 of all bytes written (when tracking is on).
        self.file_crc = 0

    def write(self, record: Any) -> None:
        self._pending.append(record)
        self.written += 1
        if len(self._pending) >= self._block_records:
            self.flush()

    def write_all(self, records: Iterable[Any]) -> int:
        """Write every record of a stream; returns how many."""
        before = self.written
        pending = self._pending
        block_records = self._block_records
        for record in records:
            pending.append(record)
            self.written += 1
            if len(pending) >= block_records:
                self.flush()
        return self.written - before

    def flush(self) -> None:
        if not self._pending:
            return
        text = self._fmt.encode_block(self._pending)
        if self._track_crc:
            data = text.encode("utf-8")
            block_crc = zlib.crc32(data)
            if self._checksum:
                header = block_header(len(self._pending), block_crc)
                self._handle.write(header)
                self.file_crc = zlib.crc32(
                    header.encode("utf-8"), self.file_crc
                )
            self.file_crc = zlib.crc32(data, self.file_crc)
        self._handle.write(text)
        # Cleared in place: write_all holds a local alias.
        self._pending.clear()


def write_sequence(
    path: str,
    records: Iterable[Any],
    fmt: RecordFormat,
    block_records: int = DEFAULT_BLOCK_RECORDS,
    checksum: bool = False,
) -> int:
    """Write a whole record source to ``path`` in blocks; returns length.

    A materialised sequence (e.g. one generated run — the spill-file
    fast path) is sliced directly into encode batches; any other
    iterable (or any checksummed write) streams through a
    :class:`BlockWriter`.
    """
    validate_block_records(block_records)
    with open_text(path, "w") as handle:
        if isinstance(records, Sequence) and not checksum:
            encode_block = fmt.encode_block
            for start in range(0, len(records), block_records):
                handle.write(
                    encode_block(records[start : start + block_records])
                )
            return len(records)
        writer = BlockWriter(handle, fmt, block_records, checksum=checksum)
        writer.write_all(records)
        writer.flush()
    return writer.written


def write_block_file(
    path: str,
    records: Iterable[Any],
    fmt: RecordFormat,
    block_records: int = DEFAULT_BLOCK_RECORDS,
    checksum: bool = False,
    fsync: bool = False,
) -> Tuple[int, int]:
    """Durable single-file write; returns ``(record_count, file_crc32)``.

    The resilience layer's write primitive: the CRC covers every byte
    the writer produced (headers included) *before* the operating
    system or an injected fault had a chance to mangle them, so the
    journal entry describes the intended file and a later verification
    pass catches any divergence.  ``fsync=True`` flushes the file to
    stable storage before returning — a journaled run must never
    outlive its data.
    """
    validate_block_records(block_records)
    with open_text(path, "w") as handle:
        writer = BlockWriter(
            handle, fmt, block_records, checksum=checksum, track_crc=True
        )
        writer.write_all(records)
        writer.flush()
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
    return writer.written, writer.file_crc
