"""Batched block readers and writers over newline-delimited files.

The seed's hot loops touched files one record at a time: an f-string
``write()`` per record on the way out, a ``decode(line)`` call per line
on the way back in.  This module batches both directions through
:class:`~repro.core.records.RecordFormat` block codecs, so a sort
moves ``block_records`` records per Python-level file operation — the
built-in formats decode a whole block with one C-level ``map``.

``benchmarks/bench_block_io.py`` measures the difference against the
line-at-a-time baseline and records it in ``BENCH_blockio.json``.

Two resilience hooks live here as well (DESIGN.md §11):

* **Per-block checksums** — with ``checksum=True`` every encoded block
  is preceded by a one-line header carrying its record count and the
  CRC-32 of its encoded bytes.  :func:`read_blocks` verifies each block
  against its header and raises :class:`~repro.engine.errors.
  CorruptBlockError` naming the file, block index and byte offset when
  a block is torn, truncated or bit-flipped, instead of silently
  merging garbage.
* **The ``open_text``/``open_bytes`` seam** — every spill/shard/
  partition file in the real-file backends is opened through
  :func:`open_text` (or :func:`open_bytes` for binary spill files),
  which routes the fresh handle through an installable wrapper.  The
  deterministic fault-injection harness (:mod:`repro.testing.faults`)
  uses it to place exceptions, short writes and bit flips at exact
  block-I/O calls without patching any backend.

Two framing-safety rules keep corrupted files *detectable* instead of
silently misread (ISSUE 7 satellite 3 and tentpole):

* checksummed **text** blocks escape data lines that start with
  ``#repro:`` (see :data:`ESCAPE_TOKEN`), so a reader that loses
  framing can never resynchronise onto a record that merely looks
  like a block header;
* **binary** blocks (:class:`~repro.core.records.BinaryRecordFormat`
  spill files) are length-framed end to end — an ``RBLK`` header
  carries the record count, body length and body CRC-32, and each
  record inside the body is length-prefixed (key bytes, then payload
  bytes), so payload content can never collide with framing at all.

A third framing carries *compressed* spill blocks (DESIGN.md §15): any
codec other than ``"none"`` (see :mod:`repro.engine.spill_codec`)
wraps each block in an ``RBLC`` header — magic, codec id, record
count, raw body length, stored body length, CRC-32 of the stored
bytes — followed by the codec-encoded body.  The raw body inside is
exactly what the uncompressed path would have written (encoded text
lines, or the RBLK-style length-prefixed records), so the same block
parsers run after one block-at-a-time decode.  Unlike the text/RBLK
framings, the RBLC CRC is *always* verified: a compressed body has no
internal redundancy, so a single flipped bit would otherwise either
explode in the decompressor with no file context or (front coding)
silently rewrite records; one C-level ``crc32`` per block buys
deterministic ``CorruptBlockError`` offsets instead.
"""

from __future__ import annotations

import os
import struct
import zlib
from collections.abc import Sequence
from itertools import islice
from typing import Any, Callable, Iterable, Iterator, List, Optional, TextIO, Tuple

from repro.core.records import RecordFormat
from repro.engine.errors import CorruptBlockError
from repro.engine.spill_codec import (
    CODEC_IDS,
    CODEC_NAMES,
    SpillCodecError,
    compress_body,
    decompress_body,
    validate_codec,
)

#: Records moved per encode/decode batch by default.  Also the default
#: merge read-buffer size (one buffer holds one block).
DEFAULT_BLOCK_RECORDS = 4096

#: Leading token of a per-block checksum header line.
BLOCK_HEADER_PREFIX = "#repro:blk"

#: Escape token for data lines that could be mistaken for metadata.
#: In a checksummed file every line starting with ``#repro:`` is
#: either a real block header or an escaped data line carrying this
#: token — so a reader that loses framing (torn tail, short write) can
#: never resynchronise onto a *data* line that merely looks like a
#: header and silently yield wrong records (ISSUE 7 satellite 3).
ESCAPE_TOKEN = "#repro:esc "

#: Magic leading every length-prefixed binary block (DESIGN.md §14).
BINARY_BLOCK_MAGIC = b"RBLK"

#: Binary block header: magic, record count, body length, body CRC-32.
#: The CRC is always computed on write (it is one C call over bytes
#: already in hand) but only *verified* when the reader asks for
#: ``checksum=True`` — mirroring the text path, where corruption
#: detection is an opt-in durability feature.
_BINARY_HEADER = struct.Struct(f">{len(BINARY_BLOCK_MAGIC)}sIII")

#: Per-record length prefix inside a binary block body.
_RECORD_LEN = struct.Struct(">I")

#: Magic leading every compressed block (DESIGN.md §15).
COMPRESSED_BLOCK_MAGIC = b"RBLC"

#: Compressed block header: magic, codec id, record count, raw body
#: length, stored body length, CRC-32 of the *stored* bytes.  The CRC
#: sits in front of the decompressor on purpose — it is always
#: verified (unlike the opt-in text/RBLK checksums), because corrupt
#: compressed bytes would otherwise fail with no file context, or
#: worse, front-decode to plausible garbage.
_COMPRESSED_HEADER = struct.Struct(f">{len(COMPRESSED_BLOCK_MAGIC)}sBIIII")

#: Installed by :func:`set_io_wrapper`; wraps every handle that
#: :func:`open_text` returns.  ``None`` = no wrapping (production).
_IO_WRAPPER: Optional[Callable[[TextIO, str, str], TextIO]] = None


def set_io_wrapper(
    wrapper: Optional[Callable[[TextIO, str, str], TextIO]]
) -> None:
    """Install (or clear, with None) the global block-I/O file wrapper.

    The wrapper receives ``(handle, path, mode)`` for every file opened
    through :func:`open_text` and must return a file-like object.  Only
    the fault-injection harness installs one; see
    :func:`repro.testing.faults.activate`.
    """
    global _IO_WRAPPER
    _IO_WRAPPER = wrapper


def open_text(path: str, mode: str = "r") -> TextIO:
    """Open a block-I/O file, routing through the installed wrapper.

    Every real-file backend opens its spill runs, shard files and
    partition files through this one seam, so a single installed
    wrapper observes (and can fault) every block-level read and write
    in the pipeline.
    """
    handle = open(path, mode, encoding="utf-8")
    wrapper = _IO_WRAPPER
    if wrapper is None:
        return handle
    try:
        return wrapper(handle, path, mode)
    except BaseException:
        handle.close()
        raise


def open_bytes(path: str, mode: str = "r") -> Any:
    """The binary twin of :func:`open_text` — same fault seam.

    The installed wrapper sees the byte-mode string (``rb``/``wb``),
    so the fault harness can flip bytes instead of characters; reads
    and writes it observes are whole block headers and bodies (the
    binary reader makes exactly two ``read()`` calls per block).
    """
    byte_mode = mode if "b" in mode else mode + "b"
    handle = open(path, byte_mode)
    wrapper = _IO_WRAPPER
    if wrapper is None:
        return handle
    try:
        return wrapper(handle, path, byte_mode)
    except BaseException:
        handle.close()
        raise


def wants_binary(fmt: RecordFormat, binary: Optional[bool] = None) -> bool:
    """Whether a spill file of ``fmt`` uses the binary block framing.

    ``binary`` overrides per call site: the engine's input/output
    boundaries and user-supplied merge inputs are always text, even
    when the engine's working format is a
    :class:`~repro.core.records.BinaryRecordFormat` (its text-side
    codec handles those); ``None`` defers to the format.
    """
    if binary is not None:
        return binary
    return getattr(fmt, "spill_binary", False)


def open_run(
    path: str,
    mode: str,
    fmt: RecordFormat,
    binary: Optional[bool] = None,
    codec: str = "none",
) -> Any:
    """Open a run/shard/partition file in ``fmt``'s framing mode.

    Any codec other than ``"none"`` forces byte mode regardless of the
    format: compressed blocks are RBLC-framed binary whatever the raw
    body inside them looks like.
    """
    if codec != "none" or wants_binary(fmt, binary):
        return open_bytes(path, mode)
    return open_text(path, mode)


def validate_block_records(block_records: int) -> int:
    """Clear error for a nonsensical block size (satellite guard)."""
    if block_records < 1:
        raise ValueError(
            f"block_records must be >= 1, got {block_records}"
        )
    return block_records


def block_header(record_count: int, crc: int) -> str:
    """The checksum header line preceding one encoded block."""
    return f"{BLOCK_HEADER_PREFIX} {record_count} {crc:08x}\n"


def _parse_block_header(
    line: str, path: str, index: int, offset: int
) -> Tuple[int, int]:
    parts = line.split()
    if (
        len(parts) != 3
        or parts[0] != BLOCK_HEADER_PREFIX
        or not parts[1].isdigit()
    ):
        raise CorruptBlockError(
            path, index, offset,
            f"bad or missing block header {line.rstrip()!r} — file is "
            f"torn or was not written with checksums",
        )
    try:
        crc = int(parts[2], 16)
    except ValueError:
        raise CorruptBlockError(
            path, index, offset,
            f"unparseable block checksum {parts[2]!r}",
        ) from None
    return int(parts[1]), crc


def _read_checksummed_blocks(
    handle: TextIO, fmt: RecordFormat
) -> Iterator[List[Any]]:
    """Verify-and-decode loop over a checksummed block file.

    Block sizes are self-describing (each header carries its record
    count), so the caller's ``block_records`` does not apply: blocks
    come back exactly as written.
    """
    path = getattr(handle, "name", "<stream>")
    offset = 0
    index = 0
    while True:
        header = next(handle, None)
        if header is None:
            return
        declared, want_crc = _parse_block_header(header, path, index, offset)
        lines = list(islice(handle, declared))
        text = "".join(lines)
        data = text.encode("utf-8")
        if len(lines) < declared:
            raise CorruptBlockError(
                path, index, offset,
                f"truncated block: header declares {declared} records, "
                f"file ends after {len(lines)}",
            )
        got_crc = zlib.crc32(data)
        if got_crc != want_crc:
            raise CorruptBlockError(
                path, index, offset,
                f"checksum mismatch: header says {want_crc:08x}, block "
                f"bytes hash to {got_crc:08x} — block was corrupted on "
                f"disk or torn mid-write",
            )
        offset += len(header.encode("utf-8")) + len(data)
        index += 1
        if ESCAPE_TOKEN in text:
            lines = [_unescape_line(line) for line in lines]
        yield fmt.decode_block(lines)


def _escape_block(text: str) -> str:
    """Escape header-looking data lines in one encoded block.

    Any data line starting with ``#repro:`` (a record that *is* a
    block header, or one that already carries the escape token) gets
    :data:`ESCAPE_TOKEN` prepended, so in a checksummed file a line
    starting with :data:`BLOCK_HEADER_PREFIX` is unambiguously a real
    header.  The CRC in the header covers the escaped bytes as
    written.  Line count is unchanged, so count-based framing and the
    self-describing headers still agree.
    """
    lines = text.split("\n")
    for index, line in enumerate(lines):
        if line.startswith("#repro:"):
            lines[index] = ESCAPE_TOKEN + line
    return "\n".join(lines)


def _unescape_line(line: str) -> str:
    if line.startswith(ESCAPE_TOKEN):
        return line[len(ESCAPE_TOKEN):]
    return line


def _pack_binary_block(records: Sequence[Any]) -> bytes:
    """Length-prefix ``(key_bytes, payload_bytes)`` records into a body."""
    pack = _RECORD_LEN.pack
    parts: List[bytes] = []
    append = parts.append
    for key, payload in records:
        append(pack(len(key)))
        append(key)
        append(pack(len(payload)))
        append(payload)
    return b"".join(parts)


def _unpack_binary_block(
    body: bytes,
    count: int,
    path: str,
    index: int,
    offset: int,
    factory: Optional[Any] = None,
) -> List[Any]:
    size = len(body)
    unpack_from = _RECORD_LEN.unpack_from
    # The format's record_factory (when set) rebuilds records with the
    # format's comparison semantics — float binary records must compare
    # key-only after a spill round trip, not as plain tuples.
    records: List[Any] = []
    append = records.append
    pos = 0
    try:
        for _ in range(count):
            (key_len,) = unpack_from(body, pos)
            pos += 4
            key_end = pos + key_len
            (payload_len,) = unpack_from(body, key_end)
            payload_end = key_end + 4 + payload_len
            if payload_end > size:
                raise struct.error("record overruns block body")
            if factory is None:
                append((body[pos:key_end], body[key_end + 4 : payload_end]))
            else:
                append(
                    factory(body[pos:key_end], body[key_end + 4 : payload_end])
                )
            pos = payload_end
    except struct.error:
        raise CorruptBlockError(
            path, index, offset,
            f"binary block body is malformed: record lengths overrun "
            f"the {size}-byte body (block was corrupted or torn)",
        ) from None
    if pos != size:
        raise CorruptBlockError(
            path, index, offset,
            f"binary block body has {size - pos} trailing byte(s) after "
            f"{count} declared record(s)",
        )
    return records


def _read_binary_block_at(
    handle: Any,
    path: str,
    index: int,
    offset: int,
    checksum: bool,
    factory: Optional[Any],
) -> Optional[Tuple[List[Any], int]]:
    """One RBLK block at the handle's current position.

    Returns ``(records, bytes_consumed)``, or ``None`` at a clean end
    of input (no header bytes at all).  ``path``/``index``/``offset``
    only label :class:`~repro.engine.errors.CorruptBlockError`s — the
    handle's position is the single source of truth, which is what
    lets the SSTable reader (DESIGN.md §17) seek to a sparse-index
    offset and reuse exactly this parser for random block access.
    """
    header_size = _BINARY_HEADER.size
    header = handle.read(header_size)
    if not header:
        return None
    if len(header) < header_size:
        raise CorruptBlockError(
            path, index, offset,
            f"truncated binary block header: {len(header)} of "
            f"{header_size} bytes — file was torn mid-write",
        )
    magic, count, body_len, want_crc = _BINARY_HEADER.unpack(header)
    if magic != BINARY_BLOCK_MAGIC:
        raise CorruptBlockError(
            path, index, offset,
            f"bad binary block magic {magic!r} — file is torn or "
            f"is not a binary spill file",
        )
    body = handle.read(body_len)
    if len(body) < body_len:
        raise CorruptBlockError(
            path, index, offset,
            f"truncated binary block: header declares {body_len} "
            f"body bytes, file ends after {len(body)}",
        )
    if checksum:
        got_crc = zlib.crc32(body)
        if got_crc != want_crc:
            raise CorruptBlockError(
                path, index, offset,
                f"checksum mismatch: header says {want_crc:08x}, "
                f"block bytes hash to {got_crc:08x} — block was "
                f"corrupted on disk or torn mid-write",
            )
    block = _unpack_binary_block(body, count, path, index, offset, factory)
    return block, header_size + body_len


def _read_binary_blocks(
    handle: Any, checksum: bool, factory: Optional[Any] = None
) -> Iterator[List[Any]]:
    """Read length-prefixed binary blocks: two ``read()`` calls each.

    Framing is self-describing (magic, record count, body length), so
    the caller's ``block_records`` does not apply and a data payload
    can never be mistaken for a header — the body is consumed by byte
    length, never scanned.  The CRC in each header is verified only
    when ``checksum`` is set, matching the text path's contract.
    """
    path = getattr(handle, "name", "<stream>")
    offset = 0
    index = 0
    while True:
        result = _read_binary_block_at(
            handle, path, index, offset, checksum, factory
        )
        if result is None:
            return
        block, consumed = result
        offset += consumed
        index += 1
        yield block


def _decode_text_body(
    fmt: RecordFormat,
    body: bytes,
    count: int,
    path: str,
    index: int,
    offset: int,
) -> List[Any]:
    """Parse a decompressed text body exactly like a text-mode read.

    Lines are split on ``"\\n"`` only — ``str.splitlines`` would also
    break on ``\\x85``/``\\u2028``-style boundaries that a text-mode
    file read (universal newlines) treats as record content.
    """
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CorruptBlockError(
            path, index, offset,
            f"decompressed block body is not valid UTF-8: {exc}",
        ) from None
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    block = fmt.decode_block([line + "\n" for line in lines])
    if len(block) != count:
        raise CorruptBlockError(
            path, index, offset,
            f"decompressed block decodes to {len(block)} record(s), "
            f"header promised {count}",
        )
    return block


def _read_compressed_block_at(
    handle: Any,
    fmt: RecordFormat,
    codec: str,
    binary: bool,
    factory: Optional[Any],
    path: str,
    index: int,
    offset: int,
) -> Optional[Tuple[List[Any], int]]:
    """One RBLC block at the handle's current position.

    Returns ``(records, bytes_consumed)`` or ``None`` at a clean end
    of input; the stored-body CRC is always verified (see
    :data:`_COMPRESSED_HEADER`).  Like :func:`_read_binary_block_at`,
    position comes from the handle so seek-based readers can reuse it.
    """
    header_size = _COMPRESSED_HEADER.size
    expected_id = CODEC_IDS[codec]
    header = handle.read(header_size)
    if not header:
        return None
    if len(header) < header_size:
        raise CorruptBlockError(
            path, index, offset,
            f"truncated compressed block header: {len(header)} of "
            f"{header_size} bytes — file was torn mid-write",
        )
    magic, codec_id, count, raw_len, stored_len, want_crc = (
        _COMPRESSED_HEADER.unpack(header)
    )
    if magic != COMPRESSED_BLOCK_MAGIC:
        raise CorruptBlockError(
            path, index, offset,
            f"bad compressed block magic {magic!r} — file is torn "
            f"or is not a compressed spill file",
        )
    if codec_id != expected_id:
        found = CODEC_NAMES.get(codec_id, f"unknown id {codec_id}")
        raise CorruptBlockError(
            path, index, offset,
            f"block was written with codec {found!r} but the reader "
            f"expects {codec!r} — spill codecs must not mix within "
            f"one file",
        )
    stored = handle.read(stored_len)
    if len(stored) < stored_len:
        raise CorruptBlockError(
            path, index, offset,
            f"truncated compressed block: header declares "
            f"{stored_len} stored bytes, file ends after "
            f"{len(stored)}",
        )
    got_crc = zlib.crc32(stored)
    if got_crc != want_crc:
        raise CorruptBlockError(
            path, index, offset,
            f"checksum mismatch: header says {want_crc:08x}, stored "
            f"bytes hash to {got_crc:08x} — block was corrupted on "
            f"disk or torn mid-write",
        )
    try:
        body = decompress_body(codec, stored, raw_len, count)
    except SpillCodecError as exc:
        raise CorruptBlockError(path, index, offset, str(exc)) from None
    if binary:
        block = _unpack_binary_block(
            body, count, path, index, offset, factory
        )
    else:
        block = _decode_text_body(fmt, body, count, path, index, offset)
    return block, header_size + stored_len


def _read_compressed_blocks(
    handle: Any,
    fmt: RecordFormat,
    codec: str,
    binary: bool,
    factory: Optional[Any] = None,
) -> Iterator[List[Any]]:
    """Read RBLC-framed compressed blocks: two ``read()`` calls each.

    The stored-body CRC is always verified (see the header comment on
    :data:`_COMPRESSED_HEADER`), so a bit flip anywhere inside a
    compressed body raises :class:`~repro.engine.errors.
    CorruptBlockError` with the file, block index and byte offset
    before the decompressor ever sees the bytes.
    """
    path = getattr(handle, "name", "<stream>")
    offset = 0
    index = 0
    while True:
        result = _read_compressed_block_at(
            handle, fmt, codec, binary, factory, path, index, offset
        )
        if result is None:
            return
        block, consumed = result
        offset += consumed
        index += 1
        yield block


def read_framed_block(
    handle: Any,
    fmt: RecordFormat,
    *,
    path: str = "<stream>",
    index: int = 0,
    offset: int = 0,
    checksum: bool = True,
    codec: str = "none",
) -> Optional[Tuple[List[Any], int]]:
    """Read one self-describing block at the handle's current position.

    The random-access twin of :func:`read_blocks` for the two
    length-framed layouts (RBLK binary, RBLC compressed): callers that
    keep their own block offsets — the SSTable sparse index above all
    — seek the handle and parse exactly one block through the same
    corruption-checked code path the streaming readers use.  Returns
    ``(records, bytes_consumed)``, or ``None`` when the handle is at a
    clean end of input; ``path``/``index``/``offset`` label any
    :class:`~repro.engine.errors.CorruptBlockError`.  Text framing has
    no random-access layout (its headers are lines), so only binary
    formats and codec-compressed files are supported.
    """
    validate_codec(codec)
    factory = getattr(fmt, "record_factory", None)
    if codec != "none":
        return _read_compressed_block_at(
            handle, fmt, codec, wants_binary(fmt, None), factory,
            path, index, offset,
        )
    return _read_binary_block_at(
        handle, path, index, offset, checksum, factory
    )


def read_blocks(
    handle: TextIO,
    fmt: RecordFormat,
    block_records: int = DEFAULT_BLOCK_RECORDS,
    checksum: bool = False,
    skip_blank: bool = False,
    binary: Optional[bool] = None,
    codec: str = "none",
) -> Iterator[List[Any]]:
    """Yield decoded blocks of exactly ``block_records`` records (last
    block may be short).

    Block boundaries are deterministic (``islice`` over lines), so
    buffering instrumentation and tests see stable block sizes
    regardless of record byte lengths.

    ``skip_blank=True`` drops whitespace-only lines before decoding —
    the CLI's historical blank-line tolerance for caller-provided
    files (``repro merge`` inputs); the caller is responsible for only
    requesting it when ``fmt.blank_input_skippable`` holds.

    With ``checksum=True`` the file must carry per-block headers
    (written by a checksumming :class:`BlockWriter`); every block is
    verified against its header and a corrupt, torn or truncated block
    raises :class:`~repro.engine.errors.CorruptBlockError` with the
    file, block index and byte offset.  Checksummed blocks come back
    in their *written* sizes — the headers are authoritative, and
    blank tolerance never applies (such files are machine-written).

    ``binary`` selects the length-prefixed binary framing (handle must
    come from :func:`open_bytes`); ``None`` defers to the format's
    ``spill_binary`` flag.  Binary blocks are self-describing like
    checksummed text blocks, so ``block_records`` and ``skip_blank``
    do not apply.

    A ``codec`` other than ``"none"`` reads the RBLC compressed
    framing (handle must come from :func:`open_bytes`); block sizes
    are self-describing and the stored-body CRC is always verified,
    so ``block_records``, ``checksum`` and ``skip_blank`` do not
    apply.  The codec must match the one the file was written with —
    a mismatched block raises ``CorruptBlockError``.
    """
    validate_block_records(block_records)
    if codec != "none":
        validate_codec(codec)
        yield from _read_compressed_blocks(
            handle, fmt, codec, wants_binary(fmt, binary),
            getattr(fmt, "record_factory", None),
        )
        return
    if wants_binary(fmt, binary):
        yield from _read_binary_blocks(
            handle, checksum, getattr(fmt, "record_factory", None)
        )
        return
    if checksum:
        yield from _read_checksummed_blocks(handle, fmt)
        return
    while True:
        lines = list(islice(handle, block_records))
        if not lines:
            return
        if skip_blank:
            lines = [line for line in lines if line.strip()]
            if not lines:
                continue
        yield fmt.decode_block(lines)


def iter_records(
    handle: TextIO,
    fmt: RecordFormat,
    block_records: int = DEFAULT_BLOCK_RECORDS,
    skip_blank: bool = False,
    checksum: bool = False,
    binary: Optional[bool] = None,
    codec: str = "none",
) -> Iterator[Any]:
    """Stream individual records, decoded block-at-a-time.

    ``skip_blank`` requests the CLI's historical input tolerance
    (trailing newlines, blank separator lines); it only takes effect
    for formats whose records cannot be whitespace
    (``fmt.blank_input_skippable`` — the numeric formats).  For text
    formats a blank or whitespace-only line *is* a record, so nothing
    is dropped and the output agrees with ``sort(1)`` line for line.
    Spill and shard files, which the sort writes itself, never need
    the tolerance.

    ``checksum`` reads a per-block-checksummed file (see
    :func:`read_blocks`); blank-line tolerance never applies there
    because such files are always machine-written.  ``binary`` and
    ``codec`` select the framing exactly as in :func:`read_blocks`.
    """
    validate_block_records(block_records)
    if codec != "none":
        validate_codec(codec)
        for block in _read_compressed_blocks(
            handle, fmt, codec, wants_binary(fmt, binary),
            getattr(fmt, "record_factory", None),
        ):
            yield from block
        return
    if wants_binary(fmt, binary):
        for block in _read_binary_blocks(
            handle, checksum, getattr(fmt, "record_factory", None)
        ):
            yield from block
        return
    if checksum:
        for block in _read_checksummed_blocks(handle, fmt):
            yield from block
        return
    for block in read_blocks(
        handle, fmt, block_records,
        skip_blank=skip_blank and fmt.blank_input_skippable,
        binary=False,
    ):
        yield from block


class BlockWriter:
    """Buffered record writer: one ``write()`` per encoded block.

    Not a context manager on purpose — it never owns the handle; the
    caller must invoke :meth:`flush` before closing the file (or use
    :func:`write_records`, which does).

    ``checksum=True`` prefixes every flushed block with a header line
    carrying the block's record count and CRC-32, so readers can
    detect torn and bit-flipped blocks (:func:`read_blocks` with
    ``checksum=True``).  ``track_crc=True`` additionally maintains
    :attr:`file_crc` — the running CRC-32 of every byte written so far
    — which the resilience journal records per finished run so a
    resumed sort can verify survivors without trusting them.  Both
    default off: the extra UTF-8 encode per block is only paid when a
    durability feature asks for it.
    """

    def __init__(
        self,
        handle: TextIO,
        fmt: RecordFormat,
        block_records: int = DEFAULT_BLOCK_RECORDS,
        checksum: bool = False,
        track_crc: bool = False,
        binary: Optional[bool] = None,
        codec: str = "none",
    ) -> None:
        validate_block_records(block_records)
        self._handle = handle
        self._fmt = fmt
        self._block_records = block_records
        self._checksum = checksum
        self._track_crc = track_crc or checksum
        #: Length-prefixed binary framing (handle from ``open_bytes``);
        #: ``None`` defers to the format's ``spill_binary`` flag.
        self._binary = wants_binary(fmt, binary)
        #: Spill codec; anything but "none" writes RBLC-framed blocks
        #: (handle must come from ``open_bytes``) whose raw body uses
        #: the format's framing (text lines or binary records).
        self._codec = validate_codec(codec)
        self._pending: List[Any] = []
        #: Total records written (including still-buffered ones).
        self.written = 0
        #: Running CRC-32 of all bytes written (when tracking is on).
        self.file_crc = 0
        #: Encoded record bytes before codec framing (what the
        #: uncompressed path would have written; characters for the
        #: plain-text path, where ASCII makes the two agree).
        self.raw_bytes = 0
        #: Bytes actually written, framing included.
        self.disk_bytes = 0

    def write(self, record: Any) -> None:
        self._pending.append(record)
        self.written += 1
        if len(self._pending) >= self._block_records:
            self.flush()

    def write_all(self, records: Iterable[Any]) -> int:
        """Write every record of a stream; returns how many."""
        before = self.written
        pending = self._pending
        block_records = self._block_records
        for record in records:
            pending.append(record)
            self.written += 1
            if len(pending) >= block_records:
                self.flush()
        return self.written - before

    def flush(self) -> None:
        if not self._pending:
            return
        if self._codec != "none":
            self._flush_compressed()
            return
        if self._binary:
            body = _pack_binary_block(self._pending)
            header = _BINARY_HEADER.pack(
                BINARY_BLOCK_MAGIC, len(self._pending), len(body),
                zlib.crc32(body),
            )
            self._handle.write(header)
            self._handle.write(body)
            if self._track_crc:
                self.file_crc = zlib.crc32(
                    body, zlib.crc32(header, self.file_crc)
                )
            self.raw_bytes += len(header) + len(body)
            self.disk_bytes += len(header) + len(body)
            self._pending.clear()
            return
        text = self._fmt.encode_block(self._pending)
        if self._checksum and "#repro:" in text:
            # Only checksummed files carry header lines, so only they
            # need data lines disambiguated from headers (satellite 3).
            text = _escape_block(text)
        self.raw_bytes += len(text)
        self.disk_bytes += len(text)
        if self._track_crc:
            data = text.encode("utf-8")
            block_crc = zlib.crc32(data)
            if self._checksum:
                header = block_header(len(self._pending), block_crc)
                self._handle.write(header)
                self.file_crc = zlib.crc32(
                    header.encode("utf-8"), self.file_crc
                )
                self.raw_bytes += len(header)
                self.disk_bytes += len(header)
            self.file_crc = zlib.crc32(data, self.file_crc)
        self._handle.write(text)
        # Cleared in place: write_all holds a local alias.
        self._pending.clear()

    def _flush_compressed(self) -> None:
        """Write one RBLC-framed block under the configured codec."""
        pending = self._pending
        parts: Sequence[bytes]
        if self._binary:
            pack = _RECORD_LEN.pack
            parts = [
                pack(len(key)) + key + pack(len(payload)) + payload
                for key, payload in pending
            ]
            body = b"".join(parts)
        else:
            body = self._fmt.encode_block(pending).encode("utf-8")
            # Per-record byte strings are only needed by front coding.
            parts = (
                body.splitlines(keepends=True)
                if self._codec in ("front", "front+zlib")
                else ()
            )
        stored = compress_body(self._codec, body, parts)
        header = _COMPRESSED_HEADER.pack(
            COMPRESSED_BLOCK_MAGIC, CODEC_IDS[self._codec], len(pending),
            len(body), len(stored), zlib.crc32(stored),
        )
        self._handle.write(header)
        self._handle.write(stored)
        if self._track_crc:
            self.file_crc = zlib.crc32(
                stored, zlib.crc32(header, self.file_crc)
            )
        # ``raw`` is what the codec=none path would have written for
        # this block — body plus, for binary framing, its RBLK header —
        # so ratios compare like against like across codec settings.
        self.raw_bytes += len(body)
        if self._binary:
            self.raw_bytes += _BINARY_HEADER.size
        self.disk_bytes += len(header) + len(stored)
        pending.clear()


def write_sequence(
    path: str,
    records: Iterable[Any],
    fmt: RecordFormat,
    block_records: int = DEFAULT_BLOCK_RECORDS,
    checksum: bool = False,
    codec: str = "none",
    session: Optional[Any] = None,
) -> int:
    """Write a whole record source to ``path`` in blocks; returns length.

    A materialised sequence (e.g. one generated run — the spill-file
    fast path) is sliced directly into encode batches; any other
    iterable (or any checksummed or codec-compressed write) streams
    through a :class:`BlockWriter`.  Binary-spill formats take the
    binary framing automatically (their headers always carry the CRC,
    so the fast path applies to checksummed binary writes too).

    ``session`` (a :class:`~repro.sort.spill.SpillSession` or anything
    with a ``spilled(raw_bytes, disk_bytes)`` method) receives the
    write's byte accounting, so spill-traffic totals survive even the
    fast paths.
    """
    validate_block_records(block_records)
    validate_codec(codec)
    binary = wants_binary(fmt)
    raw_bytes = 0
    disk_bytes = 0
    with open_run(path, "w", fmt, codec=codec) as handle:
        if (
            codec == "none"
            and isinstance(records, Sequence)
            and (binary or not checksum)
        ):
            if binary:
                pack = _BINARY_HEADER.pack
                header_size = _BINARY_HEADER.size
                for start in range(0, len(records), block_records):
                    chunk = records[start : start + block_records]
                    body = _pack_binary_block(chunk)
                    handle.write(pack(
                        BINARY_BLOCK_MAGIC, len(chunk), len(body),
                        zlib.crc32(body),
                    ))
                    handle.write(body)
                    disk_bytes += header_size + len(body)
            else:
                encode_block = fmt.encode_block
                for start in range(0, len(records), block_records):
                    text = encode_block(records[start : start + block_records])
                    handle.write(text)
                    disk_bytes += len(text)
            if session is not None:
                session.spilled(disk_bytes, disk_bytes)
            return len(records)
        writer = BlockWriter(
            handle, fmt, block_records, checksum=checksum, codec=codec
        )
        writer.write_all(records)
        writer.flush()
        raw_bytes, disk_bytes = writer.raw_bytes, writer.disk_bytes
    if session is not None:
        session.spilled(raw_bytes, disk_bytes)
    return writer.written


def write_block_file(
    path: str,
    records: Iterable[Any],
    fmt: RecordFormat,
    block_records: int = DEFAULT_BLOCK_RECORDS,
    checksum: bool = False,
    fsync: bool = False,
    codec: str = "none",
    session: Optional[Any] = None,
) -> Tuple[int, int]:
    """Durable single-file write; returns ``(record_count, file_crc32)``.

    The resilience layer's write primitive: the CRC covers every byte
    the writer produced (headers included) *before* the operating
    system or an injected fault had a chance to mangle them, so the
    journal entry describes the intended file and a later verification
    pass catches any divergence.  ``fsync=True`` flushes the file to
    stable storage before returning — a journaled run must never
    outlive its data.  ``session`` receives byte accounting as in
    :func:`write_sequence`.
    """
    validate_block_records(block_records)
    with open_run(path, "w", fmt, codec=codec) as handle:
        writer = BlockWriter(
            handle, fmt, block_records, checksum=checksum, track_crc=True,
            codec=codec,
        )
        writer.write_all(records)
        writer.flush()
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
    if session is not None:
        session.spilled(writer.raw_bytes, writer.disk_bytes)
    return writer.written, writer.file_crc
