"""Batched block readers and writers over newline-delimited files.

The seed's hot loops touched files one record at a time: an f-string
``write()`` per record on the way out, a ``decode(line)`` call per line
on the way back in.  This module batches both directions through
:class:`~repro.core.records.RecordFormat` block codecs, so a sort
moves ``block_records`` records per Python-level file operation — the
built-in formats decode a whole block with one C-level ``map``.

``benchmarks/bench_block_io.py`` measures the difference against the
line-at-a-time baseline and records it in ``BENCH_blockio.json``.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import islice
from typing import Any, Iterable, Iterator, List, TextIO

from repro.core.records import RecordFormat

#: Records moved per encode/decode batch by default.  Also the default
#: merge read-buffer size (one buffer holds one block).
DEFAULT_BLOCK_RECORDS = 4096


def validate_block_records(block_records: int) -> int:
    """Clear error for a nonsensical block size (satellite guard)."""
    if block_records < 1:
        raise ValueError(
            f"block_records must be >= 1, got {block_records}"
        )
    return block_records


def read_blocks(
    handle: TextIO, fmt: RecordFormat, block_records: int = DEFAULT_BLOCK_RECORDS
) -> Iterator[List[Any]]:
    """Yield decoded blocks of exactly ``block_records`` records (last
    block may be short).

    Block boundaries are deterministic (``islice`` over lines), so
    buffering instrumentation and tests see stable block sizes
    regardless of record byte lengths.
    """
    validate_block_records(block_records)
    while True:
        lines = list(islice(handle, block_records))
        if not lines:
            return
        yield fmt.decode_block(lines)


def iter_records(
    handle: TextIO,
    fmt: RecordFormat,
    block_records: int = DEFAULT_BLOCK_RECORDS,
    skip_blank: bool = False,
) -> Iterator[Any]:
    """Stream individual records, decoded block-at-a-time.

    ``skip_blank`` requests the CLI's historical input tolerance
    (trailing newlines, blank separator lines); it only takes effect
    for formats whose records cannot be whitespace
    (``fmt.blank_input_skippable`` — the numeric formats).  For text
    formats a blank or whitespace-only line *is* a record, so nothing
    is dropped and the output agrees with ``sort(1)`` line for line.
    Spill and shard files, which the sort writes itself, never need
    the tolerance.
    """
    validate_block_records(block_records)
    if skip_blank and fmt.blank_input_skippable:
        while True:
            raw = list(islice(handle, block_records))
            if not raw:
                return
            lines = [line for line in raw if line.strip()]
            if lines:
                yield from fmt.decode_block(lines)
    else:
        for block in read_blocks(handle, fmt, block_records):
            yield from block


class BlockWriter:
    """Buffered record writer: one ``write()`` per encoded block.

    Not a context manager on purpose — it never owns the handle; the
    caller must invoke :meth:`flush` before closing the file (or use
    :func:`write_records`, which does).
    """

    def __init__(
        self,
        handle: TextIO,
        fmt: RecordFormat,
        block_records: int = DEFAULT_BLOCK_RECORDS,
    ) -> None:
        validate_block_records(block_records)
        self._handle = handle
        self._fmt = fmt
        self._block_records = block_records
        self._pending: List[Any] = []
        #: Total records written (including still-buffered ones).
        self.written = 0

    def write(self, record: Any) -> None:
        self._pending.append(record)
        self.written += 1
        if len(self._pending) >= self._block_records:
            self.flush()

    def write_all(self, records: Iterable[Any]) -> int:
        """Write every record of a stream; returns how many."""
        before = self.written
        pending = self._pending
        block_records = self._block_records
        for record in records:
            pending.append(record)
            self.written += 1
            if len(pending) >= block_records:
                self.flush()
        return self.written - before

    def flush(self) -> None:
        if self._pending:
            self._handle.write(self._fmt.encode_block(self._pending))
            # Cleared in place: write_all holds a local alias.
            self._pending.clear()


def write_sequence(
    path: str,
    records: Iterable[Any],
    fmt: RecordFormat,
    block_records: int = DEFAULT_BLOCK_RECORDS,
) -> int:
    """Write a whole record source to ``path`` in blocks; returns length.

    A materialised sequence (e.g. one generated run — the spill-file
    fast path) is sliced directly into encode batches; any other
    iterable streams through a :class:`BlockWriter`.
    """
    validate_block_records(block_records)
    with open(path, "w", encoding="utf-8") as handle:
        if isinstance(records, Sequence):
            encode_block = fmt.encode_block
            for start in range(0, len(records), block_records):
                handle.write(
                    encode_block(records[start : start + block_records])
                )
            return len(records)
        writer = BlockWriter(handle, fmt, block_records)
        writer.write_all(records)
        writer.flush()
    return writer.written
