"""Real-file merge reading strategies (Section 3.7.2, off the simulator).

:mod:`repro.merge.reading` studies the paper's merge reading
strategies on a simulated disk.  This module ports three of them to
*actual file handles* feeding the final k-way merge, with prefetching
done by a small thread pool (reads overlap merging for real — Python
releases the GIL during file reads):

* **naive** — each run holds one buffer of ``buffer_records`` decoded
  records and refills it synchronously when it empties (the seed's
  behaviour, and the zero-overhead choice for warm caches);
* **forecasting** (Knuth) — one extra buffer; after every refill the
  strategy compares the *tail* key of each run's in-memory block and
  prefetches the next block of the run whose tail is smallest — the
  run that must empty first — while the merge keeps consuming;
* **double_buffering** (Salzberg) — two half-sized buffers per run;
  whenever a block is handed to the merge, the reader immediately
  starts refilling its twin in the background.

All three consume identical record sequences, so the merged output is
byte-identical across strategies for any input; only the *timing* of
reads differs.  ``tests/test_merge_reading_files.py`` locks that
property over the six workload distributions.

The strategies deliberately speak the same instrumentation protocol as
:class:`repro.sort.spill.SpillSession` (``buffer_grew`` /
``buffer_shrank`` / ``reader_opened`` / ``reader_closed``), so bounded
-memory assertions keep working whichever strategy reads the files.
In-flight prefetch buffers are charged to the session too — at their
full ``block_records`` upper bound from the moment the read is issued
until the block is claimed — so ``max_resident_records`` bounds true
peak memory, prefetching included.  All session accounting happens on
the consumer thread (prefetches are issued and claimed there); worker
threads only read and decode.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import IO, Any, Dict, Iterator, List, Optional, Sequence

from repro.core.records import RecordFormat
from repro.engine.block_io import open_run, read_blocks, validate_block_records
from repro.engine.errors import SortError

#: Strategy names accepted by :func:`open_reading` and the CLI.
READING_STRATEGIES = ("naive", "forecasting", "double_buffering")

#: Upper bound on prefetch threads regardless of merge width.
_MAX_PREFETCH_THREADS = 8


class _NullSession:
    """No-op instrumentation target."""

    def buffer_grew(self, n: int) -> None:
        pass

    def buffer_shrank(self, n: int) -> None:
        pass

    def reader_opened(self) -> None:
        pass

    def reader_closed(self) -> None:
        pass


class ReadingStats:
    """What a strategy actually did, for reports and regression tests.

    ``block_reads`` counts blocks that *delivered records* (empty
    end-of-file probes are excluded); ``prefetches`` counts issued
    prefetch reads — useful or not — and ``prefetch_hits`` only those
    that delivered data, so ``hits < prefetches`` exposes wasted
    end-of-run prefetching instead of hiding it.
    """

    __slots__ = ("strategy", "block_reads", "prefetches", "prefetch_hits")

    def __init__(self, strategy: str) -> None:
        self.strategy = strategy
        self.block_reads = 0
        self.prefetches = 0
        self.prefetch_hits = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReadingStats({self.strategy}: reads={self.block_reads}, "
            f"prefetches={self.prefetches}, hits={self.prefetch_hits})"
        )


class _RunSource:
    """Sequential block reader over one sorted run file.

    ``read_block`` may be called from a worker thread, but never
    concurrently for the same source — each strategy guarantees at most
    one outstanding read per run.  Only pure I/O and decoding happen
    here (through :func:`repro.engine.block_io.read_blocks`, the one
    block-read recipe in the codebase); session accounting stays on
    the consumer thread.
    """

    __slots__ = ("run", "fmt", "block_records", "checksum", "skip_blank",
                 "binary", "codec", "handle", "finished", "delivered",
                 "_blocks")

    def __init__(self, run: Any, fmt: RecordFormat, block_records: int) -> None:
        self.run = run
        self.fmt = fmt
        self.block_records = block_records
        #: Runs written under a checksumming session verify themselves
        #: block-by-block as the merge reads them (DESIGN.md §11).
        self.checksum = bool(getattr(run, "checksum", False))
        #: Caller-provided merge inputs tolerate blank separator lines.
        self.skip_blank = bool(getattr(run, "skip_blank", False))
        #: ``None`` defers to the format's ``spill_binary`` flag;
        #: :meth:`SortEngine.merge_files` pins ``False`` for user files.
        self.binary = getattr(run, "binary", None)
        #: Spill codec the run's file was written with (DESIGN.md §15);
        #: decompression stays block-at-a-time, so prefetch threads
        #: decode whole blocks exactly as in the uncompressed path.
        self.codec = getattr(run, "codec", "none")
        self.handle: Optional[IO[Any]] = None
        self.finished = False
        self.delivered = 0
        self._blocks: Optional[Iterator[List[Any]]] = None

    def read_block(self) -> List[Any]:
        if self.finished:
            return []
        if self.handle is None:
            self.handle = open_run(
                self.run.path, "r", self.fmt, self.binary, codec=self.codec
            )
            self._blocks = read_blocks(
                self.handle, self.fmt, self.block_records,
                checksum=self.checksum, skip_blank=self.skip_blank,
                binary=self.binary, codec=self.codec,
            )
        assert self._blocks is not None
        block = next(self._blocks, None)
        if block is None:
            # Checksums vouch for present blocks only; a file that
            # ends early lost whole blocks and must not merge quietly.
            expected = getattr(self.run, "length", 0)
            if expected and self.delivered != expected:
                self.close()
                raise SortError(
                    f"spilled run {self.run.path!r} delivered "
                    f"{self.delivered} records but {expected} were "
                    f"written — file was truncated or lost blocks on disk"
                )
            self.close()
            return []
        self.delivered += len(block)
        return block

    def close(self) -> None:
        if self.handle is not None:
            self.handle.close()
            self.handle = None
            self._blocks = None
        if not self.finished:
            self.finished = True
            discard = getattr(self.run, "discard", None)
            if discard is not None:
                discard()


class ReadingStrategy:
    """Base: owns the run sources and turns them into merge streams.

    Subclasses implement :meth:`_next_block`; the base class handles
    stream bookkeeping, instrumentation, and cleanup.  Use as a context
    manager (or call :meth:`close`) so abandoned merges still close
    handles and stop prefetch threads.
    """

    name = "base"
    uses_threads = False

    def __init__(
        self,
        runs: Sequence[Any],
        fmt: RecordFormat,
        buffer_records: int,
        session: Optional[Any] = None,
    ) -> None:
        validate_block_records(buffer_records)
        self.fmt = fmt
        self.buffer_records = buffer_records
        self.session = session if session is not None else _NullSession()
        self.stats = ReadingStats(self.name)
        self.sources = [
            _RunSource(run, fmt, self._source_block_records())
            for run in runs
        ]
        self._opened = [False] * len(self.sources)
        self._executor: Optional[ThreadPoolExecutor] = None
        if self.uses_threads and self.sources:
            self._executor = ThreadPoolExecutor(
                max_workers=min(_MAX_PREFETCH_THREADS, len(self.sources)),
                thread_name_prefix="repro-prefetch",
            )

    # -- public API -----------------------------------------------------------

    def streams(self) -> List[Iterator[Any]]:
        """One ascending record iterator per run, for ``kway_merge``."""
        return [self._stream(i) for i in range(len(self.sources))]

    def close(self) -> None:
        """Stop prefetching and close every handle (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for source in self.sources:
            if source.handle is not None:
                source.handle.close()
                source.handle = None

    def __enter__(self) -> "ReadingStrategy":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- hooks ---------------------------------------------------------------

    def _source_block_records(self) -> int:
        """Decoded records per physical block read (strategy-specific)."""
        return self.buffer_records

    def _next_block(self, index: int) -> List[Any]:
        """Produce the next block of run ``index`` (consumer thread)."""
        raise NotImplementedError

    # -- shared plumbing ------------------------------------------------------

    def _read(self, index: int) -> List[Any]:
        block = self.sources[index].read_block()
        if block:
            self.stats.block_reads += 1
        return block

    def _stream(self, index: int) -> Iterator[Any]:
        session = self.session
        try:
            while True:
                block = self._next_block(index)
                if not block:
                    return
                if not self._opened[index]:
                    self._opened[index] = True
                    session.reader_opened()
                session.buffer_grew(len(block))
                try:
                    yield from block
                finally:
                    session.buffer_shrank(len(block))
        finally:
            self.sources[index].close()
            if self._opened[index]:
                self._opened[index] = False
                session.reader_closed()


class NaiveReading(ReadingStrategy):
    """One buffer per run, refilled synchronously on empty."""

    name = "naive"

    def _next_block(self, index: int) -> List[Any]:
        return self._read(index)


class ForecastingReading(ReadingStrategy):
    """Knuth's forecast: prefetch the run whose buffer empties first.

    One extra buffer exists in the whole merge; at most one prefetch is
    in flight at any time.  The forecast compares the last (largest)
    key of every run's in-memory block: the run with the smallest tail
    key is the first whose buffer can empty, so its next block is the
    one worth fetching early.
    """

    name = "forecasting"
    uses_threads = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        # The single extra buffer: (run index, future, charged records)
        # or None.  The charge is the block-size upper bound accounted
        # to the session while the prefetch is in flight.
        self._pending: Optional[tuple] = None
        # Tail key of the block each run is currently consuming.
        self._tails: Dict[int, Any] = {}

    def _next_block(self, index: int) -> List[Any]:
        block = self._claim_prefetch(index)
        if block is None:
            block = self._read(index)
        if block:
            # One key() per *block* (the tail), not per record — the
            # forecast needs it and it is outside the merge hot loop.
            # repro: lint-waive R007 per-block forecast tail, not per-record
            self._tails[index] = self.fmt.key(block[-1])
        else:
            self._tails.pop(index, None)
        self._forecast()
        return block

    def close(self) -> None:
        if self._pending is not None:
            self.session.buffer_shrank(self._pending[2])
            self._pending = None
        super().close()

    def _claim_prefetch(self, index: int) -> Optional[List[Any]]:
        """Take the pending prefetched block if it is this run's.

        Returns ``[]`` (a claimed end-of-file probe) distinct from
        ``None`` (nothing pending for this run, read synchronously).
        """
        if self._pending is None or self._pending[0] != index:
            return None
        _, future, charged = self._pending
        self._pending = None
        self.session.buffer_shrank(charged)
        block = future.result()
        if block:
            self.stats.prefetch_hits += 1
            self.stats.block_reads += 1
        return block

    def _forecast(self) -> None:
        if self._pending is not None or self._executor is None:
            return
        if not self._tails:
            return
        # The run with the smallest in-memory tail key empties first.
        forecast_run = min(self._tails, key=lambda i: self._tails[i])
        source = self.sources[forecast_run]
        if source.finished:
            return
        self.stats.prefetches += 1
        self.session.buffer_grew(source.block_records)
        future = self._executor.submit(source.read_block)
        self._pending = (forecast_run, future, source.block_records)


class DoubleBufferingReading(ReadingStrategy):
    """Salzberg's double buffering: two half-sized buffers per run.

    Handing a block to the merge immediately schedules the refill of
    its twin, so every run (not just the forecast one) overlaps its
    reads with merging — at the price of halving the buffer, doubling
    how often each run pays a read.
    """

    name = "double_buffering"
    uses_threads = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        # run index -> (future, charged records) for the in-flight
        # refill of that run's idle buffer half.
        self._pending: Dict[int, tuple] = {}

    def _source_block_records(self) -> int:
        return max(1, self.buffer_records // 2)

    def _next_block(self, index: int) -> List[Any]:
        pending = self._pending.pop(index, None)
        if pending is not None:
            future, charged = pending
            self.session.buffer_shrank(charged)
            block = future.result()
            if block:
                self.stats.prefetch_hits += 1
                self.stats.block_reads += 1
        else:
            block = self._read(index)
        if block and self._executor is not None:
            source = self.sources[index]
            if not source.finished:
                self.stats.prefetches += 1
                self.session.buffer_grew(source.block_records)
                self._pending[index] = (
                    self._executor.submit(source.read_block),
                    source.block_records,
                )
        return block

    def close(self) -> None:
        for _, charged in self._pending.values():
            self.session.buffer_shrank(charged)
        self._pending.clear()
        super().close()


_STRATEGY_CLASSES = {
    "naive": NaiveReading,
    "forecasting": ForecastingReading,
    "double_buffering": DoubleBufferingReading,
}


def validate_reading(reading: str) -> str:
    """Reject an unknown strategy name with a clear error.

    Backends call this at *construction* so a typo fails immediately,
    not after the whole run-generation phase has been spilled.
    """
    if reading not in _STRATEGY_CLASSES:
        raise ValueError(
            f"unknown reading strategy {reading!r}; "
            f"known: {READING_STRATEGIES}"
        )
    return reading


def open_reading(
    reading: str,
    runs: Sequence[Any],
    fmt: RecordFormat,
    buffer_records: int,
    session: Optional[Any] = None,
) -> ReadingStrategy:
    """Instantiate the named strategy over ``runs`` (objects with a
    ``path`` and, optionally, a ``discard()`` called at exhaustion)."""
    validate_reading(reading)
    return _STRATEGY_CLASSES[reading](runs, fmt, buffer_records, session)
