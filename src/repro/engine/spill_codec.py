"""Per-block spill codecs: zlib, lzma, and front-coding (DESIGN.md §15).

A codec transforms one block's *raw body* — the exact bytes the
uncompressed spill path would have written for those records (encoded
text lines, or length-prefixed binary ``(key, payload)`` records) —
into a *stored body*, and back.  The framing around the stored body
(the ``RBLC`` header carrying the codec id, record count, raw length,
stored length, and a CRC-32 of the stored bytes) lives in
:mod:`repro.engine.block_io`; this module knows nothing about files,
which keeps every byte on the ``open_text``/``open_bytes`` fault seam
and out of reach of the ``zlib``/``lzma`` file APIs that lint rule
R002 bans from the sort path.

Codecs
------

``zlib``
    ``zlib.compress(body, level=1)`` — the cheap codec: a fast
    general-purpose pass whose CPU cost is usually repaid by a single
    merge read of the smaller file.

``lzma``
    ``lzma.compress(body, preset=0)`` — the heavy codec: better ratios
    on text-like payloads at a noticeably higher CPU cost; worth it
    only when multi-pass merge I/O dominates.

``front``
    Front-coding (shared-prefix delta).  Each record's bytes are
    stored as ``varint(prefix) varint(suffix_len) suffix`` where
    ``prefix`` is the length of the longest common prefix with the
    *previous* record's full bytes.  Sorted runs of order-preserving
    binary keys (DESIGN.md §14) place long shared prefixes on adjacent
    records, so this is near-free CPU-wise and shrinks exactly the
    data the merge re-reads.  On unsorted data (partition files) it
    degrades gracefully to a two-varint-per-record overhead.

``front+zlib``
    ``zlib`` over the front-coded stream: front-coding exposes the
    residual suffix redundancy to the byte compressor.

Both directions work block-at-a-time — one call per block, never one
per record — so R007's zero-per-record-decode invariant holds in the
merge readers regardless of codec.
"""

from __future__ import annotations

import lzma
import zlib
from typing import Dict, List, Sequence, Tuple

#: Codec names accepted everywhere a spill codec can be chosen.
SPILL_CODECS: Tuple[str, ...] = ("none", "zlib", "lzma", "front", "front+zlib")

#: Sentinel accepted by the planner: resolve from input size and memory.
AUTO_CODEC = "auto"

#: Wire ids for the RBLC block header (0 is reserved: "none" blocks are
#: never RBLC-framed, they use the plain text / RBLK framings).
CODEC_IDS: Dict[str, int] = {
    "zlib": 1,
    "lzma": 2,
    "front": 3,
    "front+zlib": 4,
}

CODEC_NAMES: Dict[int, str] = {value: key for key, value in CODEC_IDS.items()}


class SpillCodecError(ValueError):
    """A stored block body failed to decode back to its raw body.

    Raised for any structural problem — undecodable zlib/lzma streams,
    front-coded records that overrun the stored body, raw-length
    mismatches.  :mod:`repro.engine.block_io` maps it onto
    ``CorruptBlockError`` with the file/block/offset context this
    module does not have.
    """


def validate_codec(codec: str, allow_auto: bool = False) -> str:
    """Return ``codec`` if known, else raise ``ValueError``."""
    if codec == AUTO_CODEC:
        if allow_auto:
            return codec
        raise ValueError(
            "codec 'auto' must be resolved by the planner before it "
            "reaches the spill layer"
        )
    if codec not in SPILL_CODECS:
        known = ", ".join(SPILL_CODECS)
        raise ValueError(f"unknown spill codec {codec!r} (expected one of {known})")
    return codec


def _write_varint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise SpillCodecError("front-coded body ends inside a varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise SpillCodecError("front-coded varint exceeds 64 bits")


def _common_prefix_len(a: bytes, b: bytes) -> int:
    """Longest common prefix of two byte strings.

    Binary search over C-level slice comparisons: O(log n) slice
    compares instead of a Python loop per byte.
    """
    limit = min(len(a), len(b))
    if a[:limit] == b[:limit]:
        return limit
    lo, hi = 0, limit - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if a[:mid] == b[:mid]:
            lo = mid
        else:
            hi = mid - 1
    return lo


def front_encode(parts: Sequence[bytes]) -> bytes:
    """Front-code per-record byte strings into one stored body."""
    out = bytearray()
    prev = b""
    for part in parts:
        prefix = _common_prefix_len(prev, part)
        _write_varint(out, prefix)
        _write_varint(out, len(part) - prefix)
        out += part[prefix:]
        prev = part
    return bytes(out)


def front_decode(data: bytes, count: int) -> bytes:
    """Rebuild the raw body from ``count`` front-coded records."""
    chunks: List[bytes] = []
    prev = b""
    pos = 0
    for _ in range(count):
        prefix, pos = _read_varint(data, pos)
        suffix_len, pos = _read_varint(data, pos)
        if prefix > len(prev):
            raise SpillCodecError(
                f"front-coded record claims a {prefix}-byte shared prefix "
                f"but the previous record has only {len(prev)} bytes"
            )
        end = pos + suffix_len
        if end > len(data):
            raise SpillCodecError("front-coded suffix overruns the stored body")
        prev = prev[:prefix] + data[pos:end]
        pos = end
        chunks.append(prev)
    if pos != len(data):
        raise SpillCodecError(
            f"{len(data) - pos} trailing bytes after the last front-coded record"
        )
    return b"".join(chunks)


def compress_body(codec: str, body: bytes, parts: Sequence[bytes]) -> bytes:
    """Encode one block's raw ``body`` under ``codec``.

    ``parts`` are the per-record byte strings whose concatenation is
    ``body``; only the front-coding codecs look at them.
    """
    if codec == "zlib":
        return zlib.compress(body, 1)
    if codec == "lzma":
        return lzma.compress(body, preset=0)
    if codec == "front":
        return front_encode(parts)
    if codec == "front+zlib":
        return zlib.compress(front_encode(parts), 1)
    raise ValueError(f"codec {codec!r} has no stored-body encoding")


def decompress_body(codec: str, stored: bytes, raw_len: int, count: int) -> bytes:
    """Decode one stored body back to ``raw_len`` raw bytes.

    Raises :class:`SpillCodecError` for any structural corruption so
    the caller can attach file/block/offset context.
    """
    try:
        if codec == "zlib":
            raw = zlib.decompress(stored)
        elif codec == "lzma":
            raw = lzma.decompress(stored)
        elif codec == "front":
            raw = front_decode(stored, count)
        elif codec == "front+zlib":
            raw = front_decode(zlib.decompress(stored), count)
        else:
            raise ValueError(f"codec {codec!r} has no stored-body decoding")
    except (zlib.error, lzma.LZMAError) as exc:
        raise SpillCodecError(f"{codec} stream failed to decompress: {exc}") from exc
    if len(raw) != raw_len:
        raise SpillCodecError(
            f"decoded body is {len(raw)} bytes, header promised {raw_len}"
        )
    return raw
