"""Sort planner and the :class:`SortEngine` facade (DESIGN.md §9).

One entry point for every sorting backend in the repository.  Given a
memory budget, a worker count, a :class:`~repro.core.records.
RecordFormat` and (when known) the input size, :func:`plan_sort` picks

* an **execution mode** — ``in_memory`` (the whole input fits in the
  sort budget), ``spill`` (:class:`~repro.sort.spill.FileSpillSort`),
  or ``parallel`` (:class:`~repro.sort.parallel.PartitionedSort`) —
  and
* a **merge reading strategy** for the final real-file k-way merge
  (:mod:`repro.engine.merge_reading`), trading prefetch overhead
  against read stalls.

The decision table (also in DESIGN.md §9):

========================  ===========  ==========================
condition                 mode         final-merge reading (auto)
========================  ===========  ==========================
``workers > 1``           parallel     forecasting
``n <= memory``           in_memory    — (no merge happens)
``n <= memory * fan_in``  spill        naive (single warm pass)
otherwise / n unknown     spill        forecasting
========================  ===========  ==========================

When the input size is unknown the engine *probes*: it buffers up to
``memory + 1`` records before deciding, so tiny inputs are sorted in
memory without ever touching the disk and anything larger streams
through the spill backend with the probe chained back in front.

The engine also owns the format-compatibility rule for 2WRS: the
victim buffer's gap arithmetic needs numeric records, so for
non-numeric formats (str, delimited rows) a 2WRS spec is rebuilt with
``buffer_setup="input"`` (the mean heuristic already degrades
gracefully by itself).
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, replace
from itertools import chain, islice
from typing import Any, Iterable, Iterator, List, Optional, Sequence, TextIO

from repro.core.config import RECOMMENDED, GeneratorSpec
from repro.core.records import INT, RecordFormat, binary_format
from repro.engine.block_io import (
    DEFAULT_BLOCK_RECORDS,
    BlockWriter,
    iter_records,
    validate_block_records,
)
from repro.engine.merge_reading import validate_reading
from repro.engine.spill_codec import AUTO_CODEC, validate_codec
from repro.merge.kway import MergeCounter, validate_merge_params
from repro.merge.merge_tree import DEFAULT_FAN_IN
from repro.runs.base import log_cost
from repro.sort.external import (
    DEFAULT_CPU_OP_TIME,
    ExternalSort,
    PhaseReport,
    SortReport,
)
from repro.sort.spill import DEFAULT_BUFFER_RECORDS

#: Execution modes a plan can select.
SORT_MODES = ("in_memory", "spill", "parallel")

#: ``reading="auto"`` resolves against this sentinel set.
AUTO_READING = "auto"


def _resolve_codec(
    codec: str,
    input_records: Optional[int],
    memory: int,
    fan_in: int,
) -> str:
    """The planner's codec row (DESIGN.md §15).

    A single warm merge pass re-reads every spill byte exactly once,
    so only the near-free front coding pays for itself; once the input
    exceeds ``memory * fan_in`` (or is unknown) intermediate passes
    multiply the I/O and the cheap byte compressor joins in.  The
    heavy ``lzma`` codec is never chosen automatically — its CPU cost
    only wins on storage this simulation does not model (network or
    heavily contended disks), so it stays an explicit override.
    """
    if codec != AUTO_CODEC:
        return codec
    if input_records is not None and input_records <= memory * fan_in:
        return "front"
    return "front+zlib"


@dataclass(frozen=True, slots=True)
class SortPlan:
    """The planner's decision for one sort."""

    mode: str
    reading: Optional[str]
    fan_in: int
    buffer_records: int
    workers: int
    reason: str
    #: Spill codec for the chosen mode (DESIGN.md §15); ``None`` for
    #: the in-memory mode, which writes no spill files at all.
    codec: Optional[str] = "none"


def plan_sort(
    *,
    memory: int,
    workers: int = 1,
    input_records: Optional[int] = None,
    fan_in: int = DEFAULT_FAN_IN,
    buffer_records: int = DEFAULT_BUFFER_RECORDS,
    reading: str = AUTO_READING,
    codec: str = "none",
) -> SortPlan:
    """Apply the decision table; see the module docstring."""
    validate_merge_params(fan_in, buffer_records)
    if memory < 1:
        raise ValueError(f"memory must be >= 1, got {memory}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if reading != AUTO_READING:
        validate_reading(reading)
    validate_codec(codec, allow_auto=True)

    if workers > 1:
        resolved = reading if reading != AUTO_READING else "forecasting"
        return SortPlan(
            mode="parallel",
            reading=resolved,
            fan_in=fan_in,
            buffer_records=buffer_records,
            workers=workers,
            reason=f"workers={workers} requested",
            codec=_resolve_codec(codec, input_records, memory, fan_in),
        )
    if input_records is not None and input_records <= memory:
        return SortPlan(
            mode="in_memory",
            reading=None,
            fan_in=fan_in,
            buffer_records=buffer_records,
            workers=1,
            reason=f"{input_records} records fit the {memory}-record budget",
            codec=None,
        )
    if reading != AUTO_READING:
        resolved = reading
        why = f"requested reading={reading}"
    elif input_records is not None and input_records <= memory * fan_in:
        # A single merge pass over files written moments ago: the page
        # cache is warm, prefetch threads would be pure overhead.
        resolved = "naive"
        why = "single warm merge pass"
    else:
        resolved = "forecasting"
        why = "large or unknown input; prefetch hides read latency"
    return SortPlan(
        mode="spill",
        reading=resolved,
        fan_in=fan_in,
        buffer_records=buffer_records,
        workers=1,
        reason=why,
        codec=_resolve_codec(codec, input_records, memory, fan_in),
    )


#: Operators :func:`plan_operator` knows how to place.
OPERATORS = ("distinct", "aggregate", "join", "topk", "merge")


@dataclass(frozen=True, slots=True)
class OperatorPlan:
    """The planner's decision for one relational operator.

    ``mode`` is ``"heap"`` for the top-k bounded-heap short-circuit
    (no sort happens at all), ``"in_memory"`` when the underlying sort
    fits the memory budget, and ``"sort"`` when the operator streams
    over an external (spilling or parallel) sort.  ``sort_plan`` is the
    delegated :class:`SortPlan` for the non-heap modes.
    """

    operator: str
    mode: str
    k: Optional[int]
    sort_plan: Optional[SortPlan]
    reason: str


def plan_operator(
    *,
    operator: str,
    memory: int,
    workers: int = 1,
    input_records: Optional[int] = None,
    k: Optional[int] = None,
    fan_in: int = DEFAULT_FAN_IN,
    buffer_records: int = DEFAULT_BUFFER_RECORDS,
    reading: str = AUTO_READING,
    codec: str = "none",
) -> OperatorPlan:
    """Decision table for the sort-based operators (DESIGN.md §12).

    ==============================  ==========  =======================
    condition                       mode        executed as
    ==============================  ==========  =======================
    ``topk`` and ``k <= memory``    heap        bounded max-heap scan,
                                                no sort, no spill
    sort plan says ``in_memory``    in_memory   ``sorted()`` + stream
    otherwise                       sort        external sort, operator
                                                folds the final merge
    ==============================  ==========  =======================

    Everything below the first row delegates to :func:`plan_sort`, so
    the probe logic (buffer ``memory + 1`` records when the input size
    is unknown) and the reading-strategy choice are exactly the sort
    planner's.  The heap short-circuit only applies serially: a
    parallel top-k still routes through the partitioned sort so its
    output is produced by the same machinery it is compared against.
    """
    if operator not in OPERATORS:
        raise ValueError(
            f"unknown operator {operator!r}; known: {', '.join(OPERATORS)}"
        )
    if operator == "topk":
        if k is None or k < 0:
            raise ValueError(f"topk needs k >= 0, got {k}")
        if k <= memory and workers == 1:
            return OperatorPlan(
                operator="topk",
                mode="heap",
                k=k,
                sort_plan=None,
                reason=(
                    f"k={k} fits the {memory}-record budget; bounded "
                    f"heap scan, no sort"
                ),
            )
    sort_plan = plan_sort(
        memory=memory,
        workers=workers,
        input_records=input_records,
        fan_in=fan_in,
        buffer_records=buffer_records,
        reading=reading,
        codec=codec,
    )
    mode = "in_memory" if sort_plan.mode == "in_memory" else "sort"
    return OperatorPlan(
        operator=operator,
        mode=mode,
        k=k,
        sort_plan=sort_plan,
        reason=sort_plan.reason,
    )


def spec_for_format(
    spec: GeneratorSpec, record_format: RecordFormat
) -> GeneratorSpec:
    """Adjust a 2WRS spec for formats whose records lack arithmetic.

    The victim buffer computes numeric gaps between records; for
    non-numeric formats the spec is rebuilt with the input-buffer-only
    setup (order-based routing works for any comparable keys).
    """
    if record_format.numeric or spec.algorithm != "2wrs":
        return spec
    two_way = spec.two_way if spec.two_way is not None else RECOMMENDED
    if two_way.buffer_setup == "input":
        return spec if spec.two_way is not None else replace(
            spec, two_way=two_way
        )
    return replace(spec, two_way=replace(two_way, buffer_setup="input"))


class SortEngine:
    """Facade over every sort backend behind one plan and one report.

    Parameters
    ----------
    spec:
        Generator recipe (algorithm + memory + 2WRS factors).
    record_format:
        Typed record serialisation and key extraction (integers by
        default; see :mod:`repro.core.records`).
    binary_spill:
        Wrap the format in :class:`~repro.core.records.
        BinaryRecordFormat`: records decode once into ``(normalized
        key bytes, payload bytes)`` pairs, every spill / shard /
        partition file uses length-prefixed binary blocks, and every
        comparison from run generation to the final merge heap is one
        C-level ``bytes`` compare (DESIGN.md §14).  The engine's
        *boundaries* — ``sort_stream`` input and output,
        ``merge_files`` inputs, the operator facades' text emission —
        stay plain text, so output is byte-identical either way.
        Records flowing through :meth:`sort` itself are the binary
        pairs (:attr:`record_format` is the wrapper; use its
        ``base_record`` to get the original record back).
    workers / partition / sample_records:
        Parallel decomposition knobs (:class:`PartitionedSort`).
    fan_in / buffer_records:
        Merge tree width and per-run read-buffer records.
    block_records:
        Records per encode/decode batch on the engine's own input and
        output streams (:meth:`sort_stream`).
    reading:
        Final-merge reading strategy, or ``"auto"`` to let the planner
        choose (see :func:`plan_sort`).
    checksum:
        Per-block CRC-32 headers on every spill, shard and partition
        file (DESIGN.md §11): a torn or bit-flipped block fails the
        merge loudly with file + offset instead of corrupting output.
    work_dir / input_fingerprint:
        Durable mode (DESIGN.md §11): spilling backends journal their
        progress under the stable ``work_dir`` (kept on failure,
        removed on success) so ``sort(..., resume=True)`` can skip
        every run or shard that survived a previous attempt.
        ``input_fingerprint`` ties the journal to one input; the CLI
        passes path + size + mtime.
    tmp_dir / total_memory / cpu_op_time:
        Passed through to the chosen backend.

    After a sort is fully consumed, :attr:`report` holds the unified
    :class:`SortReport`, :attr:`plan` the decision that was executed,
    and :attr:`merge_passes` / :attr:`max_resident_records` /
    :attr:`max_open_readers` / :attr:`reading_stats` the merge-side
    instrumentation (zeros for the in-memory mode).  :attr:`backend`
    is the underlying sorter (None for in-memory), for callers that
    need backend-specific detail (per-worker reports, cut points).
    """

    def __init__(
        self,
        spec: GeneratorSpec,
        *,
        record_format: RecordFormat = INT,
        binary_spill: bool = False,
        workers: int = 1,
        partition: str = "hash",
        sample_records: Optional[int] = None,
        fan_in: int = DEFAULT_FAN_IN,
        buffer_records: int = DEFAULT_BUFFER_RECORDS,
        block_records: int = DEFAULT_BLOCK_RECORDS,
        reading: str = AUTO_READING,
        checksum: bool = False,
        spill_codec: str = "none",
        work_dir: Optional[str] = None,
        input_fingerprint: Optional[str] = None,
        tmp_dir: Optional[str] = None,
        total_memory: Optional[int] = None,
        cpu_op_time: float = DEFAULT_CPU_OP_TIME,
    ) -> None:
        validate_merge_params(fan_in, buffer_records)
        validate_block_records(block_records)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if binary_spill:
            record_format = binary_format(record_format)
        self.binary_spill = binary_spill
        self.spec = spec_for_format(spec, record_format)
        self.record_format = record_format
        self.workers = workers
        self.partition = partition
        self.sample_records = sample_records
        self.fan_in = fan_in
        self.buffer_records = buffer_records
        self.block_records = block_records
        self.reading = reading
        self.checksum = checksum
        #: Spill codec (DESIGN.md §15); ``"auto"`` lets the planner
        #: choose per sort from input size and memory budget.
        self.spill_codec = validate_codec(spill_codec, allow_auto=True)
        self.work_dir = work_dir
        self.input_fingerprint = input_fingerprint
        self.tmp_dir = tmp_dir
        self.total_memory = total_memory
        self.cpu_op_time = cpu_op_time
        self._resume = False
        # -- filled in by sort() / merge_files() --
        self.plan: Optional[SortPlan] = None
        self.backend: Optional[Any] = None
        self.report: Optional[SortReport] = None
        self.merge_passes = 0
        self.max_resident_records = 0
        self.max_open_readers = 0
        self.reading_stats = None
        #: Durable-mode reuse accounting of the last sort (zeros for
        #: fresh or non-durable sorts).
        self.runs_reused = 0
        self.merges_reused = 0
        self.shards_reused = 0

    # -- public API --------------------------------------------------------------

    def sort(
        self,
        records: Iterable[Any],
        input_records: Optional[int] = None,
        resume: bool = False,
    ) -> Iterator[Any]:
        """Lazily yield ``records`` in ascending order.

        ``input_records`` (when the caller knows it) lets the planner
        decide without probing; otherwise up to ``memory + 1`` records
        are buffered to tell tiny inputs from spilling ones.

        ``resume=True`` (requires ``work_dir``) reuses a compatible
        journal left behind by a previous failed attempt: surviving
        runs / shards are verified and skipped, and the output is
        byte-identical to an uninterrupted sort.  Inputs small enough
        to sort in memory never have anything to resume.
        """
        if resume and self.work_dir is None:
            raise ValueError("resume=True requires a work_dir")
        self._resume = resume
        self.runs_reused = 0
        self.merges_reused = 0
        self.shards_reused = 0
        stream = iter(records)
        memory = self.spec.memory
        if self.workers > 1 or input_records is not None:
            plan = self._plan(input_records)
        else:
            probe = list(islice(stream, memory + 1))
            plan = self._plan(len(probe) if len(probe) <= memory else None)
            stream = chain(probe, stream)
        self.plan = plan
        if plan.mode == "in_memory":
            return self._sort_in_memory(stream)
        if plan.mode == "parallel":
            return self._sort_parallel(stream)
        return self._sort_spill(stream)

    def sort_stream(
        self, source: TextIO, sink: TextIO, resume: bool = False
    ) -> int:
        """Decode ``source``, sort, encode into ``sink``; return length.

        Both directions move in blocks of :attr:`block_records`
        records; blank input lines are tolerated (the CLI's historical
        contract).  ``resume`` is forwarded to :meth:`sort`.
        """
        records = iter_records(
            source, self.record_format, self.block_records, skip_blank=True,
            binary=False,
        )
        writer = BlockWriter(
            sink, self.record_format, self.block_records, binary=False
        )
        writer.write_all(self.sort(records, resume=resume))
        writer.flush()
        return writer.written

    def merge_files(self, paths: Sequence[str]) -> Iterator[Any]:
        """Merge already-sorted files into one ascending stream.

        Input files are read, never deleted; intermediate passes (when
        ``len(paths) > fan_in``) spill to a private temp directory.
        :attr:`report` afterwards carries the merge phase only.
        """
        from repro.sort.spill import SpilledRun, SpillSession, merge_spilled_runs

        session = SpillSession(
            tempfile.mkdtemp(prefix="repro-merge-", dir=self.tmp_dir),
            checksum=self.checksum,
            # Caller files carry no size information, so "auto" falls
            # back to raw for the merge's intermediate spills; an
            # explicit codec is honoured.
            codec=(
                "none" if self.spill_codec == AUTO_CODEC
                else self.spill_codec
            ),
        )
        reading = self._resolved_reading(len(paths))
        counter = MergeCounter()
        # Input files are caller-provided plain text (no CLI path emits
        # checksummed outputs), so never expect block headers in them —
        # the session's own intermediate spills still checksum when the
        # engine asks for it — and tolerate blank separator lines for
        # formats whose records cannot be whitespace, the same `sort`
        # input contract.
        runs = [
            SpilledRun(
                session, path, 0, self.record_format, self.buffer_records,
                keep=True, checksum=False,
                skip_blank=self.record_format.blank_input_skippable,
                binary=False, codec="none",
            )
            for path in paths
        ]
        report = SortReport(algorithm=f"MERGE[{len(paths)}]", records=0)
        try:
            started = time.perf_counter()
            count = 0
            for record in merge_spilled_runs(
                session, runs, counter, self.record_format,
                self.fan_in, self.buffer_records, reading,
            ):
                count += 1
                yield record
            report.records = count
            report.merge_phase = PhaseReport(
                cpu_ops=counter.cpu_ops,
                cpu_time=counter.cpu_ops * self.cpu_op_time,
                wall_time=time.perf_counter() - started,
            )
            self.report = report
        finally:
            report.spill_raw_bytes = session.spill_raw_bytes
            report.spill_disk_bytes = session.spill_disk_bytes
            self._capture_session(session)
            session.cleanup()

    # -- relational operator facades (repro.ops; DESIGN.md §12) ----------------

    def sibling(
        self,
        record_format: Optional[RecordFormat] = None,
        work_dir_suffix: Optional[str] = None,
        input_fingerprint: Optional[str] = None,
    ) -> "SortEngine":
        """A fresh engine sharing this engine's knobs.

        Two-input operators (the sort-merge join) need one engine per
        input: each ``sort()`` owns per-engine report and backend
        state.  A durable engine's sibling gets its own work directory
        (``work_dir + work_dir_suffix``) so the two journals never
        collide.
        """
        work_dir = self.work_dir
        if work_dir is not None and work_dir_suffix:
            work_dir = work_dir + work_dir_suffix
        return SortEngine(
            self.spec,
            record_format=record_format or self.record_format,
            # binary_format() is idempotent, so an already-wrapped
            # self.record_format round-trips unchanged.
            binary_spill=self.binary_spill,
            workers=self.workers,
            partition=self.partition,
            sample_records=self.sample_records,
            fan_in=self.fan_in,
            buffer_records=self.buffer_records,
            block_records=self.block_records,
            reading=self.reading,
            checksum=self.checksum,
            spill_codec=self.spill_codec,
            work_dir=work_dir,
            input_fingerprint=input_fingerprint,
            tmp_dir=self.tmp_dir,
            total_memory=self.total_memory,
            cpu_op_time=self.cpu_op_time,
        )

    def _run_operator(self, op: Any, *args: Any, **kwargs: Any) -> Iterator[Any]:
        self._last_operator = op
        return op.run(*args, **kwargs)

    @property
    def operator_report(self) -> Optional[Any]:
        """The :class:`~repro.ops.OperatorReport` of the last facade
        operator, once its stream is fully consumed (None before)."""
        op = getattr(self, "_last_operator", None)
        return op.report if op is not None else None

    def distinct(
        self,
        records: Iterable[Any],
        by: str = "record",
        input_records: Optional[int] = None,
        resume: bool = False,
    ) -> Iterator[Any]:
        """Lazily yield the distinct records (or keys) in sorted order."""
        from repro.ops.distinct import Distinct

        return self._run_operator(
            Distinct(self, by=by), records,
            input_records=input_records, resume=resume,
        )

    def aggregate(
        self,
        records: Iterable[Any],
        aggregates: Sequence[str] = ("count",),
        value_column: Optional[int] = None,
        input_records: Optional[int] = None,
        resume: bool = False,
    ) -> Iterator[str]:
        """Group by the format's key; yield one aggregate row per group."""
        from repro.ops.aggregate import GroupByAggregate

        return self._run_operator(
            GroupByAggregate(
                self, aggregates=aggregates, value_column=value_column
            ),
            records, input_records=input_records, resume=resume,
        )

    def join(
        self,
        left_records: Iterable[Any],
        right_records: Iterable[Any],
        right_engine: Optional["SortEngine"] = None,
        right_format: Optional[RecordFormat] = None,
        buffer_limit: Optional[int] = None,
        resume: bool = False,
    ) -> Iterator[str]:
        """Sort-merge equi-join; yields combined output rows."""
        from repro.ops.join import SortMergeJoin

        if right_engine is None:
            right_engine = self.sibling(
                record_format=right_format, work_dir_suffix="-right"
            )
        return self._run_operator(
            SortMergeJoin(self, right_engine, buffer_limit=buffer_limit),
            left_records, right_records, resume=resume,
        )

    def topk(
        self,
        records: Iterable[Any],
        k: int,
        input_records: Optional[int] = None,
        resume: bool = False,
    ) -> Iterator[Any]:
        """The ``k`` smallest records, ascending (``sort | head -k``)."""
        from repro.ops.topk import TopK

        return self._run_operator(
            TopK(self, k), records,
            input_records=input_records, resume=resume,
        )

    @staticmethod
    def simulate(
        spec: GeneratorSpec,
        records: Iterable[Any],
        fan_in: int = DEFAULT_FAN_IN,
    ) -> SortReport:
        """Run the *simulated* pipeline (:class:`ExternalSort`) once.

        The fourth backend behind the facade: analytic CPU + simulated
        disk timings for experiment harnesses and ``repro runs
        --report``.
        """
        generator = spec.build()
        pipeline = ExternalSort(generator, fan_in=fan_in)
        _, report = pipeline.sort(iter(records))
        return report

    # -- internals -----------------------------------------------------------------

    def _plan(self, input_records: Optional[int]) -> SortPlan:
        return plan_sort(
            memory=self.spec.memory,
            workers=self.workers,
            input_records=input_records,
            fan_in=self.fan_in,
            buffer_records=self.buffer_records,
            reading=self.reading,
            codec=self.spill_codec,
        )

    def _plan_codec(self) -> str:
        """The resolved codec of the current plan (backends need a
        concrete name, never ``"auto"``)."""
        if self.plan is not None and self.plan.codec is not None:
            return self.plan.codec
        return "none" if self.spill_codec == AUTO_CODEC else self.spill_codec

    def _resolved_reading(self, n_runs: int) -> str:
        if self.reading != AUTO_READING:
            return self.reading
        return "naive" if n_runs <= 1 else "forecasting"

    def _capture_session(self, session: Any) -> None:
        self.merge_passes = session.merge_passes
        self.max_resident_records = session.max_resident_records
        self.max_open_readers = session.max_open_readers
        self.reading_stats = session.reading_stats

    def _sort_in_memory(self, stream: Iterable[Any]) -> Iterator[Any]:
        started = time.perf_counter()
        data = sorted(stream)
        n = len(data)
        # Analytic cost of an n log n sort, so in-memory reports stay
        # comparable with the generators' heap accounting.
        cpu_ops = n * log_cost(n) if n else 0
        report = SortReport(
            algorithm="MEM",
            records=n,
            runs=1 if n else 0,
            run_lengths=[n] if n else [],
        )
        report.run_phase = PhaseReport(
            cpu_ops=cpu_ops,
            cpu_time=cpu_ops * self.cpu_op_time,
            wall_time=time.perf_counter() - started,
        )
        self.backend = None
        self.merge_passes = 0
        self.max_resident_records = 0
        self.max_open_readers = 0
        self.reading_stats = None
        self.report = report
        return iter(data)

    def _sort_spill(self, stream: Iterable[Any]) -> Iterator[Any]:
        assert self.plan is not None  # set by sort() before dispatch
        if self.work_dir is not None:
            # Durable serial sorting swaps the run generator for the
            # journaled chunk-aligned one (DESIGN.md §11): exact resume
            # needs run boundaries that map back to input positions.
            from repro.engine.resilience import ResumableSpillSort

            backend = ResumableSpillSort(
                memory=self.spec.memory,
                work_dir=self.work_dir,
                fan_in=self.fan_in,
                buffer_records=self.buffer_records,
                record_format=self.record_format,
                reading=self.plan.reading,
                checksum=self.checksum,
                resume=self._resume,
                input_fingerprint=self.input_fingerprint,
                cpu_op_time=self.cpu_op_time,
                spill_codec=self._plan_codec(),
            )
            self.backend = backend
            return self._finishing(backend, backend.sort(stream))
        from repro.sort.spill import FileSpillSort

        backend = FileSpillSort(
            self.spec.build(),
            fan_in=self.fan_in,
            buffer_records=self.buffer_records,
            tmp_dir=self.tmp_dir,
            record_format=self.record_format,
            reading=self.plan.reading,
            checksum=self.checksum,
            cpu_op_time=self.cpu_op_time,
            spill_codec=self._plan_codec(),
        )
        self.backend = backend
        return self._finishing(backend, backend.sort(stream))

    def _sort_parallel(self, stream: Iterable[Any]) -> Iterator[Any]:
        assert self.plan is not None  # set by sort() before dispatch
        from repro.sort.parallel import PartitionedSort

        kwargs = {}
        if self.sample_records is not None:
            kwargs["sample_records"] = self.sample_records
        backend = PartitionedSort(
            self.spec,
            workers=self.workers,
            partition=self.partition,
            fan_in=self.fan_in,
            buffer_records=self.buffer_records,
            tmp_dir=self.tmp_dir,
            record_format=self.record_format,
            reading=self.plan.reading,
            total_memory=self.total_memory,
            checksum=self.checksum,
            work_dir=self.work_dir,
            resume=self._resume,
            input_fingerprint=self.input_fingerprint,
            cpu_op_time=self.cpu_op_time,
            spill_codec=self._plan_codec(),
            **kwargs,
        )
        self.backend = backend
        return self._finishing(backend, backend.sort(stream))

    def _finishing(self, backend: Any, merged: Iterator[Any]) -> Iterator[Any]:
        """Stream a backend's output, then mirror its instrumentation."""
        try:
            yield from merged
        finally:
            self.report = backend.report
            self.merge_passes = backend.merge_passes
            self.max_resident_records = backend.max_resident_records
            self.max_open_readers = backend.max_open_readers
            self.reading_stats = backend.reading_stats
            self.runs_reused = getattr(backend, "runs_reused", 0)
            self.merges_reused = getattr(backend, "merges_reused", 0)
            self.shards_reused = getattr(backend, "shards_reused", 0)
