"""Crash-safe resumable external sorting (DESIGN.md §11).

The streaming backends of PR 1–3 treat their temp directory as
disposable: any failure — a worker death, a full disk, a torn write —
throws away every spilled run and the whole sort starts over.  This
module adds the durable variant:

* :class:`SortJournal` — an append-only JSONL manifest in the sort's
  *work directory*.  Each completed spill run (and each completed
  intermediate merge) is recorded with its file name, record count and
  CRC-32 as soon as it is durable (``fsync`` before journal append),
  so the manifest never claims data that does not exist.  A torn
  trailing line — the crash happened mid-append — is tolerated and
  simply dropped.
* :class:`ResumableSpillSort` — a serial external sort whose run
  boundaries are aligned to the input: run *i* is the sorted ``i``-th
  chunk of ``memory`` consecutive input records.  That alignment is
  what makes exact resume possible with bounded memory: a journaled
  run tells the resumed sort precisely which input records it covers,
  so generation replays the input, *skips the sorting and writing* of
  every surviving valid run, regenerates any missing or corrupt one
  from its chunk, and restarts the merge from the surviving
  intermediate merge outputs.  (Replacement selection produces longer
  runs but scatters a run's records across an unbounded input window —
  the classic durability/run-length trade, see DESIGN.md §11.)
* Shard **completion markers** — the parallel backend's equivalent:
  each worker, after fsyncing its sorted shard file, atomically writes
  a ``<shard>.ok`` sidecar with the shard's record count and CRC-32.
  On resume the parent verifies the markers and only re-sorts the
  shards that are missing or fail verification.

Everything here verifies before trusting: a journaled artifact is only
reused after its on-disk bytes re-hash to the recorded CRC-32, so a
bit-flipped surviving run is regenerated, not merged.

The final sorted output is deterministic for a given input and record
format (ties in the merge heap are broken by stream index, and equal
records encode identically), so a resumed sort emits output
byte-identical to the uninterrupted one — ``tests/test_resilience.py``
and the fault matrix in ``tests/test_faults.py`` assert this by
SHA-256 for every injected fault point.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import zlib
from contextlib import contextmanager
from itertools import islice
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

from repro.core.records import INT, RecordFormat
from repro.engine.block_io import (
    BlockWriter,
    open_run,
    open_text,
    validate_block_records,
    write_block_file,
)
from repro.engine.errors import JournalError, SortError
from repro.engine.merge_reading import validate_reading
from repro.engine.spill_codec import validate_codec
from repro.merge.kway import MergeCounter, kway_merge, validate_merge_params
from repro.merge.merge_tree import DEFAULT_FAN_IN
from repro.runs.base import log_cost
from repro.sort.external import DEFAULT_CPU_OP_TIME, PhaseReport, SortReport
from repro.sort.spill import (
    DEFAULT_BUFFER_RECORDS,
    SpilledRun,
    SpillSession,
    merge_spilled_runs,
)

__all__ = [
    "JOURNAL_NAME",
    "MARKER_SUFFIX",
    "ResumableSpillSort",
    "SortJournal",
    "atomic_output",
    "file_crc32",
    "read_marker",
    "write_marker",
]

#: Manifest file name inside a durable work directory.
JOURNAL_NAME = "sort.journal"

#: Sidecar suffix of a shard completion marker.
MARKER_SUFFIX = ".ok"

#: Journal schema version (bumped on incompatible entry changes).
JOURNAL_VERSION = 1


def file_crc32(path: str, chunk_bytes: int = 1 << 20) -> int:
    """Streaming CRC-32 of a file's raw bytes (resume verification)."""
    crc = 0
    # repro: lint-waive R002 binary CRC verification read must see the raw bytes, outside the fault/CRC seam
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_bytes)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


def artifact_valid(path: str, records: int, crc: int) -> bool:
    """True when a journaled artifact survived intact on disk."""
    try:
        if not os.path.isfile(path):
            return False
        return file_crc32(path) == crc
    except OSError:
        return False


def write_marker(path: str, payload: Dict[str, Any]) -> None:
    """Atomically persist a completion marker (write + fsync + rename).

    The rename is the commit point: a crash at any earlier moment
    leaves no marker, so a half-written shard can never be mistaken
    for a finished one.
    """
    tmp = path + ".tmp"
    # repro: lint-waive R002 completion markers are recovery metadata; injecting faults here would fake the commit point itself
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


@contextmanager
def atomic_output(path: str) -> Iterator[TextIO]:
    """Atomically publish a final output file (write → fsync → rename).

    The §11 commit-point rule applied to the user-visible output
    itself: the body writes ``path + ".tmp"`` — through the block-I/O
    seam, so the fault harness can kill a publish mid-write — and only
    after a flush and fsync does ``os.replace`` make it visible at
    ``path``.  A crash, injected fault, or sort error at any earlier
    moment leaves the target path exactly as it was (absent, or the
    previous complete output) and removes the partial temp file; a
    truncated file with exit-looking contents can never appear at the
    published path.
    """
    tmp = path + ".tmp"
    handle = open_text(tmp, "w")
    try:
        yield handle
    except BaseException:
        try:
            handle.close()
        finally:
            try:
                os.remove(tmp)
            except OSError:
                pass
        raise
    handle.flush()
    os.fsync(handle.fileno())
    handle.close()
    os.replace(tmp, path)


def read_marker(path: str) -> Optional[Dict[str, Any]]:
    """Load a completion marker; None when absent or unreadable."""
    try:
        # repro: lint-waive R002 marker reads are recovery metadata, deliberately outside the record-block seam
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _wipe_directory(work_dir: str) -> None:
    """Remove every entry inside ``work_dir`` (but keep the directory)."""
    for name in os.listdir(work_dir):
        target = os.path.join(work_dir, name)
        if os.path.isdir(target):
            shutil.rmtree(target, ignore_errors=True)
        else:
            try:
                os.remove(target)
            except OSError:
                pass


class SortJournal:
    """Append-only JSONL run manifest of one durable sort.

    The first entry is always ``meta`` carrying the sort's parameter
    *fingerprint* (format, memory, fan-in, checksum flag, input
    identity…).  :meth:`open_dir` only resumes a journal whose
    fingerprint matches the current sort exactly; anything else — a
    different input file, a changed memory budget, a corrupt manifest —
    wipes the work directory and starts fresh, because mixing runs
    from two configurations would merge silently wrong data.

    Every :meth:`append` flushes and fsyncs, and the loader tolerates
    one torn trailing line (the crash-mid-append case); a torn line
    anywhere *else* means the file did not grow append-only and the
    whole journal is rejected.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.entries: List[Dict[str, Any]] = []
        self._handle: Optional[TextIO] = None

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def open_dir(
        cls, work_dir: str, fingerprint: Dict[str, Any], resume: bool
    ) -> "SortJournal":
        """Open (resuming) or initialise the journal of ``work_dir``."""
        os.makedirs(work_dir, exist_ok=True)
        path = os.path.join(work_dir, JOURNAL_NAME)
        if resume and os.path.exists(path):
            journal = cls(path)
            try:
                journal.entries = cls._load(path)
                meta = journal.entries[0] if journal.entries else {}
                if (
                    meta.get("type") == "meta"
                    and meta.get("version") == JOURNAL_VERSION
                    and meta.get("fingerprint") == fingerprint
                ):
                    journal._open_append()
                    return journal
            except JournalError:
                pass
        # Fresh start: stale artifacts from another configuration (or a
        # rejected journal) must not survive into this attempt.  Never
        # wipe a directory that was not ours: anything non-empty
        # without a journal is the user's data, not sort state.
        if os.listdir(work_dir) and not os.path.exists(path):
            raise JournalError(
                f"work directory {work_dir!r} is not empty and holds no "
                f"sort journal; refusing to wipe it — pass an empty or "
                f"dedicated directory"
            )
        _wipe_directory(work_dir)
        journal = cls(path)
        journal._open_append()
        journal.append(
            {
                "type": "meta",
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
            }
        )
        return journal

    @staticmethod
    def _load(path: str) -> List[Dict[str, Any]]:
        entries: List[Dict[str, Any]] = []
        # repro: lint-waive R002 the journal is the recovery mechanism; wrapping it in the fault seam it arbitrates would be circular
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    break  # torn final append — the crash we planned for
                raise JournalError(
                    f"journal {path!r} is corrupt at line {index + 1}; "
                    f"refusing to resume from it"
                ) from None
        return entries

    def _open_append(self) -> None:
        # Repair a torn final append before extending the file: the
        # loader tolerates (drops) a partial trailing line, but writing
        # after it would fuse two entries into one unparseable mid-file
        # line — poisoning the journal for every later resume.
        try:
            # repro: lint-waive R002 binary in-place torn-tail repair; open_text has no rb+ mode and must not fault-inject the journal
            with open(self.path, "rb+") as repair:
                data = repair.read()
                if data and not data.endswith(b"\n"):
                    repair.truncate(data.rfind(b"\n") + 1)
        except FileNotFoundError:
            pass
        # repro: lint-waive R002 journal appends must bypass the seam they make recoverable; close() owns this handle
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, entry: Dict[str, Any]) -> None:
        """Durably record one entry (write + flush + fsync)."""
        assert self._handle is not None, "journal is not open for append"
        self.entries.append(entry)
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SortJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- queries ---------------------------------------------------------------

    def _last_by_key(self, entry_type: str, key: str) -> Dict[Any, Dict]:
        found: Dict[Any, Dict] = {}
        for entry in self.entries:
            if entry.get("type") == entry_type:
                found[entry.get(key)] = entry
        return found

    def valid_runs(self, work_dir: str) -> Dict[int, Dict[str, Any]]:
        """Journaled generation runs whose files verify on disk."""
        return {
            run_id: entry
            for run_id, entry in self._last_by_key("run", "id").items()
            if artifact_valid(
                os.path.join(work_dir, entry["file"]),
                entry["records"],
                entry["crc32"],
            )
        }

    def valid_merges(
        self, work_dir: str
    ) -> Dict[Tuple[Any, ...], Dict[str, Any]]:
        """Journaled intermediate merges whose outputs verify on disk,
        keyed by the tuple of run ids they consumed."""
        return {
            tuple(entry["inputs"]): entry
            for entry in self._last_by_key("merge", "id").values()
            if artifact_valid(
                os.path.join(work_dir, entry["file"]),
                entry["records"],
                entry["crc32"],
            )
        }

    def runs(self) -> Dict[int, Dict[str, Any]]:
        """All journaled generation-run entries (no disk verification)."""
        return self._last_by_key("run", "id")

    def merges(self) -> Dict[Any, Dict[str, Any]]:
        """All journaled merge entries by id (no disk verification)."""
        return self._last_by_key("merge", "id")

    def runs_done(self) -> Optional[Dict[str, Any]]:
        """The generation-complete entry, when one was reached."""
        done = None
        for entry in self.entries:
            if entry.get("type") == "runs_done":
                done = entry
        return done


class _ResumeState:
    """What a resumed sort may reuse, with supersession reasoning.

    A journaled artifact (generation run ``i`` or merge output
    ``m<j>``) is *available* to the resumed merge schedule when either

    * its file still verifies on disk, or
    * it was **consumed by an available merge** — the crash-consistency
      invariant deletes a merge's inputs only after the output is
      journaled, so a deleted input whose consumer (transitively)
      survives on disk is work that never needs redoing.

    Without the second clause, a crash *after* an intermediate merge
    pass would force regeneration of every input run that pass already
    consumed — re-paying exactly the cost the journal exists to save —
    only for the reused merge output to discard the fresh files unread.
    """

    def __init__(self, journal: SortJournal, work_dir: str) -> None:
        self.work_dir = work_dir
        self.run_entries = journal.runs()
        self.merge_entries = journal.merges()
        self.by_inputs = {
            tuple(entry["inputs"]): entry
            for entry in self.merge_entries.values()
        }
        #: artifact id -> the merge entry that consumed it.
        self.consumer_of = {
            rid: entry
            for entry in self.merge_entries.values()
            for rid in entry["inputs"]
        }
        self._disk: Dict[Any, bool] = {}

    def _disk_valid(self, key: Any, entry: Dict[str, Any]) -> bool:
        cached = self._disk.get(key)
        if cached is None:
            cached = artifact_valid(
                os.path.join(self.work_dir, entry["file"]),
                entry["records"],
                entry["crc32"],
            )
            self._disk[key] = cached
        return cached

    def _covered(self, artifact_id: Any) -> bool:
        """True when a (transitive) consumer merge survives on disk."""
        entry = self.consumer_of.get(artifact_id)
        while entry is not None:
            merge_key = f"m{entry['id']}"
            if self._disk_valid(merge_key, entry):
                return True
            entry = self.consumer_of.get(merge_key)
        return False

    def run_available(self, run_id: int) -> bool:
        entry = self.run_entries.get(run_id)
        if entry is None:
            return False
        return self._disk_valid(run_id, entry) or self._covered(run_id)

    def merge_reusable(self, inputs: Tuple[Any, ...]) -> Optional[Dict]:
        """The journaled merge over ``inputs`` if its output is usable."""
        entry = self.by_inputs.get(inputs)
        if entry is None:
            return None
        merge_key = f"m{entry['id']}"
        if self._disk_valid(merge_key, entry) or self._covered(merge_key):
            return entry
        return None


class ResumableSpillSort:
    """Serial external sort with a durable, restartable work directory.

    The drop-in durable sibling of :class:`~repro.sort.spill.
    FileSpillSort` (same instrumentation surface, so
    :class:`~repro.engine.planner.SortEngine` streams through either),
    with three behavioural differences:

    * **Chunk-aligned run generation** — run *i* is ``sorted()`` over
      input records ``[i*memory, (i+1)*memory)``; deterministic and
      exactly resumable (module docstring).  Reported algorithm name:
      ``CKPT``.
    * **Journaled progress** — every run and intermediate merge is
      fsynced, CRC-recorded and journaled when complete; consumed
      inputs are only deleted *after* their merge output is journaled.
    * **Failure keeps the work directory** — only a fully consumed
      sort removes it; anything else leaves runs + journal behind for
      ``resume=True`` (or ``repro sort --resume``) to pick up.

    ``resume=True`` with a compatible journal skips the sort+write of
    every surviving run (:attr:`runs_reused` / :attr:`merges_reused`
    count the savings); an incompatible or corrupt journal wipes the
    directory and starts fresh.  ``input_fingerprint`` ties the
    journal to one input (the CLI passes path+size+mtime); API callers
    that omit it promise the input stream is unchanged between
    attempts.
    """

    def __init__(
        self,
        *,
        memory: int,
        work_dir: str,
        fan_in: int = DEFAULT_FAN_IN,
        buffer_records: int = DEFAULT_BUFFER_RECORDS,
        record_format: RecordFormat = INT,
        reading: str = "naive",
        checksum: bool = False,
        resume: bool = False,
        input_fingerprint: Optional[str] = None,
        cpu_op_time: float = DEFAULT_CPU_OP_TIME,
        spill_codec: str = "none",
    ) -> None:
        if memory < 1:
            raise ValueError(f"memory must be >= 1, got {memory}")
        validate_merge_params(fan_in, buffer_records)
        validate_block_records(buffer_records)
        self.memory = memory
        self.work_dir = work_dir
        self.fan_in = fan_in
        self.buffer_records = buffer_records
        self.record_format = record_format
        self.reading = validate_reading(reading)
        self.checksum = checksum
        self.resume = resume
        self.input_fingerprint = input_fingerprint
        self.cpu_op_time = cpu_op_time
        #: Spill codec (DESIGN.md §15) for every journaled artifact.
        self.spill_codec = validate_codec(spill_codec)
        # -- instrumentation of the last finished sort --
        self.report: Optional[SortReport] = None
        self.merge_passes = 0
        self.max_resident_records = 0
        self.max_open_readers = 0
        self.reading_stats = None
        #: Runs / intermediate merges skipped thanks to the journal.
        self.runs_reused = 0
        self.merges_reused = 0

    # -- public API --------------------------------------------------------------

    def fingerprint(self) -> Dict[str, Any]:
        """Parameters that must match for a journal to be resumable."""
        return {
            "mode": "spill-ckpt",
            "memory": self.memory,
            "fan_in": self.fan_in,
            "buffer_records": self.buffer_records,
            "checksum": self.checksum,
            "format": self.record_format.name,
            # Binary and text run files are not mutually readable, so a
            # resume across an encoding switch must wipe and start over.
            "encoding": (
                "binary" if getattr(self.record_format, "spill_binary", False)
                else "text"
            ),
            # Codec framings are not mutually readable either: a work
            # dir journaled under one codec must never be resumed under
            # another, so the codec is part of the resume identity.
            "codec": self.spill_codec,
            "input": self.input_fingerprint,
        }

    def sort(self, records: Iterable[Any]) -> Iterator[Any]:
        """Lazily yield ``records`` ascending, journaling as it goes.

        The work directory is created if missing, reused if resuming,
        and removed only when the returned iterator is *fully*
        consumed; a raise or abandonment mid-stream leaves every
        journaled artifact in place for the next attempt.
        """
        os.makedirs(self.work_dir, exist_ok=True)
        journal = SortJournal.open_dir(
            self.work_dir, self.fingerprint(), self.resume
        )
        self._resume_state = _ResumeState(journal, self.work_dir)
        session = SpillSession(
            self.work_dir, checksum=self.checksum, codec=self.spill_codec
        )
        self.runs_reused = 0
        self.merges_reused = 0
        completed = False
        report = None
        try:
            counter = MergeCounter()
            started = time.perf_counter()
            runs, consumed, gen_ops, run_lengths = self._generate_runs(
                records, journal, session
            )
            run_wall = time.perf_counter() - started

            report = SortReport(
                algorithm="CKPT",
                records=consumed,
                runs=len(runs),
                run_lengths=run_lengths,
            )
            report.run_phase = PhaseReport(
                cpu_ops=gen_ops,
                cpu_time=gen_ops * self.cpu_op_time,
                wall_time=run_wall,
            )

            started = time.perf_counter()
            yield from merge_spilled_runs(
                session,
                runs,
                counter,
                self.record_format,
                self.fan_in,
                self.buffer_records,
                self.reading,
                merge_group=self._journaled_merge_group(
                    journal, session, counter
                ),
            )
            report.merge_phase = PhaseReport(
                cpu_ops=counter.cpu_ops,
                cpu_time=counter.cpu_ops * self.cpu_op_time,
                wall_time=time.perf_counter() - started,
            )
            completed = True
        finally:
            # Run-phase stats survive an abandoned or faulted merge.
            if report is not None:
                report.spill_raw_bytes = session.spill_raw_bytes
                report.spill_disk_bytes = session.spill_disk_bytes
                self.report = report
            journal.close()
            self.reading_stats = session.reading_stats
            self.merge_passes = session.merge_passes
            self.max_resident_records = session.max_resident_records
            self.max_open_readers = session.max_open_readers
            if completed:
                session.cleanup()

    # -- internals -----------------------------------------------------------------

    def _run_path(self, run_id: Any) -> str:
        return os.path.join(self.work_dir, f"run-{run_id:06d}.txt")

    def _merge_path(self, merge_id: int) -> str:
        return os.path.join(self.work_dir, f"merge-{merge_id:06d}.txt")

    def _adopt(
        self, session: SpillSession, path: str, length: int, run_id: Any
    ) -> SpilledRun:
        """A journaled file as a merge input the merge must not delete."""
        run = SpilledRun(
            session, path, length, self.record_format, self.buffer_records,
            keep=True,
        )
        run.run_id = run_id
        return run

    def _generate_runs(
        self,
        records: Iterable[Any],
        journal: SortJournal,
        session: SpillSession,
    ) -> Tuple[List[SpilledRun], int, int, List[int]]:
        """Chunk, sort and spill the input — reusing journaled runs.

        Returns ``(runs, records_consumed, cpu_ops, run_lengths)``.
        A journaled run counts as reusable when its file verifies on
        disk *or* a surviving merge already consumed it
        (:class:`_ResumeState`); when a previous attempt finished
        generation and every run is reusable, the input stream is not
        touched at all (the mid-merge-crash fast path).
        """
        state = self._resume_state
        done = journal.runs_done()
        if done is not None and all(
            state.run_available(run_id) for run_id in range(done["runs"])
        ):
            runs = []
            run_lengths = []
            for run_id in range(done["runs"]):
                entry = state.run_entries[run_id]
                runs.append(
                    self._adopt(
                        session,
                        os.path.join(self.work_dir, entry["file"]),
                        entry["records"],
                        run_id,
                    )
                )
                run_lengths.append(entry["records"])
            self.runs_reused = len(runs)
            return runs, done["records"], 0, run_lengths

        stream = iter(records)
        runs: List[SpilledRun] = []
        run_lengths: List[int] = []
        cpu_ops = 0
        consumed = 0
        run_id = 0
        while True:
            chunk = list(islice(stream, self.memory))
            if not chunk:
                break
            consumed += len(chunk)
            entry = state.run_entries.get(run_id)
            path = self._run_path(run_id)
            if (
                entry is not None
                and entry["records"] == len(chunk)
                and state.run_available(run_id)
            ):
                runs.append(self._adopt(session, path, len(chunk), run_id))
                self.runs_reused += 1
            else:
                chunk.sort()
                count, crc = write_block_file(
                    path,
                    chunk,
                    self.record_format,
                    self.buffer_records,
                    checksum=self.checksum,
                    fsync=True,
                    codec=self.spill_codec,
                    session=session,
                )
                journal.append(
                    {
                        "type": "run",
                        "id": run_id,
                        "file": os.path.basename(path),
                        "records": count,
                        "crc32": crc,
                    }
                )
                runs.append(self._adopt(session, path, count, run_id))
                cpu_ops += count * log_cost(count)
            run_lengths.append(len(chunk))
            run_id += 1
        journal.append(
            {"type": "runs_done", "runs": run_id, "records": consumed}
        )
        return runs, consumed, cpu_ops, run_lengths

    def _journaled_merge_group(
        self,
        journal: SortJournal,
        session: SpillSession,
        counter: MergeCounter,
    ) -> Callable[[Sequence["SpilledRun"]], "SpilledRun"]:
        """Build the journaling merge_group for ``merge_spilled_runs``.

        Each intermediate pass node gets a deterministic id (call
        order over the deterministic pass structure of
        ``reduce_to_fan_in``), so a resumed sort matches its groups
        against journaled ones by input-id tuple and skips the ones
        whose outputs survived on disk — or were themselves consumed
        by a surviving later merge (a placeholder run is adopted; it
        is never read, only matched by id in *its* consumer's group).
        Consumed inputs are deleted only after the group's output is
        journaled — the crash-consistency invariant.
        """
        state = self._resume_state
        next_id = iter(range(10**9))

        def merge_group(group: Sequence[SpilledRun]) -> SpilledRun:
            merge_id = next(next_id)
            ids = tuple(run.run_id for run in group)
            entry = state.merge_reusable(ids)
            if entry is not None:
                self.merges_reused += 1
                out = self._adopt(
                    session,
                    os.path.join(self.work_dir, entry["file"]),
                    entry["records"],
                    f"m{entry['id']}",
                )
            else:
                path = self._merge_path(merge_id)
                with open_run(
                    path, "w", self.record_format, codec=self.spill_codec
                ) as handle:
                    writer = BlockWriter(
                        handle,
                        self.record_format,
                        self.buffer_records,
                        checksum=self.checksum,
                        track_crc=True,
                        codec=self.spill_codec,
                    )
                    writer.write_all(
                        kway_merge([run.records() for run in group], counter)
                    )
                    writer.flush()
                    handle.flush()
                    os.fsync(handle.fileno())
                session.spilled(writer.raw_bytes, writer.disk_bytes)
                journal.append(
                    {
                        "type": "merge",
                        "id": merge_id,
                        "inputs": list(ids),
                        "file": os.path.basename(path),
                        "records": writer.written,
                        "crc32": writer.file_crc,
                    }
                )
                out = self._adopt(
                    session, path, writer.written, f"m{merge_id}"
                )
            for run in group:
                try:
                    os.remove(run.path)
                except OSError:
                    pass
            return out

        return merge_group
