"""Unified sort engine: record formats, block I/O, planner, facade.

``repro.engine`` is the layer every sort backend sits behind
(DESIGN.md §9): :mod:`~repro.engine.block_io` moves blocks of records
between files and memory, :mod:`~repro.engine.merge_reading` ports the
paper's §3.7.2 merge reading strategies to real file handles,
:mod:`~repro.engine.planner` picks a backend (in-memory, spill,
partitioned-parallel) and exposes the :class:`~repro.engine.planner.
SortEngine` facade the CLI and experiments drive, and
:mod:`~repro.engine.resilience` makes the spilling backends
crash-safe and resumable (DESIGN.md §11).
"""

from typing import Any

from repro.engine.block_io import (
    DEFAULT_BLOCK_RECORDS,
    BlockWriter,
    read_blocks,
    write_sequence,
)
from repro.engine.errors import CorruptBlockError, JournalError, SortError
from repro.engine.merge_reading import READING_STRATEGIES, open_reading

#: Names resolved lazily: the planner imports the sort backends, which
#: themselves import repro.engine.block_io — an eager import here would
#: cycle during ``repro.sort`` initialisation.
_LAZY = ("SortEngine", "SortPlan", "plan_sort", "OperatorPlan", "plan_operator")


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        from repro.engine import planner

        return getattr(planner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DEFAULT_BLOCK_RECORDS",
    "BlockWriter",
    "CorruptBlockError",
    "JournalError",
    "SortError",
    "read_blocks",
    "write_sequence",
    "READING_STRATEGIES",
    "open_reading",
    "SortEngine",
    "SortPlan",
    "plan_sort",
    "OperatorPlan",
    "plan_operator",
]
