"""Exception hierarchy of the resilience layer (DESIGN.md §11).

Every failure the sorting engine raises *about its own durability* is a
:class:`SortError`, so callers (the CLI above all) can distinguish "the
sort could not complete and said so cleanly" from a programming error.
The subclasses carry enough location detail to act on: a corrupt spill
block names its file, block index and byte offset; a journal problem
names the manifest that could not be trusted.

Kept in its own module because both ends of the dependency chain need
it: :mod:`repro.engine.block_io` raises :class:`CorruptBlockError`
while reading and :mod:`repro.engine.resilience` (which imports
block_io) raises :class:`JournalError` while resuming — a shared leaf
module avoids the cycle.
"""

from __future__ import annotations

from typing import Any, Tuple

__all__ = [
    "SortError",
    "CorruptBlockError",
    "JournalError",
    "StoreError",
    "ManifestError",
]


class SortError(Exception):
    """A sort failed in a controlled, reportable way."""


class CorruptBlockError(SortError):
    """A checksummed spill block failed verification while being read.

    Attributes
    ----------
    path:
        File the bad block lives in.
    block_index:
        0-based index of the block within the file.
    offset:
        Byte offset of the block's header line within the file.
    """

    def __init__(
        self, path: str, block_index: int, offset: int, reason: str
    ) -> None:
        self.path = path
        self.block_index = block_index
        self.offset = offset
        self.reason = reason
        super().__init__(
            f"corrupt spill block in {path!r}: block #{block_index} "
            f"at byte offset {offset}: {reason}"
        )

    def __reduce__(self) -> Tuple[Any, ...]:
        # Exception pickling replays ``args`` (the formatted message),
        # which does not match this constructor; without this, a worker
        # process raising CorruptBlockError kills the multiprocessing
        # pool's result-handler thread on unpickle and the parent's
        # ``pool.map`` waits forever instead of failing cleanly.
        return (
            CorruptBlockError,
            (self.path, self.block_index, self.offset, self.reason),
        )


class JournalError(SortError):
    """A sort journal (run manifest) is unreadable or inconsistent."""


class StoreError(SortError):
    """The LSM store failed in a controlled, reportable way (§17).

    Raised for anything the storage engine can diagnose cleanly: a
    table the manifest references but the disk no longer verifies, a
    directory already locked by another process, a flush whose bytes
    failed read-back verification.  Subclassing :class:`SortError`
    keeps the CLI's one failure path: ``repro: <cmd> failed: ...``.
    """


class ManifestError(StoreError):
    """The store MANIFEST is unreadable or internally inconsistent."""
