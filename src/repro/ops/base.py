"""Shared operator plumbing: the report type and stream accounting.

Every operator in :mod:`repro.ops` streams its input through a
:class:`~repro.engine.planner.SortEngine` and folds the engine's
*final merge pass* directly, so the operator adds O(1) state on top of
the sort's own ``memory + fan_in * buffer_records`` bound.  Once an
operator's output stream is fully consumed, its ``report`` attribute
holds an :class:`OperatorReport` — the engine's
:class:`~repro.sort.external.SortReport` extended with relational
row accounting (rows in/out, groups, join matches, skew spills).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional

from repro.sort.external import SortReport

__all__ = [
    "OperatorReport",
    "CountingIterator",
    "report_as_dict",
    "report_from_sort",
    "close_stream",
]


@dataclass(slots=True)
class OperatorReport(SortReport):
    """A :class:`SortReport` plus relational operator accounting.

    ``rows_in`` counts records consumed across *all* inputs (both join
    sides), ``rows_out`` the records the operator emitted, ``groups``
    the distinct keys it saw (dedup groups, aggregate groups, matched
    join keys), ``matches`` the joined pairs, and ``skew_spills`` how
    many skewed join key groups overflowed their buffer to disk.
    """

    operator: str = ""
    rows_in: int = 0
    rows_out: int = 0
    groups: int = 0
    matches: int = 0
    skew_spills: int = 0

    def summary(self) -> str:
        # Explicit base call: dataclass(slots=True) rebuilds the class,
        # which breaks the zero-argument super() closure on 3.10/3.11.
        lines = [SortReport.summary(self)]
        parts = [
            f"rows_in={self.rows_in}",
            f"rows_out={self.rows_out}",
            f"groups={self.groups}",
        ]
        if self.operator == "join":
            parts.append(f"matches={self.matches}")
            parts.append(f"skew_spills={self.skew_spills}")
        lines.append(f"  ops    " + "  ".join(parts))
        return "\n".join(lines)


class CountingIterator:
    """Pass-through iterator that counts the records it delivers."""

    __slots__ = ("_iterator", "count")

    def __init__(self, records: Iterable[Any]) -> None:
        self._iterator = iter(records)
        self.count = 0

    def __iter__(self) -> Iterator[Any]:
        return self

    def __next__(self) -> Any:
        record = next(self._iterator)
        self.count += 1
        return record


def report_from_sort(
    operator: str,
    sort_report: Optional[SortReport],
    *,
    rows_in: int,
    rows_out: int,
    groups: int = 0,
    matches: int = 0,
    skew_spills: int = 0,
) -> OperatorReport:
    """Extend the engine's sort report with operator row accounting.

    ``sort_report`` may be None when the operator never ran a sort at
    all (top-k closed before pulling a record, empty input edge
    cases); the report then carries only the row counts.
    """
    base = sort_report or SortReport(algorithm="-", records=rows_in)
    return OperatorReport(
        algorithm=f"{operator}({base.algorithm})",
        records=base.records,
        runs=base.runs,
        run_lengths=list(base.run_lengths),
        run_phase=base.run_phase,
        merge_phase=base.merge_phase,
        spill_raw_bytes=base.spill_raw_bytes,
        spill_disk_bytes=base.spill_disk_bytes,
        operator=operator,
        rows_in=rows_in,
        rows_out=rows_out,
        groups=groups,
        matches=matches,
        skew_spills=skew_spills,
    )


def report_as_dict(report: Optional[SortReport]) -> Optional[dict]:
    """A JSON-safe dict of a sort/operator report (service ``status``).

    The resident service streams per-job reports over its JSON
    protocol; this is the one serialisation both
    :class:`~repro.sort.external.SortReport` and
    :class:`OperatorReport` share, so every job — plain sort or
    relational operator — reports through the same shape.  Wall times
    are included (they are measurements *about* the job, not contents
    *of* its output, so determinism is untouched); simulated-cost
    fields stay out, they mean nothing for a real service run.
    """
    if report is None:
        return None
    data = {
        "algorithm": report.algorithm,
        "records": report.records,
        "runs": report.runs,
        "average_run_length": report.average_run_length,
        "run_wall_s": report.run_phase.wall_time,
        "merge_wall_s": report.merge_phase.wall_time,
        "spill_raw_bytes": report.spill_raw_bytes,
        "spill_disk_bytes": report.spill_disk_bytes,
        "spill_ratio": report.spill_ratio,
    }
    if isinstance(report, OperatorReport):
        data.update(
            operator=report.operator,
            rows_in=report.rows_in,
            rows_out=report.rows_out,
            groups=report.groups,
            matches=report.matches,
            skew_spills=report.skew_spills,
        )
    return data


def executed_plan(initial_plan: Any, engine: Any) -> Any:
    """Replace a pre-sort :class:`OperatorPlan` with the executed one.

    ``plan_operator`` decides before the input size is known; the
    engine's own probe may then pick in-memory execution for a small
    input.  Once ``engine.sort()`` has run (it plans eagerly, before
    its stream is consumed), ``engine.plan`` is the decision that was
    *executed* — reports must show that one, not the advisory guess.
    The heap short-circuit never sorts, so it keeps its initial plan.
    """
    from repro.engine.planner import OperatorPlan

    sort_plan = engine.plan
    if initial_plan.mode == "heap" or sort_plan is None:
        return initial_plan
    return OperatorPlan(
        operator=initial_plan.operator,
        mode="in_memory" if sort_plan.mode == "in_memory" else "sort",
        k=initial_plan.k,
        sort_plan=sort_plan,
        reason=sort_plan.reason,
    )


def close_stream(stream: Any) -> None:
    """Close a (possibly plain) record iterator.

    Spilling engine sorts are generators whose ``finally`` blocks
    release temp files and publish reports; in-memory sorts hand back
    plain list iterators with nothing to close.
    """
    close = getattr(stream, "close", None)
    if close is not None:
        close()
