"""Two-input sort-merge equi-join with a skew spill fallback.

Each side is sorted by its join key through its own
:class:`~repro.engine.planner.SortEngine` (serial or partitioned-
parallel — the engines decide), then a single streaming pass zips the
two grouped streams: advance whichever side's key is smaller, and on a
match emit the cross product of the two key groups.

Output order matches coreutils ``join``: left-major (for each left row
in sorted order, every matching right row in sorted order), so the
right group must be re-iterable.  Up to ``buffer_limit`` right rows
per key are buffered in memory; a skewed key that exceeds the limit
overflows *loudly* to a spill file (a warning on stderr, a
``skew_spills`` count in the report) which is re-read once per left
row — the classic block-nested fallback, trading I/O for the bounded
memory guarantee.

Output rows are text: the left key field(s), then the left row's
non-key fields, then the right row's non-key fields, joined by the
left delimiter (for scalar formats, just the matched value) —
coreutils ``join``'s default field order.
"""

from __future__ import annotations

import os
import sys
import tempfile
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.core.records import BinaryRecordFormat, DelimitedFormat, RecordFormat
from repro.engine.block_io import BlockWriter, iter_records, open_run
from repro.engine.planner import plan_operator
from repro.merge.kway import grouped
from repro.ops.base import (
    CountingIterator,
    close_stream,
    executed_plan,
    report_from_sort,
)
from repro.sort.external import PhaseReport, SortReport

__all__ = ["SortMergeJoin"]


def _check_key_compatibility(left: RecordFormat, right: RecordFormat) -> None:
    """Refuse side formats whose keys cannot be compared.

    Delimited keys are type-ranked pairs and compare against each
    other for any delimiter, as long as both sides use the same number
    of key columns.  Scalar sides must both be numeric or both be
    text — an int key against a str key would ``TypeError`` deep
    inside the merge loop.

    Binary working formats must match on both sides (the zip compares
    keys *across* the streams, and raw key bytes only compare against
    raw key bytes).  Binary delimited keys share one component layout,
    so any delimiter pair works; binary *scalar* layouts differ per
    format (int header bytes vs the IEEE-754 map), so scalar sides
    must use the same base format — ``int`` joined with ``float``
    needs the text path, which compares their keys numerically.
    """
    left_binary = isinstance(left, BinaryRecordFormat)
    right_binary = isinstance(right, BinaryRecordFormat)
    if left_binary != right_binary:
        raise ValueError(
            f"cannot join {left.name!r} with {right.name!r}: one side "
            f"compares raw key bytes, the other decoded keys — enable "
            f"binary spilling on both sides or neither"
        )
    if left_binary:
        left = left.base
        right = right.base
    left_delimited = isinstance(left, DelimitedFormat)
    right_delimited = isinstance(right, DelimitedFormat)
    if (
        left_binary
        and not (left_delimited and right_delimited)
        and left.name != right.name
    ):
        raise ValueError(
            f"cannot join binary {left.name!r} with binary "
            f"{right.name!r}: scalar key byte layouts differ per "
            f"format; use matching formats or the text path"
        )
    if left_delimited != right_delimited:
        raise ValueError(
            f"cannot join {left.name!r} with {right.name!r}: one side "
            f"has delimited keys, the other scalar records"
        )
    if left_delimited:
        if left.key_arity != right.key_arity:
            raise ValueError(
                f"cannot join {left.name!r} with {right.name!r}: key "
                f"arities differ ({left.key_arity} vs {right.key_arity})"
            )
        return
    if left.numeric != right.numeric:
        raise ValueError(
            f"cannot join {left.name!r} with {right.name!r}: numeric "
            f"keys cannot be compared with text keys"
        )


class _RightGroup:
    """One right-side key group: bounded buffer + optional spill file.

    The group is written once and re-iterated once per left row.  The
    first ``buffer_limit`` records stay in memory; the rest stream to
    a spill file through the right engine's record format (block I/O,
    so re-reads are batched).
    """

    def __init__(
        self,
        records: Iterator[Any],
        fmt: RecordFormat,
        buffer_limit: int,
        buffer_records: int,
        tmp_dir: Optional[str],
        describe,
        checksum: bool = False,
    ) -> None:
        self.buffered: List[Any] = []
        self.spill_path: Optional[str] = None
        self.spilled = 0
        self._fmt = fmt
        self._buffer_records = buffer_records
        #: The engine's --checksum contract covers this spill file too.
        self._checksum = checksum
        writer = None
        handle = None
        try:
            for record in records:
                if len(self.buffered) < buffer_limit:
                    self.buffered.append(record)
                    continue
                if writer is None:
                    fd, self.spill_path = tempfile.mkstemp(
                        prefix="repro-join-skew-", suffix=".txt", dir=tmp_dir
                    )
                    os.close(fd)
                    handle = open_run(self.spill_path, "w", fmt)
                    writer = BlockWriter(
                        handle, fmt, buffer_records, checksum=checksum
                    )
                    print(
                        f"repro: join: key {describe(record)!r} exceeds "
                        f"the {buffer_limit}-record group buffer; "
                        f"spilling the overflow to disk (skewed key)",
                        file=sys.stderr,
                    )
                writer.write(record)
                self.spilled += 1
        except BaseException:
            # The caller never sees this instance, so it could not call
            # discard(): clean the half-written spill file here.
            if handle is not None:
                handle.close()
                handle = None
            self.discard()
            raise
        finally:
            if writer is not None and handle is not None:
                writer.flush()
            if handle is not None:
                handle.close()

    def __iter__(self) -> Iterator[Any]:
        yield from self.buffered
        if self.spill_path is not None:
            with open_run(self.spill_path, "r", self._fmt) as handle:
                yield from iter_records(
                    handle, self._fmt, self._buffer_records,
                    checksum=self._checksum,
                )

    def discard(self) -> None:
        if self.spill_path is not None:
            try:
                os.remove(self.spill_path)
            except OSError:
                pass
            self.spill_path = None


class SortMergeJoin:
    """Streaming equi-join of two record streams.

    Parameters
    ----------
    left_engine / right_engine:
        One :class:`SortEngine` per input (distinct instances — each
        sort owns per-engine state).  Their formats must have
        compatible keys (see module docstring); delimiters and key
        columns may differ per side.
    buffer_limit:
        Right-group records held in memory before the skew fallback
        spills to disk.  Defaults to the left engine's memory budget.
    tmp_dir:
        Where skew spill files go (system default when None).
    """

    def __init__(
        self,
        left_engine: Any,
        right_engine: Any,
        *,
        buffer_limit: Optional[int] = None,
        tmp_dir: Optional[str] = None,
    ) -> None:
        if left_engine is right_engine:
            raise ValueError(
                "left and right need separate engines (each sort owns "
                "per-engine report state); use engine.sibling()"
            )
        _check_key_compatibility(
            left_engine.record_format, right_engine.record_format
        )
        if buffer_limit is None:
            buffer_limit = left_engine.spec.memory
        if buffer_limit < 1:
            raise ValueError(
                f"buffer_limit must be >= 1, got {buffer_limit}"
            )
        self.left_engine = left_engine
        self.right_engine = right_engine
        self.buffer_limit = buffer_limit
        self.tmp_dir = tmp_dir
        # Hoisted out of _combine: it runs once per emitted pair, the
        # operator's hottest loop.
        left_fmt = left_engine.record_format
        right_fmt = right_engine.record_format
        # Under --binary-spill the streams carry (key bytes, payload)
        # pairs; the zip advances on raw key bytes, and output assembly
        # decodes back to the base record at the emission edge.
        self._left_to_base = getattr(left_fmt, "base_record", None)
        self._right_to_base = getattr(right_fmt, "base_record", None)
        if self._left_to_base is not None:
            left_fmt = left_fmt.base
        if self._right_to_base is not None:
            right_fmt = right_fmt.base
        self._left_fmt = left_fmt
        self._right_fmt = right_fmt
        self._delimited = isinstance(left_fmt, DelimitedFormat)
        if self._delimited:
            self._left_key_columns = left_fmt.key_columns
            self._left_key_set = frozenset(left_fmt.key_columns)
            self._right_key_set = frozenset(right_fmt.key_columns)
            self._delimiter = left_fmt.delimiter
        self.report = None
        self.plan = None
        #: Per-side sort reports, once the join stream is consumed.
        self.left_report = None
        self.right_report = None

    # -- output assembly ---------------------------------------------------------

    def _left_parts(self, left_record: Any) -> List[str]:
        """Output fields contributed by one left row (key first)."""
        if self._left_to_base is not None:
            left_record = self._left_to_base(left_record)
        if not self._delimited:
            return [self._left_fmt.encode(left_record)]
        left_fields = self._left_fmt.fields(left_record)
        out = [left_fields[c] for c in self._left_key_columns]
        out += [
            field
            for index, field in enumerate(left_fields)
            if index not in self._left_key_set
        ]
        return out

    def _emit(self, left_parts: List[str], right_record: Any) -> str:
        if not self._delimited:
            return left_parts[0]
        if self._right_to_base is not None:
            right_record = self._right_to_base(right_record)
        out = left_parts + [
            field
            for index, field in enumerate(self._right_fmt.fields(right_record))
            if index not in self._right_key_set
        ]
        return self._delimiter.join(out)

    def _describe_key(self, right_record: Any) -> str:
        """The user-visible key text of a right record (skew warning)."""
        fmt = self._right_fmt
        if self._right_to_base is not None:
            right_record = self._right_to_base(right_record)
        if isinstance(fmt, DelimitedFormat):
            return fmt.delimiter.join(
                fmt.project(right_record, fmt.key_columns)
            )
        return fmt.encode(right_record)

    # -- public API --------------------------------------------------------------

    def run(
        self,
        left_records: Iterable[Any],
        right_records: Iterable[Any],
        resume: bool = False,
    ) -> Iterator[str]:
        """Lazily yield joined output rows, key-ascending."""
        left_engine = self.left_engine
        right_engine = self.right_engine
        self.plan = plan_operator(
            operator="join",
            memory=left_engine.spec.memory,
            workers=left_engine.workers,
            fan_in=left_engine.fan_in,
            buffer_records=left_engine.buffer_records,
            reading=left_engine.reading,
        )
        left_counted = CountingIterator(left_records)
        right_counted = CountingIterator(right_records)
        left_stream = left_engine.sort(left_counted, resume=resume)
        right_stream = right_engine.sort(right_counted, resume=resume)
        # Both probes have run; report the *wider* executed mode — a
        # join is only in-memory when both sides were.
        left_plan = executed_plan(self.plan, left_engine)
        right_plan = executed_plan(self.plan, right_engine)
        self.plan = (
            left_plan if right_plan.mode == "in_memory" else right_plan
        )
        left_key = left_engine.record_format.key
        right_key = right_engine.record_format.key
        matches = 0
        groups = 0
        skew_spills = 0
        rows_out = 0
        try:
            left_groups = grouped(left_stream, left_key)
            right_groups = grouped(right_stream, right_key)
            left_pair = next(left_groups, None)
            right_pair = next(right_groups, None)
            while left_pair is not None and right_pair is not None:
                left_k, left_group = left_pair
                right_k, right_group = right_pair
                if left_k < right_k:
                    left_pair = next(left_groups, None)
                    continue
                if right_k < left_k:
                    right_pair = next(right_groups, None)
                    continue
                groups += 1
                group = _RightGroup(
                    right_group,
                    right_engine.record_format,
                    self.buffer_limit,
                    right_engine.buffer_records,
                    self.tmp_dir,
                    self._describe_key,
                    checksum=right_engine.checksum,
                )
                if group.spilled:
                    skew_spills += 1
                try:
                    for left_record in left_group:
                        # The left row's projection is invariant across
                        # the inner loop; split it once per left row,
                        # not once per emitted pair.
                        prefix = self._left_parts(left_record)
                        for right_record in group:
                            matches += 1
                            rows_out += 1
                            yield self._emit(prefix, right_record)
                finally:
                    group.discard()
                left_pair = next(left_groups, None)
                right_pair = next(right_groups, None)
            # Success: one side exhausted first.  A durable engine only
            # removes its journaled work dir when its sort is fully
            # consumed, so drain the longer side's tail (one read pass,
            # nothing emitted) instead of leaking its .joinwork side.
            if left_engine.work_dir is not None:
                for _record in left_stream:
                    pass
            if right_engine.work_dir is not None:
                for _record in right_stream:
                    pass
        finally:
            close_stream(left_stream)
            close_stream(right_stream)
            self.left_report = left_engine.report
            self.right_report = right_engine.report
            self.report = report_from_sort(
                "join",
                self._combined_sort_report(),
                rows_in=left_counted.count + right_counted.count,
                rows_out=rows_out,
                groups=groups,
                matches=matches,
                skew_spills=skew_spills,
            )

    # -- internals -----------------------------------------------------------------

    def _combined_sort_report(self) -> Optional[SortReport]:
        """Sum the two side sorts into one report (phase-wise)."""
        left = self.left_report
        right = self.right_report
        if left is None or right is None:
            return left or right

        def combine(a: PhaseReport, b: PhaseReport) -> PhaseReport:
            return PhaseReport(
                io_time=a.io_time + b.io_time,
                cpu_ops=a.cpu_ops + b.cpu_ops,
                cpu_time=a.cpu_time + b.cpu_time,
                wall_time=a.wall_time + b.wall_time,
            )

        report = SortReport(
            algorithm=f"{left.algorithm}+{right.algorithm}",
            records=left.records + right.records,
            runs=left.runs + right.runs,
            run_lengths=list(left.run_lengths) + list(right.run_lengths),
        )
        report.run_phase = combine(left.run_phase, right.run_phase)
        report.merge_phase = combine(left.merge_phase, right.merge_phase)
        return report
