"""External dedup over a sorted stream (``sort -u`` as an operator).

Sorting brings every duplicate adjacent, so dedup is a single O(1)
comparison against the previous record while the engine's final merge
pass streams by — the operator never holds more than one record beyond
the sort's own bounded buffers.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.engine.planner import plan_operator
from repro.merge.kway import grouped
from repro.ops.base import (
    CountingIterator,
    close_stream,
    executed_plan,
    report_from_sort,
)

__all__ = ["Distinct", "DISTINCT_MODES"]

#: What "duplicate" means: the whole record, or just its sort key.
DISTINCT_MODES = ("record", "key")


class Distinct:
    """Streaming dedup of any :class:`RecordFormat`'s records.

    ``by="record"`` drops exact duplicate records (``sort -u``
    semantics: for delimited rows, byte-identical lines).  ``by="key"``
    keeps the first record of every distinct *key* group (``DISTINCT
    ON (key)``): for delimited rows that is the first row in
    ``(key, row text)`` order, which makes the choice deterministic
    across backends.

    ``report`` holds the :class:`~repro.ops.base.OperatorReport` once
    the output stream has been fully consumed.
    """

    def __init__(self, engine: Any, by: str = "record") -> None:
        if by not in DISTINCT_MODES:
            raise ValueError(
                f"by must be one of {DISTINCT_MODES}, got {by!r}"
            )
        self.engine = engine
        self.by = by
        self.report = None
        self.plan = None

    def run(
        self,
        records: Iterable[Any],
        input_records: Optional[int] = None,
        resume: bool = False,
    ) -> Iterator[Any]:
        """Lazily yield the distinct records in ascending order."""
        engine = self.engine
        self.plan = plan_operator(
            operator="distinct",
            memory=engine.spec.memory,
            workers=engine.workers,
            input_records=input_records,
            fan_in=engine.fan_in,
            buffer_records=engine.buffer_records,
            reading=engine.reading,
        )
        counted = CountingIterator(records)
        stream = engine.sort(
            counted, input_records=input_records, resume=resume
        )
        self.plan = executed_plan(self.plan, engine)
        rows_out = 0
        try:
            if self.by == "key":
                for _key, group in grouped(stream, engine.record_format.key):
                    rows_out += 1
                    yield next(group)
            else:
                previous = _NOTHING
                for record in stream:
                    if previous is _NOTHING or record != previous:
                        previous = record
                        rows_out += 1
                        yield record
        finally:
            # An abandoned stream still releases the engine's spill
            # files and still publishes a (partial-count) report.
            close_stream(stream)
            self.report = report_from_sort(
                "distinct",
                engine.report,
                rows_in=counted.count,
                rows_out=rows_out,
                groups=rows_out,
            )


#: Sentinel distinguishable from any record (None can be a record).
_NOTHING = object()
