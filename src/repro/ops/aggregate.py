"""Group-by aggregation folded into the final merge pass.

The engine sorts by the format's key, which makes every group a
contiguous key run in the merged stream; the operator folds each group
with O(1) running state (count / sum / min / max) *while the final
merge produces it* — no group, however skewed, is ever materialised.
The memory bound is therefore the sort's own
``memory + fan_in * buffer_records``, which tests assert through the
engine's SpillSession peak instrumentation.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.records import DelimitedFormat, _parse_key
from repro.engine.planner import plan_operator
from repro.merge.kway import grouped
from repro.ops.base import (
    CountingIterator,
    close_stream,
    executed_plan,
    report_from_sort,
)

__all__ = ["GroupByAggregate", "AGGREGATES"]

#: Supported aggregate functions, in canonical order.
AGGREGATES = ("count", "sum", "min", "max", "avg")


def _render_number(value: Any) -> str:
    """Encode an aggregate result the way the scalar formats would."""
    return repr(value) if isinstance(value, float) else str(value)


class GroupByAggregate:
    """count/sum/min/max/avg per key group, streamed.

    For a :class:`DelimitedFormat` engine the group key is the
    format's key column(s) and ``value_column`` names the aggregated
    field; for scalar formats the record itself is both key and value.
    Output records are delimited text rows: the key column text (from
    the group's first row in sorted order, so the choice is
    deterministic across backends) followed by one field per requested
    aggregate.

    ``min``/``max`` compare values through the same type-ranked key
    order the sort uses (numbers before text), so a column mixing
    numeric and text tokens aggregates without a ``TypeError`` and the
    winner is reported in its original spelling.  ``sum``/``avg``
    require numeric values and fail with a clear :class:`ValueError`
    naming the offending field otherwise.
    """

    def __init__(
        self,
        engine: Any,
        aggregates: Sequence[str] = ("count",),
        value_column: Optional[int] = None,
    ) -> None:
        aggregates = tuple(aggregates)
        if not aggregates:
            raise ValueError("at least one aggregate is required")
        unknown = [a for a in aggregates if a not in AGGREGATES]
        if unknown:
            raise ValueError(
                f"unknown aggregate(s) {', '.join(unknown)}; "
                f"known: {', '.join(AGGREGATES)}"
            )
        # Hoisted out of _ranked_value/_key_text: they run once per
        # record in the fold loop, the operator's hottest path.
        fmt = engine.record_format
        # Under --binary-spill the stream carries (key bytes, payload)
        # pairs; grouping stays on the raw key bytes (equal keys encode
        # identically), but value extraction and key text need the
        # decoded base record, so unwrap here and convert per record at
        # the fold's output edge.
        self._to_base = getattr(fmt, "base_record", None)
        if self._to_base is not None:
            fmt = fmt.base
        self._fmt = fmt
        self._delimited = isinstance(fmt, DelimitedFormat)
        needs_value = any(a != "count" for a in aggregates)
        if self._delimited:
            if needs_value and value_column is None:
                raise ValueError(
                    f"aggregates {aggregates} read a value field; pass "
                    f"value_column (the CLI's --value) for delimited rows"
                )
            self._delimiter = fmt.delimiter
        else:
            if value_column is not None:
                raise ValueError(
                    "value_column only applies to delimited formats; "
                    f"{fmt.name!r} records are their own value"
                )
            self._delimiter = ","
        self.engine = engine
        self.aggregates = aggregates
        self.value_column = value_column
        self.report = None
        self.plan = None

    # -- value extraction -------------------------------------------------------

    def _ranked_value(self, record: Any) -> Tuple[Tuple[int, Any], str]:
        """``(type-ranked value, original text)`` of one record's value."""
        fmt = self._fmt
        if self._to_base is not None:
            record = self._to_base(record)
        if self._delimited:
            text = fmt.project(record, (self.value_column,))[0]
            return _parse_key(text), text
        if fmt.numeric:
            return (0, record), fmt.encode(record)
        return (1, record), fmt.encode(record)

    def _key_text(self, record: Any) -> str:
        fmt = self._fmt
        if self._to_base is not None:
            record = self._to_base(record)
        if self._delimited:
            return self._delimiter.join(fmt.project(record, fmt.key_columns))
        return fmt.encode(record)

    # -- public API --------------------------------------------------------------

    def run(
        self,
        records: Iterable[Any],
        input_records: Optional[int] = None,
        resume: bool = False,
    ) -> Iterator[str]:
        """Yield one delimited aggregate row per key group, key-ascending."""
        engine = self.engine
        self.plan = plan_operator(
            operator="aggregate",
            memory=engine.spec.memory,
            workers=engine.workers,
            input_records=input_records,
            fan_in=engine.fan_in,
            buffer_records=engine.buffer_records,
            reading=engine.reading,
        )
        counted = CountingIterator(records)
        stream = engine.sort(
            counted, input_records=input_records, resume=resume
        )
        self.plan = executed_plan(self.plan, engine)
        needs_value = any(a != "count" for a in self.aggregates)
        self._groups = 0
        try:
            yield from self._fold_groups(stream, needs_value)
        finally:
            # An abandoned stream still releases the engine's spill
            # files and still publishes a (partial-count) report.
            close_stream(stream)
            self.report = report_from_sort(
                "aggregate",
                engine.report,
                rows_in=counted.count,
                rows_out=self._groups,
                groups=self._groups,
            )

    def _fold_groups(self, stream, needs_value: bool) -> Iterator[str]:
        """Fold each key group with O(1) state as the merge streams."""
        engine = self.engine
        for _key, group in grouped(stream, engine.record_format.key):
            self._groups += 1
            first = next(group)
            count = 1
            if needs_value:
                ranked, text = self._ranked_value(first)
                total = ranked[1] if ranked[0] == 0 else None
                numeric = ranked[0] == 0
                min_pair = max_pair = (ranked, text)
                for record in group:
                    count += 1
                    ranked, text = self._ranked_value(record)
                    if numeric and ranked[0] == 0:
                        total += ranked[1]
                    else:
                        numeric = False
                    if ranked < min_pair[0]:
                        min_pair = (ranked, text)
                    if ranked > max_pair[0]:
                        max_pair = (ranked, text)
            else:
                for _record in group:
                    count += 1
            fields: List[str] = [self._key_text(first)]
            for aggregate in self.aggregates:
                if aggregate == "count":
                    fields.append(str(count))
                    continue
                if aggregate == "min":
                    fields.append(min_pair[1])
                    continue
                if aggregate == "max":
                    fields.append(max_pair[1])
                    continue
                if not numeric:
                    # Text values rank after numbers, so the running
                    # max pair always names a non-numeric offender.
                    raise ValueError(
                        f"{aggregate} needs numeric values but key group "
                        f"{fields[0]!r} holds non-numeric value "
                        f"{max_pair[1]!r}"
                    )
                if aggregate == "sum":
                    fields.append(_render_number(total))
                else:  # avg
                    fields.append(_render_number(total / count))
            yield self._delimiter.join(fields)
