"""Bounded top-k: the k smallest records (``sort | head -k``).

When ``k`` fits the memory budget the planner short-circuits the sort
entirely: a bounded max-heap of k records scans the input in one pass
(O(n log k) comparisons, zero disk I/O).  Larger k — or a parallel
run — falls back to the engine's external sort, truncated after k
records; abandoning the sort stream early still releases every spill
file through the engine's cleanup.  Both paths produce byte-identical
output: equal records encode identically, so which duplicates survive
the cut cannot change the bytes.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Iterator, Optional

from repro.engine.planner import plan_operator
from repro.heaps.binary_heap import MaxHeap
from repro.ops.base import (
    CountingIterator,
    close_stream,
    executed_plan,
    report_from_sort,
)
from repro.runs.base import log_cost
from repro.sort.external import PhaseReport, SortReport

__all__ = ["TopK"]


class TopK:
    """The ``k`` smallest records of a stream, in ascending order."""

    def __init__(self, engine: Any, k: int) -> None:
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        self.engine = engine
        self.k = k
        self.report = None
        self.plan = None

    def run(
        self,
        records: Iterable[Any],
        input_records: Optional[int] = None,
        resume: bool = False,
    ) -> Iterator[Any]:
        """Lazily yield the k smallest records, ascending."""
        engine = self.engine
        self.plan = plan_operator(
            operator="topk",
            memory=engine.spec.memory,
            workers=engine.workers,
            input_records=input_records,
            k=self.k,
            fan_in=engine.fan_in,
            buffer_records=engine.buffer_records,
            reading=engine.reading,
        )
        if self.plan.mode == "heap":
            return self._run_heap(records)
        return self._run_sorted(records, input_records, resume)

    # -- internals -----------------------------------------------------------------

    def _run_heap(self, records: Iterable[Any]) -> Iterator[Any]:
        """One bounded-heap pass; never sorts, never spills.

        Heap entries are ``(record, input_index)`` pairs: the index
        tie-break makes both eviction and the final ordering *stable*
        for records that compare equal but encode differently (e.g.
        ``0.0`` vs ``-0.0``), so this path stays byte-identical to the
        stable-sort fallback.
        """
        started = time.perf_counter()
        counted = CountingIterator(records)
        heap: MaxHeap = MaxHeap(capacity=self.k)
        cpu_ops = 0
        k = self.k
        if k:
            for index, record in enumerate(counted):
                entry = (record, index)
                if len(heap) < k:
                    heap.push(entry)
                    cpu_ops += log_cost(len(heap))
                elif entry < heap.peek():
                    heap.replace(entry)
                    cpu_ops += log_cost(k)
        else:
            for _record in counted:  # still count rows_in
                pass
        entries = sorted(heap.as_list())
        result = [record for record, _index in entries]
        wall = time.perf_counter() - started
        base = SortReport(
            algorithm="HEAP",
            records=counted.count,
            runs=0,
        )
        base.run_phase = PhaseReport(
            cpu_ops=cpu_ops,
            cpu_time=cpu_ops * self.engine.cpu_op_time,
            wall_time=wall,
        )
        self.report = report_from_sort(
            "topk",
            base,
            rows_in=counted.count,
            rows_out=len(result),
            groups=len(result),
        )
        return iter(result)

    def _run_sorted(
        self,
        records: Iterable[Any],
        input_records: Optional[int],
        resume: bool,
    ) -> Iterator[Any]:
        engine = self.engine
        counted = CountingIterator(records)
        stream = engine.sort(
            counted, input_records=input_records, resume=resume
        )
        self.plan = executed_plan(self.plan, engine)
        rows_out = 0
        try:
            for record in stream:
                if rows_out >= self.k:
                    # A durable sort only removes its journaled work
                    # dir when fully consumed — drain the tail (one
                    # read pass, nothing yielded) so a *successful*
                    # truncation does not leak OUTPUT.sortwork.
                    if engine.work_dir is not None:
                        for _record in stream:
                            pass
                    break
                rows_out += 1
                yield record
        finally:
            # Run generation consumed the whole input before the first
            # record came back, so abandoning the merge here only skips
            # already-sorted output; closing releases the spill files
            # and publishes the engine report.
            close_stream(stream)
            self.report = report_from_sort(
                "topk",
                engine.report,
                rows_in=counted.count,
                rows_out=rows_out,
                groups=rows_out,
            )
