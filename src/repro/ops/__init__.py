"""Streaming sort-based relational operators (DESIGN.md §12).

External sort is the workhorse primitive under real database
operators; this package builds four of them directly on the
:class:`~repro.engine.planner.SortEngine` instead of re-implementing
spilling:

* :class:`Distinct` — external dedup over any record format's key;
* :class:`GroupByAggregate` — count/sum/min/max/avg per key group,
  folded into the final merge pass so groups never materialise;
* :class:`SortMergeJoin` — two-input equi-join with bounded per-key
  buffering and a loud spill-to-disk fallback for skewed keys;
* :class:`TopK` — the k smallest records, short-circuited to a
  bounded heap when ``k`` fits the memory budget.

Every operator streams: peak memory stays within the engine's
``memory + fan_in * buffer_records`` sort bound plus O(1) operator
state (the join adds its own bounded, spill-backed group buffer).
The :class:`SortEngine` exposes one facade per operator
(``engine.distinct(...)``, ``.aggregate(...)``, ``.join(...)``,
``.topk(...)``); the CLI adds ``distinct`` / ``agg`` / ``join`` /
``topk`` subcommands.
"""

from repro.ops.aggregate import AGGREGATES, GroupByAggregate
from repro.ops.base import OperatorReport
from repro.ops.distinct import DISTINCT_MODES, Distinct
from repro.ops.join import SortMergeJoin
from repro.ops.topk import TopK

__all__ = [
    "AGGREGATES",
    "DISTINCT_MODES",
    "Distinct",
    "GroupByAggregate",
    "OperatorReport",
    "SortMergeJoin",
    "TopK",
]
