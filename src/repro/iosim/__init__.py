"""Simulated storage stack: disk cost model, files, reverse-file format.

This package substitutes the paper's physical SATA testbed (see
DESIGN.md section 3): all I/O is charged to an analytic clock so the
merge/fan-in and timing experiments reproduce the paper's *shape*
without measuring Python interpreter overhead.
"""

from repro.iosim.disk import DiskGeometry, DiskModel, DiskStats
from repro.iosim.files import SimulatedFile, SimulatedFileSystem
from repro.iosim.reverse_file import (
    DEFAULT_PAGES_PER_FILE,
    ReverseFileHeader,
    ReverseRunReader,
    ReverseRunWriter,
)

__all__ = [
    "DEFAULT_PAGES_PER_FILE",
    "DiskGeometry",
    "DiskModel",
    "DiskStats",
    "ReverseFileHeader",
    "ReverseRunReader",
    "ReverseRunWriter",
    "SimulatedFile",
    "SimulatedFileSystem",
]
