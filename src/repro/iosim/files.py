"""Simulated files and filesystem over the :class:`DiskModel`.

Files hold Python records in page-sized chunks.  Every page-granular read
or write is charged to the shared disk model; record contents live in
ordinary lists (we simulate the *cost* of I/O, not the bytes).

The filesystem hands every file a disjoint, contiguous address range, so
sequential access within one file is cheap while interleaving reads
across files pays seeks — the regime the merge fan-in experiment
(Figure 6.1) explores.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional

from repro.iosim.disk import DiskModel

#: Address gap between consecutive files, so growing one file never
#: collides with the next one's range.
_FILE_STRIDE = 1 << 24


class SimulatedFile:
    """An append-only sequence of records stored in simulated pages.

    Use :meth:`append` / :meth:`extend` to write (buffered one page at a
    time), :meth:`close` to flush, and :meth:`records` or :meth:`read_all`
    to read the records back with read costs charged.
    """

    def __init__(
        self,
        fs: "SimulatedFileSystem",
        name: str,
        base_address: int,
        write_buffer_pages: int = 1,
    ) -> None:
        if write_buffer_pages < 1:
            raise ValueError(
                f"write_buffer_pages must be >= 1, got {write_buffer_pages}"
            )
        self._fs = fs
        self.name = name
        self._base = base_address
        self._pages: List[List[Any]] = []
        self._write_buffer: List[Any] = []
        self._write_buffer_pages = write_buffer_pages
        self._closed = False

    # -- writing ---------------------------------------------------------------

    def append(self, record: Any) -> None:
        """Append one record, flushing when the write buffer fills.

        The write buffer holds ``write_buffer_pages`` pages; flushing
        writes them back to back, so a larger buffer amortises the seek
        of returning to this file over more sequential page writes (the
        merge phase relies on this, Section 6.1.1).
        """
        if self._closed:
            raise ValueError(f"file {self.name!r} is closed for writing")
        self._write_buffer.append(record)
        page_records = self._fs.disk.geometry.page_records
        if len(self._write_buffer) >= self._write_buffer_pages * page_records:
            self._flush_buffer()

    def extend(self, records: Iterable[Any]) -> None:
        """Append many records."""
        for record in records:
            self.append(record)

    def close(self) -> None:
        """Flush any partial buffer and freeze the file."""
        if self._write_buffer:
            self._flush_buffer()
        self._closed = True

    def _flush_buffer(self) -> None:
        page_records = self._fs.disk.geometry.page_records
        buffered = self._write_buffer
        self._write_buffer = []
        for start in range(0, len(buffered), page_records):
            address = self._base + len(self._pages)
            self._fs.disk.write_page(address)
            self._pages.append(buffered[start : start + page_records])

    # -- reading ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(p) for p in self._pages) + len(self._write_buffer)

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def records(self) -> Iterator[Any]:
        """Yield all records front to back, charging one read per page."""
        self._require_closed()
        for page_index, page in enumerate(self._pages):
            self._fs.disk.read_page(self._base + page_index)
            yield from page

    def records_buffered(self, buffer_pages: int) -> Iterator[Any]:
        """Yield all records, refilling ``buffer_pages`` pages at a time.

        Each refill reads that many contiguous pages back to back: the
        first page may pay a seek (if another file was touched in the
        meantime) and the rest are sequential.  This is the per-run input
        buffer of the merge phase; larger buffers amortise seeks across
        more transfers (Section 6.1.1).
        """
        if buffer_pages < 1:
            raise ValueError(f"buffer_pages must be >= 1, got {buffer_pages}")
        self._require_closed()
        for start in range(0, len(self._pages), buffer_pages):
            stop = min(start + buffer_pages, len(self._pages))
            chunk: List[Any] = []
            for page_index in range(start, stop):
                self._fs.disk.read_page(self._base + page_index)
                chunk.extend(self._pages[page_index])
            yield from chunk

    def read_all(self) -> List[Any]:
        """Read the whole file into a list (charges all page reads)."""
        return list(self.records())

    def read_page(self, page_index: int) -> List[Any]:
        """Read one page by index, charging its access."""
        self._require_closed()
        if not 0 <= page_index < len(self._pages):
            raise IndexError(
                f"page {page_index} out of range for {self.name!r} "
                f"({len(self._pages)} pages)"
            )
        self._fs.disk.read_page(self._base + page_index)
        return list(self._pages[page_index])

    def _require_closed(self) -> None:
        if not self._closed:
            raise ValueError(f"file {self.name!r} must be closed before reading")


class SimulatedFileSystem:
    """Allocates :class:`SimulatedFile` objects over one disk model."""

    def __init__(self, disk: Optional[DiskModel] = None) -> None:
        self.disk = disk if disk is not None else DiskModel()
        self._next_base = 0
        self._files: dict[str, SimulatedFile] = {}

    def create(self, name: str, write_buffer_pages: int = 1) -> SimulatedFile:
        """Create a new empty file with a fresh address range."""
        if name in self._files:
            raise FileExistsError(f"simulated file {name!r} already exists")
        handle = SimulatedFile(
            self, name, self.allocate_base(), write_buffer_pages=write_buffer_pages
        )
        self._files[name] = handle
        return handle

    def allocate_base(self) -> int:
        """Reserve a fresh disjoint address range and return its base.

        Used by structures that manage their own page layout, such as the
        backwards-written files of Appendix A.
        """
        base = self._next_base
        self._next_base += _FILE_STRIDE
        return base

    def create_from(self, name: str, records: Iterable[Any]) -> SimulatedFile:
        """Create, fill, and close a file in one call."""
        handle = self.create(name)
        handle.extend(records)
        handle.close()
        return handle

    def open(self, name: str) -> SimulatedFile:
        """Look up an existing file."""
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(f"no simulated file {name!r}") from None

    def delete(self, name: str) -> None:
        """Remove a file (no I/O charged; deletion is metadata only)."""
        if name not in self._files:
            raise FileNotFoundError(f"no simulated file {name!r}")
        del self._files[name]

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def __len__(self) -> int:
        return len(self._files)

    def names(self) -> List[str]:
        return list(self._files)
