"""Analytic disk model (substitute for the paper's SATA testbed).

The paper's Chapter 6 measurements are dominated by two algorithmic
quantities: how many runs the generation phase produces, and how much of
the merge-phase I/O is sequential versus seek-bound.  Wall-clock timing
of a Python reimplementation would measure interpreter overhead instead,
so we charge every page access to a simulated clock with the classic
three-component cost model of Appendix A.1:

* ``seek_time``        — move the head to the target track,
* ``rotational_delay`` — wait for the sector to pass under the head,
* ``transfer_time``    — read or write one page.

An access to the page immediately following the previous access (same
head position) pays only the transfer time; any other access pays all
three.  Backward-adjacent *writes* are also charged as sequential when
``write_cache`` is enabled, reflecting the paper's observation (Appendix
A) that the OS write cache absorbs the penalty of writing files
backwards while reads cannot avoid it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class DiskGeometry:
    """Cost parameters of the simulated disk.

    Defaults approximate the paper's 2009-era SATA drive: ~8 ms average
    seek, ~4 ms rotational latency (7200 rpm), ~60 MB/s sustained
    transfer with 4 KiB pages (~0.066 ms per page).
    """

    seek_time: float = 8e-3
    rotational_delay: float = 4.2e-3
    transfer_time: float = 6.6e-5
    page_records: int = 1024

    def random_access_cost(self) -> float:
        """Cost of one page access after repositioning the head."""
        return self.seek_time + self.rotational_delay + self.transfer_time

    def sequential_access_cost(self) -> float:
        """Cost of one page access at the current head position."""
        return self.transfer_time


@dataclass(slots=True)
class DiskStats:
    """Counters accumulated by :class:`DiskModel`."""

    pages_read: int = 0
    pages_written: int = 0
    sequential_accesses: int = 0
    random_accesses: int = 0
    elapsed: float = 0.0

    @property
    def total_accesses(self) -> int:
        return self.sequential_accesses + self.random_accesses

    def snapshot(self) -> "DiskStats":
        """Return an independent copy of the counters."""
        return DiskStats(
            pages_read=self.pages_read,
            pages_written=self.pages_written,
            sequential_accesses=self.sequential_accesses,
            random_accesses=self.random_accesses,
            elapsed=self.elapsed,
        )


@dataclass(slots=True)
class DiskModel:
    """A disk head with a position and a clock.

    Page addresses are abstract integers; the
    :class:`~repro.iosim.files.SimulatedFileSystem` lays files out in
    disjoint address ranges, so switching between files always costs a
    seek, exactly the behaviour that makes large merge fan-ins expensive
    (Figure 6.1).
    """

    geometry: DiskGeometry = field(default_factory=DiskGeometry)
    write_cache: bool = True
    _head: int | None = field(default=None, repr=False)
    stats: DiskStats = field(default_factory=DiskStats)

    def read_page(self, address: int) -> None:
        """Charge the clock for reading the page at ``address``."""
        self._access(address, is_write=False)
        self.stats.pages_read += 1

    def write_page(self, address: int) -> None:
        """Charge the clock for writing the page at ``address``."""
        self._access(address, is_write=True)
        self.stats.pages_written += 1

    def reset_stats(self) -> None:
        """Zero all counters (head position is kept)."""
        self.stats = DiskStats()

    @property
    def elapsed(self) -> float:
        """Simulated seconds spent on I/O so far."""
        return self.stats.elapsed

    def _access(self, address: int, *, is_write: bool) -> None:
        sequential = self._head is not None and address == self._head + 1
        if not sequential and is_write and self.write_cache:
            # Backward-adjacent writes are absorbed by the write cache
            # (Appendix A): the reverse-file format writes page k, k-1, ...
            sequential = self._head is not None and address == self._head - 1
        if sequential:
            self.stats.sequential_accesses += 1
            self.stats.elapsed += self.geometry.sequential_access_cost()
        else:
            self.stats.random_accesses += 1
            self.stats.elapsed += self.geometry.random_access_cost()
        self._head = address
