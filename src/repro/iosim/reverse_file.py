"""Backwards-written files for decreasing streams (Appendix A.2).

2WRS emits two *decreasing* streams per run (streams 2 and 4).  The merge
phase must read every run file forward (sequential reads are an order of
magnitude cheaper, Appendix A.1), so decreasing streams are written to
disk *backwards*: a chain of fixed-size files of ``k`` pages each, where
records fill each file from the last page toward the first, and files
are chained so that reading them in reverse creation order, pages
forward, yields the records in ascending order.

Each file reserves page 0 as a header carrying:

* ``file_index``     — position of this file in the chain,
* ``num_pages``      — the fixed file size ``k`` (including the header),
* ``start_page`` / ``start_offset`` — where the data begins (only the
  last file of a chain can start mid-file).

A one-page write buffer (memory taken from the sorting algorithm, as the
paper notes) batches record writes so each page is written exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from repro.iosim.files import SimulatedFileSystem

#: Paper default: 1000 pages per file (~40 MB files in the original setup).
DEFAULT_PAGES_PER_FILE = 1000


@dataclass(frozen=True, slots=True)
class ReverseFileHeader:
    """Header stored in page 0 of each backwards-written file."""

    file_index: int
    num_pages: int
    start_page: int
    start_offset: int


class _ReverseFileChunk:
    """One fixed-size file of the chain; pages indexed 0 .. num_pages-1."""

    def __init__(self, base_address: int, num_pages: int, file_index: int) -> None:
        self.base_address = base_address
        self.num_pages = num_pages
        self.file_index = file_index
        # Data pages (index 1..num_pages-1); filled back to front.
        self.pages: List[Optional[List[Any]]] = [None] * num_pages
        self.header: Optional[ReverseFileHeader] = None


class ReverseRunWriter:
    """Write a decreasing stream so it can be *read* in ascending order.

    Records must be appended in decreasing key order (that is how the
    BottomHeap and the victim's stream 2 release them); they land on disk
    such that a forward read of the chain is ascending.
    """

    def __init__(
        self,
        fs: SimulatedFileSystem,
        name: str,
        pages_per_file: int = DEFAULT_PAGES_PER_FILE,
    ) -> None:
        if pages_per_file < 2:
            raise ValueError(
                f"pages_per_file must be >= 2 (1 header + 1 data), got {pages_per_file}"
            )
        self._fs = fs
        self.name = name
        self._pages_per_file = pages_per_file
        self._page_records = fs.disk.geometry.page_records
        self._chunks: List[_ReverseFileChunk] = []
        self._current: Optional[_ReverseFileChunk] = None
        self._next_page: int = 0  # page index to write next (counts down)
        self._buffer: List[Any] = []  # one-page write buffer
        self._count = 0
        self._closed = False

    def __len__(self) -> int:
        return self._count

    @property
    def num_files(self) -> int:
        return len(self._chunks)

    def append(self, record: Any) -> None:
        """Append the next (smaller) record of the decreasing stream."""
        if self._closed:
            raise ValueError(f"reverse file {self.name!r} is closed")
        self._buffer.append(record)
        self._count += 1
        if len(self._buffer) >= self._page_records:
            self._flush_page(full=True)

    def close(self) -> None:
        """Flush pending records and write all headers."""
        if self._closed:
            return
        if self._buffer:
            self._flush_page(full=False)
        for chunk in self._chunks:
            start_page, start_offset = self._start_of(chunk)
            chunk.header = ReverseFileHeader(
                file_index=chunk.file_index,
                num_pages=chunk.num_pages,
                start_page=start_page,
                start_offset=start_offset,
            )
            # Header lives in page 0 of the chunk.
            self._fs.disk.write_page(chunk.base_address)
        self._closed = True

    def _start_of(self, chunk: _ReverseFileChunk) -> tuple[int, int]:
        """First data page and in-page offset for a chunk."""
        for page_index in range(1, chunk.num_pages):
            page = chunk.pages[page_index]
            if page is not None:
                offset = self._page_records - len(page)
                return page_index, offset
        return chunk.num_pages, 0  # fully empty chunk (never happens in practice)

    def _flush_page(self, *, full: bool) -> None:
        if self._current is None or self._next_page < 1:
            self._open_chunk()
        assert self._current is not None
        page_index = self._next_page
        # Records arrived in decreasing order; stored ascending within
        # the page so a forward page read is ascending.
        self._current.pages[page_index] = list(reversed(self._buffer))
        self._fs.disk.write_page(self._current.base_address + page_index)
        self._buffer = []
        self._next_page -= 1

    def _open_chunk(self) -> None:
        chunk = _ReverseFileChunk(
            base_address=self._fs.allocate_base(),
            num_pages=self._pages_per_file,
            file_index=len(self._chunks),
        )
        self._chunks.append(chunk)
        self._current = chunk
        self._next_page = self._pages_per_file - 1


class ReverseRunReader:
    """Read a closed :class:`ReverseRunWriter` chain in ascending order."""

    def __init__(self, writer: ReverseRunWriter) -> None:
        if not writer._closed:
            raise ValueError(f"reverse file {writer.name!r} must be closed first")
        self._fs = writer._fs
        self._chunks = writer._chunks
        self.name = writer.name

    def records(self) -> Iterator[Any]:
        """Yield records smallest-first with sequential page reads.

        Files are visited newest-first (the last chunk holds the smallest
        records) and pages forward within each file, so the disk sees a
        forward scan per file.
        """
        for chunk in reversed(self._chunks):
            # Read the header first (page 0), as a real reader would.
            self._fs.disk.read_page(chunk.base_address)
            header = chunk.header
            assert header is not None
            for page_index in range(header.start_page, chunk.num_pages):
                page = chunk.pages[page_index]
                if page is None:
                    continue
                self._fs.disk.read_page(chunk.base_address + page_index)
                yield from page

    def records_buffered(self, buffer_pages: int) -> Iterator[Any]:
        """Yield records ascending, refilling several pages at a time.

        Within each chunk file the data pages are contiguous, so a refill
        of ``buffer_pages`` pages pays at most one seek; this matches the
        buffered interface of :class:`~repro.iosim.files.SimulatedFile`
        that the merge tree consumes.
        """
        if buffer_pages < 1:
            raise ValueError(f"buffer_pages must be >= 1, got {buffer_pages}")
        for chunk in reversed(self._chunks):
            self._fs.disk.read_page(chunk.base_address)
            header = chunk.header
            assert header is not None
            page_index = header.start_page
            while page_index < chunk.num_pages:
                stop = min(page_index + buffer_pages, chunk.num_pages)
                buffered: List[Any] = []
                for i in range(page_index, stop):
                    page = chunk.pages[i]
                    if page is None:
                        continue
                    self._fs.disk.read_page(chunk.base_address + i)
                    buffered.extend(page)
                page_index = stop
                yield from buffered

    def read_all(self) -> List[Any]:
        """Materialise the whole stream ascending."""
        return list(self.records())
