"""Crossed factorial experiment runner for 2WRS (Section 5.2).

The paper runs every combination of the four configuration factors
(Table 5.1) on each input dataset, five seeds per cell, and models the
*number of runs generated* with ANOVA.  This module builds those
observation tables at a configurable scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import TwoWayConfig
from repro.core.heuristics import INPUT_HEURISTICS, OUTPUT_HEURISTICS
from repro.core.two_way import TwoWayReplacementSelection
from repro.stats.anova import Factor, FactorialDesign
from repro.workloads.generators import make_input

#: Factor i levels (Table 5.1): which buffers exist.
BUFFER_SETUP_LEVELS: Tuple[str, ...] = ("input", "both", "victim")

#: Factor j levels: fraction of memory for buffers.
BUFFER_SIZE_LEVELS: Tuple[float, ...] = (0.0002, 0.002, 0.02, 0.20)

#: Factor k levels: input heuristics (paper order 0..5).
INPUT_HEURISTIC_LEVELS: Tuple[str, ...] = (
    "random",
    "alternate",
    "mean",
    "median",
    "useful",
    "balancing",
)

#: Factor l levels: output heuristics (paper order 0..4).
OUTPUT_HEURISTIC_LEVELS: Tuple[str, ...] = (
    "random",
    "alternate",
    "useful",
    "balancing",
    "min_distance",
)


@dataclass(slots=True)
class FactorialSettings:
    """Scale and factor subsets of a factorial sweep.

    The defaults cross every level the paper tests; experiments shrink
    the heuristic sets to keep benchmark runtimes reasonable (that
    subset choice is logged in EXPERIMENTS.md).
    """

    memory_capacity: int = 500
    input_records: int = 25_000
    seeds: Sequence[int] = (11, 22, 33, 44, 55)
    buffer_setups: Sequence[str] = BUFFER_SETUP_LEVELS
    buffer_sizes: Sequence[float] = BUFFER_SIZE_LEVELS
    input_heuristics: Sequence[str] = INPUT_HEURISTIC_LEVELS
    output_heuristics: Sequence[str] = OUTPUT_HEURISTIC_LEVELS

    def validate(self) -> None:
        unknown_in = set(self.input_heuristics) - set(INPUT_HEURISTICS)
        unknown_out = set(self.output_heuristics) - set(OUTPUT_HEURISTICS)
        if unknown_in:
            raise ValueError(f"unknown input heuristics: {sorted(unknown_in)}")
        if unknown_out:
            raise ValueError(f"unknown output heuristics: {sorted(unknown_out)}")
        if not self.seeds:
            raise ValueError("need at least one seed")

    @property
    def cells(self) -> int:
        return (
            len(self.buffer_setups)
            * len(self.buffer_sizes)
            * len(self.input_heuristics)
            * len(self.output_heuristics)
        )


#: Base seed of the underlying datasets; replicates vary only the
#: additive noise, exactly as the paper's ANOVA does (Section 5.2).
BASE_DATASET_SEED = 1234


def count_runs(
    dataset: str,
    config: TwoWayConfig,
    memory_capacity: int,
    input_records: int,
    seed: int,
) -> int:
    """Run 2WRS once and return the number of runs generated.

    ``seed`` re-draws only the noise added on top of a fixed base
    dataset, so per-cell variance reflects the noise (as in the paper)
    rather than an entirely different input.
    """
    records = make_input(
        dataset, input_records, seed=BASE_DATASET_SEED, noise_seed=seed
    )
    algorithm = TwoWayReplacementSelection(memory_capacity, config)
    return algorithm.count_runs(records)


def run_factorial(
    dataset: str,
    settings: Optional[FactorialSettings] = None,
) -> FactorialDesign:
    """Produce the observation table for one input dataset.

    Factors are named as in Table 5.1: ``i`` (buffer setup), ``j``
    (buffer size), ``k`` (input heuristic), ``l`` (output heuristic);
    the response is the number of runs generated.
    """
    settings = settings if settings is not None else FactorialSettings()
    settings.validate()
    design = FactorialDesign(
        [
            Factor("i", tuple(settings.buffer_setups)),
            Factor("j", tuple(str(s) for s in settings.buffer_sizes)),
            Factor("k", tuple(settings.input_heuristics)),
            Factor("l", tuple(settings.output_heuristics)),
        ]
    )
    for setup in settings.buffer_setups:
        for size in settings.buffer_sizes:
            for input_h in settings.input_heuristics:
                for output_h in settings.output_heuristics:
                    for seed in settings.seeds:
                        config = TwoWayConfig(
                            buffer_setup=setup,
                            buffer_fraction=size,
                            input_heuristic=input_h,
                            output_heuristic=output_h,
                            seed=seed,
                        )
                        runs = count_runs(
                            dataset,
                            config,
                            settings.memory_capacity,
                            settings.input_records,
                            seed,
                        )
                        design.add(
                            (setup, str(size), input_h, output_h), runs
                        )
    return design


def runs_by_dataset(
    datasets: Sequence[str],
    settings: Optional[FactorialSettings] = None,
) -> Dict[str, List[float]]:
    """Raw per-dataset observations (the data behind Figure 5.2)."""
    out: Dict[str, List[float]] = {}
    for dataset in datasets:
        design = run_factorial(dataset, settings)
        out[dataset] = list(design.values)
    return out
