"""Tukey HSD pairwise comparisons (Section 5.2, Tables 5.7-5.9, 5.12).

After a factor is found significant, the paper compares its levels
pairwise with Tukey's test to identify which levels are statistically
indistinguishable — the optimal-configuration tables list the best
levels together with the pairs the test failed to separate.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import stats as sstats

from repro.stats.anova import AnovaResult, FactorialDesign


@dataclass(frozen=True, slots=True)
class PairwiseComparison:
    """One row of a Tukey comparison table."""

    level_a: str
    level_b: str
    mean_a: float
    mean_b: float
    q_statistic: float
    significance: float

    def rejects_equality(self, alpha: float = 0.05) -> bool:
        """True when the test finds the level means different."""
        return self.significance < alpha


@dataclass(slots=True)
class TukeyResult:
    """All pairwise comparisons of one factor (or factor combination)."""

    factor: Tuple[str, ...]
    comparisons: List[PairwiseComparison]
    means: Dict[str, float]

    def significance_matrix(self) -> Dict[Tuple[str, str], float]:
        """(level, level) -> significance, both orientations filled."""
        out: Dict[Tuple[str, str], float] = {}
        for row in self.comparisons:
            out[(row.level_a, row.level_b)] = row.significance
            out[(row.level_b, row.level_a)] = row.significance
        return out

    def best_levels(self, alpha: float = 0.05, minimize: bool = True) -> List[str]:
        """Levels statistically indistinguishable from the best mean.

        The paper marks these in boldface: the level with the smallest
        mean (we minimise the number of runs) plus every level whose
        pairwise comparison against it fails to reject equality.
        """
        ordered = sorted(self.means, key=self.means.get, reverse=not minimize)
        best = ordered[0]
        matrix = self.significance_matrix()
        chosen = [best]
        for level in ordered[1:]:
            if matrix.get((best, level), 0.0) >= alpha:
                chosen.append(level)
        return chosen

    def format_table(self, alpha: float = 0.05) -> str:
        """Render the pairwise significance matrix (Table 5.7 layout)."""
        levels = sorted(self.means)
        matrix = self.significance_matrix()
        header = " " * 8 + "".join(f"{lv:>10}" for lv in levels)
        lines = [header]
        for a in levels:
            cells = []
            for b in levels:
                if a == b:
                    cells.append(f"{'-':>10}")
                else:
                    cells.append(f"{matrix[(a, b)]:>10.3f}")
            lines.append(f"{a:<8}" + "".join(cells))
        return "\n".join(lines)


def tukey_hsd(
    design: FactorialDesign,
    anova_result: AnovaResult,
    factors: Sequence[str],
) -> TukeyResult:
    """Tukey HSD over the levels of one factor or factor combination.

    Uses the fitted model's MSE and residual df as the error estimate,
    and the studentized range distribution for significance — the same
    procedure SPSS applies in the paper's Chapter 5.

    For combinations, levels are joined with "/" (e.g. "mean/random").
    """
    names = list(factors)
    groups = design.group_means(names)
    counts: Dict[tuple, int] = {}
    idxs = [design.factor_index(n) for n in names]
    for coded, _ in design._rows:  # noqa: SLF001 - same-package access
        key = tuple(design.factors[i].levels[coded[i]] for i in idxs)
        counts[key] = counts.get(key, 0) + 1

    labels = {key: "/".join(key) for key in groups}
    k = len(groups)
    if k < 2:
        raise ValueError(f"need >= 2 level combinations, got {k}")
    mse = anova_result.mse
    df = anova_result.residual_df

    comparisons: List[PairwiseComparison] = []
    for key_a, key_b in combinations(sorted(groups), 2):
        mean_a, mean_b = groups[key_a], groups[key_b]
        n_a, n_b = counts[key_a], counts[key_b]
        # Tukey-Kramer standard error for (possibly) unequal cell sizes.
        se = np.sqrt(mse / 2.0 * (1.0 / n_a + 1.0 / n_b))
        if se == 0:
            q = float("inf") if mean_a != mean_b else 0.0
            significance = 0.0 if mean_a != mean_b else 1.0
        else:
            q = abs(mean_a - mean_b) / se
            significance = float(sstats.studentized_range.sf(q, k, df))
        comparisons.append(
            PairwiseComparison(
                level_a=labels[key_a],
                level_b=labels[key_b],
                mean_a=mean_a,
                mean_b=mean_b,
                q_statistic=q,
                significance=significance,
            )
        )
    return TukeyResult(
        factor=tuple(names),
        comparisons=comparisons,
        means={labels[k_]: v for k_, v in groups.items()},
    )
