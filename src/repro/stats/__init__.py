"""Statistical machinery of the paper's Chapter 5 (Appendix B)."""

from repro.stats.anova import (
    AnovaResult,
    Factor,
    FactorialDesign,
    TermResult,
    all_main_effects,
    anova,
    first_order_interactions,
    one_way_anova,
    wls_weights_by_factor,
)
from repro.stats.diagnostics import (
    AssumptionReport,
    ResidualReport,
    cell_residuals,
    check_assumptions,
    residual_histogram,
)
from repro.stats.factorial import (
    BUFFER_SETUP_LEVELS,
    BUFFER_SIZE_LEVELS,
    INPUT_HEURISTIC_LEVELS,
    OUTPUT_HEURISTIC_LEVELS,
    FactorialSettings,
    count_runs,
    run_factorial,
    runs_by_dataset,
)
from repro.stats.tukey import PairwiseComparison, TukeyResult, tukey_hsd

__all__ = [
    "AnovaResult",
    "AssumptionReport",
    "ResidualReport",
    "cell_residuals",
    "check_assumptions",
    "residual_histogram",
    "BUFFER_SETUP_LEVELS",
    "BUFFER_SIZE_LEVELS",
    "Factor",
    "FactorialDesign",
    "FactorialSettings",
    "INPUT_HEURISTIC_LEVELS",
    "OUTPUT_HEURISTIC_LEVELS",
    "PairwiseComparison",
    "TermResult",
    "TukeyResult",
    "all_main_effects",
    "anova",
    "count_runs",
    "first_order_interactions",
    "one_way_anova",
    "run_factorial",
    "runs_by_dataset",
    "tukey_hsd",
    "wls_weights_by_factor",
]
