"""Fixed-effects ANOVA (Appendix B).

Implements the analysis pipeline of the paper's Chapter 5:

* one-way and n-way fixed-effects ANOVA with arbitrary interaction
  terms, on (balanced) crossed factorial designs;
* Minimum Least Squares and Weighted Least Squares parameter
  estimation (Appendix B.5; WLS weights 1/sigma^2 per level, Section
  5.2.5);
* per-term F tests with significance and observed power (non-central F),
* the model-quality statistics the paper reports: R^2, residual sigma,
  and the coefficient of variation CV.

The implementation fits the linear model by (weighted) least squares on
a sum-to-zero effect-coded design matrix, and computes each term's sum
of squares as the increase in residual sum of squares when the term is
dropped — for balanced designs this coincides with the classical
textbook decomposition used by the paper (and SPSS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as sstats


@dataclass(frozen=True, slots=True)
class Factor:
    """A categorical explanatory variable."""

    name: str
    levels: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.levels) < 2:
            raise ValueError(
                f"factor {self.name!r} needs >= 2 levels, got {self.levels}"
            )
        if len(set(self.levels)) != len(self.levels):
            raise ValueError(f"factor {self.name!r} has duplicate levels")


@dataclass(slots=True)
class TermResult:
    """One row of an ANOVA table."""

    term: Tuple[str, ...]
    sum_squares: float
    df: int
    mean_squares: float
    f_value: float
    significance: float
    power: float

    @property
    def label(self) -> str:
        return "*".join(self.term)

    def is_significant(self, alpha: float = 0.05) -> bool:
        return self.significance < alpha


@dataclass(slots=True)
class AnovaResult:
    """A fitted ANOVA model."""

    terms: List[TermResult]
    residual_ss: float
    residual_df: int
    total_ss: float
    grand_mean: float
    r_squared: float
    sigma: float
    cv_percent: float
    weighted: bool = False
    cell_means: Dict[tuple, float] = field(default_factory=dict)

    @property
    def mse(self) -> float:
        if self.residual_df == 0:
            return 0.0
        return self.residual_ss / self.residual_df

    def term(self, *names: str) -> TermResult:
        """Look up a term row by its factor names (order-insensitive)."""
        wanted = frozenset(names)
        for row in self.terms:
            if frozenset(row.term) == wanted:
                return row
        raise KeyError(f"no term {names} in the model")

    def format_table(self) -> str:
        """Render the table in the paper's layout (e.g. Table 5.2)."""
        lines = [
            f"{'Factor':<22}{'SS':>14}{'D.F.':>7}{'MSS':>14}"
            f"{'F':>12}{'Sig.':>8}{'Power':>8}"
        ]
        for row in self.terms:
            lines.append(
                f"{row.label:<22}{row.sum_squares:>14.3f}{row.df:>7d}"
                f"{row.mean_squares:>14.3f}{row.f_value:>12.3f}"
                f"{row.significance:>8.3f}{row.power:>8.3f}"
            )
        lines.append(
            f"R2 = {self.r_squared:.3f}   sigma = {np.sqrt(self.mse):.3f}   "
            f"CV = {self.cv_percent:.2f}%"
        )
        return "\n".join(lines)


class FactorialDesign:
    """Observations of a crossed factorial experiment.

    Parameters
    ----------
    factors:
        The explanatory variables, in the order level tuples use.
    """

    def __init__(self, factors: Sequence[Factor]) -> None:
        if not factors:
            raise ValueError("need at least one factor")
        names = [f.name for f in factors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate factor names: {names}")
        self.factors = list(factors)
        self._level_index = [
            {level: i for i, level in enumerate(f.levels)} for f in factors
        ]
        self._rows: List[Tuple[Tuple[int, ...], float]] = []

    def add(self, levels: Sequence[str], value: float) -> None:
        """Record one observation at the given factor levels."""
        if len(levels) != len(self.factors):
            raise ValueError(
                f"expected {len(self.factors)} levels, got {len(levels)}"
            )
        coded = []
        for idx, (factor, level) in enumerate(zip(self.factors, levels)):
            try:
                coded.append(self._level_index[idx][level])
            except KeyError:
                raise ValueError(
                    f"unknown level {level!r} for factor {factor.name!r}"
                ) from None
        self._rows.append((tuple(coded), float(value)))

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def values(self) -> np.ndarray:
        return np.array([v for (_, v) in self._rows], dtype=float)

    @property
    def coded_levels(self) -> np.ndarray:
        return np.array([c for (c, _) in self._rows], dtype=int)

    def factor_index(self, name: str) -> int:
        for i, factor in enumerate(self.factors):
            if factor.name == name:
                return i
        raise KeyError(f"no factor named {name!r}")

    def level_means(self, name: str) -> Dict[str, float]:
        """Mean of the response grouped by one factor's levels."""
        idx = self.factor_index(name)
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for coded, value in self._rows:
            key = coded[idx]
            sums[key] = sums.get(key, 0.0) + value
            counts[key] = counts.get(key, 0) + 1
        factor = self.factors[idx]
        return {
            factor.levels[k]: sums[k] / counts[k] for k in sorted(sums)
        }

    def level_variances(self, name: str) -> Dict[str, float]:
        """Sample variance of the response by one factor's levels."""
        idx = self.factor_index(name)
        groups: Dict[int, List[float]] = {}
        for coded, value in self._rows:
            groups.setdefault(coded[idx], []).append(value)
        factor = self.factors[idx]
        out: Dict[str, float] = {}
        for k, values in groups.items():
            arr = np.array(values)
            out[factor.levels[k]] = float(arr.var(ddof=1)) if len(arr) > 1 else 0.0
        return out

    def group_means(self, names: Sequence[str]) -> Dict[tuple, float]:
        """Mean response for every combination of the named factors."""
        idxs = [self.factor_index(n) for n in names]
        sums: Dict[tuple, float] = {}
        counts: Dict[tuple, int] = {}
        for coded, value in self._rows:
            key = tuple(self.factors[i].levels[coded[i]] for i in idxs)
            sums[key] = sums.get(key, 0.0) + value
            counts[key] = counts.get(key, 0) + 1
        return {k: sums[k] / counts[k] for k in sums}


def _effect_columns(num_levels: int) -> np.ndarray:
    """Sum-to-zero effect coding: (levels x (levels-1)) matrix."""
    coding = np.zeros((num_levels, num_levels - 1))
    for j in range(num_levels - 1):
        coding[j, j] = 1.0
    coding[num_levels - 1, :] = -1.0
    return coding


def _term_columns(
    design: FactorialDesign, term: Tuple[str, ...]
) -> np.ndarray:
    """Design-matrix columns of one main effect or interaction term."""
    coded = design.coded_levels
    blocks: List[np.ndarray] = []
    for name in term:
        idx = design.factor_index(name)
        coding = _effect_columns(len(design.factors[idx].levels))
        blocks.append(coding[coded[:, idx]])
    columns = blocks[0]
    for block in blocks[1:]:
        # Kronecker-style column products for interactions.
        columns = np.einsum("ni,nj->nij", columns, block).reshape(
            len(coded), -1
        )
    return columns


def _weighted_rss(
    x: np.ndarray, y: np.ndarray, w: Optional[np.ndarray]
) -> float:
    """Residual sum of squares of the (weighted) least-squares fit."""
    if w is not None:
        sw = np.sqrt(w)
        x = x * sw[:, None]
        y = y * sw
    beta, _, _, _ = np.linalg.lstsq(x, y, rcond=None)
    residual = y - x @ beta
    return float(residual @ residual)


def anova(
    design: FactorialDesign,
    terms: Sequence[Sequence[str]],
    weights: Optional[np.ndarray] = None,
    alpha: float = 0.05,
) -> AnovaResult:
    """Fit an n-way fixed-effects ANOVA.

    Parameters
    ----------
    design:
        The observations.
    terms:
        Model terms: sequences of factor names, e.g.
        ``[("i",), ("j",), ("i", "j")]`` for two mains plus their
        interaction.
    weights:
        Optional per-observation WLS weights (Section 5.2.5 uses
        ``1 / variance(level)``); None = ordinary least squares.
    alpha:
        Significance level for the power computation.
    """
    if len(design) == 0:
        raise ValueError("design has no observations")
    y = design.values
    n = len(y)
    term_tuples = [tuple(t) for t in terms]
    if len({frozenset(t) for t in term_tuples}) != len(term_tuples):
        raise ValueError(f"duplicate terms in {term_tuples}")

    w = np.asarray(weights, dtype=float) if weights is not None else None
    if w is not None and len(w) != n:
        raise ValueError(f"got {len(w)} weights for {n} observations")

    intercept = np.ones((n, 1))
    blocks = {t: _term_columns(design, t) for t in term_tuples}
    full_x = np.hstack([intercept] + [blocks[t] for t in term_tuples])
    full_rss = _weighted_rss(full_x, y, w)

    if w is None:
        grand_mean = float(y.mean())
        total_ss = float(((y - grand_mean) ** 2).sum())
    else:
        grand_mean = float((w * y).sum() / w.sum())
        total_ss = float((w * (y - grand_mean) ** 2).sum())

    model_df = sum(
        int(np.prod([len(design.factors[design.factor_index(f)].levels) - 1 for f in t]))
        for t in term_tuples
    )
    residual_df = n - 1 - model_df
    if residual_df <= 0:
        raise ValueError(
            f"saturated model: {model_df} parameters for {n} observations"
        )
    mse = full_rss / residual_df

    rows: List[TermResult] = []
    for t in term_tuples:
        reduced = [u for u in term_tuples if u != t]
        reduced_x = np.hstack(
            [intercept] + [blocks[u] for u in reduced]
        )
        ss = _weighted_rss(reduced_x, y, w) - full_rss
        ss = max(0.0, ss)
        df = int(
            np.prod(
                [len(design.factors[design.factor_index(f)].levels) - 1 for f in t]
            )
        )
        ms = ss / df
        if mse > 0:
            f_value = ms / mse
            significance = float(sstats.f.sf(f_value, df, residual_df))
            f_crit = float(sstats.f.isf(alpha, df, residual_df))
            power = float(sstats.ncf.sf(f_crit, df, residual_df, ss / mse))
        else:
            # A perfect fit: any non-zero effect is trivially detected.
            f_value = float("inf") if ss > 0 else 0.0
            significance = 0.0 if ss > 0 else 1.0
            power = 1.0 if ss > 0 else 0.0
        rows.append(
            TermResult(
                term=t,
                sum_squares=ss,
                df=df,
                mean_squares=ms,
                f_value=f_value,
                significance=significance,
                power=power,
            )
        )

    r_squared = 1.0 - full_rss / total_ss if total_ss > 0 else 1.0
    sigma = float(np.sqrt(mse))
    cv = 100.0 * sigma / abs(grand_mean) if grand_mean != 0 else float("inf")
    return AnovaResult(
        terms=rows,
        residual_ss=full_rss,
        residual_df=residual_df,
        total_ss=total_ss,
        grand_mean=grand_mean,
        r_squared=r_squared,
        sigma=sigma,
        cv_percent=cv,
        weighted=w is not None,
    )


def one_way_anova(design: FactorialDesign, factor: str) -> AnovaResult:
    """Convenience wrapper: single-factor model (Appendix B.2)."""
    return anova(design, [(factor,)])


def all_main_effects(design: FactorialDesign) -> List[Tuple[str, ...]]:
    """Main-effect terms for every factor of a design."""
    return [(f.name,) for f in design.factors]


def first_order_interactions(design: FactorialDesign) -> List[Tuple[str, ...]]:
    """All two-factor interaction terms of a design."""
    names = [f.name for f in design.factors]
    return [
        (a, b) for i, a in enumerate(names) for b in names[i + 1 :]
    ]


def wls_weights_by_factor(
    design: FactorialDesign, factor: str
) -> np.ndarray:
    """Per-observation weights 1/variance(level of ``factor``).

    The paper's WLS models (Tables 5.6 and 5.11) weight by the inverse
    variance of the response within each buffer-size level.
    """
    variances = design.level_variances(factor)
    idx = design.factor_index(factor)
    levels = design.factors[idx].levels
    floor = max(1e-12, min((v for v in variances.values() if v > 0), default=1.0) * 1e-6)
    coded = design.coded_levels[:, idx]
    return np.array(
        [1.0 / max(variances[levels[c]], floor) for c in coded], dtype=float
    )
