"""Model-assumption diagnostics for ANOVA (Appendix B.3).

The paper validates each fitted model against the three ANOVA
hypotheses before trusting it:

* **independence** — standardized residuals show no pattern against the
  predicted values;
* **normality** — residuals follow a bell curve (the paper plots
  histograms, Figures 5.7 and 5.10);
* **homoscedasticity** — the response variance is equal across the
  levels of each factor (when it fails, the paper switches to WLS,
  Sections 5.2.5-5.2.6).

This module computes the residuals and runs the standard tests
(Shapiro-Wilk for normality, Levene for equal variances, a
residual-vs-prediction correlation probe for independence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import stats as sstats

from repro.stats.anova import FactorialDesign


@dataclass(slots=True)
class ResidualReport:
    """Standardized residuals of a cell-means fit."""

    residuals: np.ndarray
    standardized: np.ndarray
    predictions: np.ndarray


@dataclass(slots=True)
class AssumptionReport:
    """Outcome of the three Appendix B.3 hypothesis checks."""

    normality_p: float
    independence_correlation: float
    homoscedasticity_p: Dict[str, float]

    def normality_ok(self, alpha: float = 0.05) -> bool:
        """True when Shapiro-Wilk fails to reject normal residuals."""
        return self.normality_p >= alpha

    def homoscedastic(self, factor: str, alpha: float = 0.05) -> bool:
        """True when Levene fails to reject equal variances for a factor."""
        return self.homoscedasticity_p[factor] >= alpha

    def wls_recommended(self, alpha: float = 0.05) -> List[str]:
        """Factors whose unequal variances suggest WLS re-estimation."""
        return [
            factor
            for factor, p_value in self.homoscedasticity_p.items()
            if p_value < alpha
        ]


def cell_residuals(
    design: FactorialDesign, factors: Sequence[str]
) -> ResidualReport:
    """Residuals of the saturated cell-means model over ``factors``.

    Each observation is compared to the mean of its cell; this is the
    error term every ANOVA model of the paper shares.
    """
    means = design.group_means(list(factors))
    idxs = [design.factor_index(name) for name in factors]
    predictions = []
    values = []
    for coded, value in design._rows:  # noqa: SLF001 - same-package access
        key = tuple(design.factors[i].levels[coded[i]] for i in idxs)
        predictions.append(means[key])
        values.append(value)
    predictions_arr = np.array(predictions)
    values_arr = np.array(values)
    residuals = values_arr - predictions_arr
    scale = residuals.std(ddof=1) if len(residuals) > 1 else 1.0
    if scale == 0:
        standardized = np.zeros_like(residuals)
    else:
        standardized = residuals / scale
    return ResidualReport(
        residuals=residuals,
        standardized=standardized,
        predictions=predictions_arr,
    )


def residual_histogram(
    report: ResidualReport, bins: int = 11
) -> List[Tuple[float, int]]:
    """Histogram of standardized residuals (Figures 5.7 / 5.10).

    Returns (bin center, count) pairs, ready for ASCII plotting.
    """
    counts, edges = np.histogram(report.standardized, bins=bins)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return list(zip(centers.tolist(), counts.tolist()))


def check_assumptions(
    design: FactorialDesign, factors: Sequence[str]
) -> AssumptionReport:
    """Run the three hypothesis checks of Appendix B.3."""
    report = cell_residuals(design, factors)
    residuals = report.residuals

    if len(residuals) >= 3 and residuals.std() > 0:
        _, normality_p = sstats.shapiro(residuals)
    else:
        normality_p = 1.0

    if residuals.std() > 0 and report.predictions.std() > 0:
        correlation = float(
            np.corrcoef(report.predictions, np.abs(residuals))[0, 1]
        )
    else:
        correlation = 0.0

    homoscedasticity: Dict[str, float] = {}
    for factor in design.factors:
        groups: Dict[str, List[float]] = {}
        idx = design.factor_index(factor.name)
        for (coded, value) in design._rows:  # noqa: SLF001
            groups.setdefault(factor.levels[coded[idx]], []).append(value)
        samples = [np.array(v) for v in groups.values() if len(v) > 1]
        if len(samples) >= 2 and any(s.std() > 0 for s in samples):
            _, p_value = sstats.levene(*samples)
        else:
            p_value = 1.0
        homoscedasticity[factor.name] = float(p_value)

    return AssumptionReport(
        normality_p=float(normality_p),
        independence_correlation=correlation,
        homoscedasticity_p=homoscedasticity,
    )
