"""Closed-form run-length predictions from the paper's theorems.

Section 5.1 proves what RS and 2WRS produce on the structured
distributions; this module turns those statements into callable
predictors so experiments and tests can compare *measured* run counts
against *proved* ones.

All functions return the predicted **number of runs** for an input of
``n`` records and a memory of ``m`` records.

Not to be confused with :mod:`repro.lint`, the *static* analysis of
this codebase's own invariants — this module analyses the paper's
algorithms, not the source tree.
"""

from __future__ import annotations

import math


def _require(n: int, m: int) -> None:
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")


def rs_runs_sorted(n: int, m: int) -> int:
    """Theorem 1: sorted input gives one run (when n > 0)."""
    _require(n, m)
    return 1 if n else 0


def rs_runs_reverse_sorted(n: int, m: int) -> int:
    """Theorem 3: reverse-sorted input gives runs of exactly m records."""
    _require(n, m)
    return math.ceil(n / m)


def rs_runs_random(n: int, m: int) -> float:
    """Section 3.5 (Knuth's snowplow): runs average 2 m records."""
    _require(n, m)
    if n == 0:
        return 0.0
    return n / (2.0 * m)


def rs_alternating_average_run_length(k: int, m: int) -> float:
    """Theorem 5: average RS run length for alternating sections of k.

    The proof derives ``2 k / (1 + ceil(k/m - 1/2))`` records per run
    for one ascending-plus-descending period of 2 k records (m << k).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    _require(k, m)
    denominator = 1 + math.ceil(k / m - 0.5)
    return 2.0 * k / denominator


def rs_runs_alternating(n: int, sections: int, m: int) -> float:
    """Theorem 5 restated as a run count for the whole input."""
    _require(n, m)
    if sections < 1:
        raise ValueError(f"sections must be >= 1, got {sections}")
    if n == 0:
        return 0.0
    k = n / sections
    average = rs_alternating_average_run_length(int(k), m)
    return n / average


def twrs_runs_sorted(n: int, m: int) -> int:
    """Theorem 2: 2WRS gives one run on sorted input."""
    _require(n, m)
    return 1 if n else 0


def twrs_runs_reverse_sorted(n: int, m: int) -> int:
    """Theorem 4: 2WRS gives one run on reverse-sorted input."""
    _require(n, m)
    return 1 if n else 0


def twrs_runs_alternating(n: int, sections: int, m: int) -> int:
    """Theorem 6: one run per monotone section (k >> m)."""
    _require(n, m)
    if sections < 1:
        raise ValueError(f"sections must be >= 1, got {sections}")
    return sections if n else 0


def twrs_runs_random(n: int, m: int) -> float:
    """Section 5.2.4: 2WRS matches RS's 2 m average on random input."""
    return rs_runs_random(n, m)


def theorem_7_bound(rs_runs: int, twrs_runs: int) -> bool:
    """Theorem 7: with an appropriate heuristic 2WRS never loses to RS.

    Expressed as a predicate on measured run counts.
    """
    return twrs_runs <= rs_runs
