"""Blocking client for the resident sort service.

Used by the CLI ``submit``/``status``/``result``/``cancel``
subcommands, the service tests, and the load generator.  One TCP
connection per request keeps the client trivially robust against
server restarts — exactly the situation the stable job ids exist for.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, TextIO, Tuple

from repro.engine.resilience import read_marker
from repro.service.protocol import ProtocolError, recv_message, send_message

__all__ = ["ServiceClient", "ServiceError", "parse_address", "read_endpoint"]

#: Job states that will never change again (client-side copy so the
#: client works against a server it did not import code from).
_TERMINAL = ("done", "failed", "cancelled")


class ServiceError(Exception):
    """The server answered ``ok: false`` (or unintelligibly)."""


def parse_address(address: str) -> Tuple[str, int]:
    """``host:port`` → a connectable pair."""
    host, sep, port = address.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(
            f"expected HOST:PORT (e.g. 127.0.0.1:7070), got {address!r}"
        )
    return host, int(port)


def read_endpoint(path: str, timeout: float = 10.0) -> str:
    """Wait for a server's endpoint file and return ``host:port``.

    The server publishes the file atomically once it is listening, so
    polling for it is the sanctioned way to wait for startup.
    """
    deadline = time.monotonic() + timeout
    while True:
        payload = read_marker(path)
        if payload and "host" in payload and "port" in payload:
            return f"{payload['host']}:{payload['port']}"
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"no service endpoint appeared at {path!r} "
                f"within {timeout:.0f}s"
            )
        time.sleep(0.05)


class ServiceClient:
    """One server address; every method is a self-contained request."""

    def __init__(self, address: str, timeout: float = 30.0) -> None:
        self.host, self.port = parse_address(address)
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------------

    def _connect(self) -> socket.socket:
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        with self._connect() as sock:
            send_message(sock, payload)
            response = recv_message(sock)
        if response is None:
            raise ServiceError("server closed the connection mid-request")
        if not response.get("ok", False):
            raise ServiceError(
                str(response.get("error", "unspecified server error"))
            )
        return response

    # -- commands --------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self._request({"cmd": "ping"})

    def submit(self, job: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a job spec; returns the job's status payload."""
        return self._request({"cmd": "submit", "job": job})

    def submit_id(self, job_id: str) -> Dict[str, Any]:
        """Re-attach to a job by id (after a server crash/restart)."""
        return self._request({"cmd": "submit", "id": job_id})

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request({"cmd": "status", "id": job_id})

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request({"cmd": "cancel", "id": job_id})

    def jobs(self) -> Dict[str, Any]:
        return self._request({"cmd": "jobs"})

    def shutdown(self) -> Dict[str, Any]:
        return self._request({"cmd": "shutdown"})

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll: float = 0.05,
    ) -> Dict[str, Any]:
        """Poll ``status`` until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.status(job_id)
            if payload.get("status") in _TERMINAL:
                return payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload.get('status')!r} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def result(self, job_id: str, sink: TextIO) -> Dict[str, Any]:
        """Stream a finished job's output into ``sink``.

        Returns the header frame (``bytes`` = total size).  The
        streamed frames arrive on the same connection, so this is the
        one method that keeps its socket open across messages.
        """
        with self._connect() as sock:
            send_message(sock, {"cmd": "result", "id": job_id})
            header = recv_message(sock)
            if header is None:
                raise ServiceError("server closed the connection mid-result")
            if not header.get("ok", False):
                raise ServiceError(
                    str(header.get("error", "unspecified server error"))
                )
            while True:
                frame = recv_message(sock)
                if frame is None:
                    raise ProtocolError(
                        "connection closed before the result 'end' frame"
                    )
                kind = frame.get("type")
                if kind == "chunk":
                    sink.write(str(frame.get("data", "")))
                elif kind == "end":
                    break
                else:
                    raise ProtocolError(
                        f"unexpected result frame type {kind!r}"
                    )
        return header
