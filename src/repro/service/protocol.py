"""Length-prefixed JSON framing shared by server and client.

One message is a 4-byte big-endian payload length followed by that
many bytes of UTF-8 JSON (always one object).  The frame makes the
stream self-delimiting over plain TCP with zero dependencies, and the
JSON body keeps the protocol inspectable — ``nc`` plus a hand-built
header is a usable debugging client.

Both async (server-side ``asyncio`` streams) and sync (client-side
``socket``) helpers live here so the two ends can never drift apart on
framing.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, Optional

__all__ = [
    "MAX_MESSAGE_BYTES",
    "ProtocolError",
    "encode_message",
    "read_message",
    "recv_message",
    "send_message",
    "write_message",
]

_HEADER = struct.Struct("!I")

#: Upper bound on one frame; a length above this is a framing bug (or
#: a stray client speaking another protocol), not a real message.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed frame: bad length, truncated body, non-JSON bytes."""


def encode_message(payload: Dict[str, Any]) -> bytes:
    """One wire frame for ``payload`` (header + UTF-8 JSON body)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(body)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame limit"
        )
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable message body: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"message body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_length(length: int) -> None:
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit"
        )


async def read_message(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, Any]]:
    """Next message from an asyncio stream; None on clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-header") from None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-message") from None
    return _decode_body(body)


async def write_message(
    writer: asyncio.StreamWriter, payload: Dict[str, Any]
) -> None:
    """Send one message over an asyncio stream and drain the buffer."""
    writer.write(encode_message(payload))
    await writer.drain()


def send_message(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Send one message over a blocking socket."""
    sock.sendall(encode_message(payload))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Next message from a blocking socket; None on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise ProtocolError("connection closed mid-header")
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    body = _recv_exactly(sock, length)
    if len(body) < length:
        raise ProtocolError("connection closed mid-message")
    return _decode_body(body)
