"""The resident sort service: an asyncio front over the scheduler.

One event loop accepts connections (``asyncio.start_server``) and
speaks the length-prefixed JSON protocol; all sorting happens in the
scheduler's worker threads, so the loop only ever does cheap dict
work, file-chunk reads via the default executor, and socket I/O.

Commands (one request object per frame)::

    {"cmd": "ping"}
    {"cmd": "submit", "job": {...}}        # spec → stable id
    {"cmd": "submit", "id": "..."}         # re-attach after a crash
    {"cmd": "status", "id": "..."}
    {"cmd": "result", "id": "..."}         # header, chunk*, end frames
    {"cmd": "cancel", "id": "..."}
    {"cmd": "jobs"}
    {"cmd": "shutdown"}

Every response carries ``ok``; failures carry ``error`` and never
close the connection — a client can keep a session open and poll.

Timestamps use the event loop's own monotonic clock (``loop.time()``,
the sanctioned R006 carve-out) — the service never reads the wall
clock, so nothing time-derived can leak into job output.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Dict, Optional, Tuple

from repro.engine.resilience import write_marker
from repro.service.jobs import JobSpec
from repro.service.protocol import (
    ProtocolError,
    read_message,
    write_message,
)
from repro.service.scheduler import JobScheduler

__all__ = ["SortService"]

#: Bytes of result text per streamed chunk frame.
_RESULT_CHUNK_BYTES = 256 * 1024


class SortService:
    """One resident server instance: a scheduler plus its listener."""

    def __init__(
        self,
        spool: str,
        host: str = "127.0.0.1",
        port: int = 0,
        total_memory: int = 100_000,
        job_workers: int = 8,
        tenant_quotas: Optional[Dict[str, int]] = None,
        default_quota: Optional[int] = None,
    ) -> None:
        self.scheduler = JobScheduler(
            spool,
            total_memory=total_memory,
            job_workers=job_workers,
            tenant_quotas=tenant_quotas,
            default_quota=default_quota,
        )
        self.host = host
        self.port = port
        self.bound: Optional[Tuple[str, int]] = None
        self._stop = asyncio.Event()
        self._started_at = 0.0

    async def run(self, endpoint_file: Optional[str] = None) -> None:
        """Serve until a ``shutdown`` command arrives."""
        loop = asyncio.get_running_loop()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self._started_at = loop.time()
        sockname = server.sockets[0].getsockname()
        self.bound = (str(sockname[0]), int(sockname[1]))
        if endpoint_file:
            # Atomic, like every other publish: a client watching for
            # the endpoint file must never read half an address.
            write_marker(
                endpoint_file,
                {"host": self.bound[0], "port": self.bound[1]},
            )
        print(
            f"repro-service listening on {self.bound[0]}:{self.bound[1]} "
            f"(pid {os.getpid()})",
            flush=True,
        )
        async with server:
            await self._stop.wait()
        self.scheduler.shutdown()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_message(reader)
                except ProtocolError as exc:
                    await write_message(
                        writer, {"ok": False, "error": str(exc)}
                    )
                    break
                if request is None:
                    break
                await self._dispatch(request, writer)
                if request.get("cmd") == "shutdown":
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        cmd = str(request.get("cmd", ""))
        try:
            if cmd == "ping":
                loop = asyncio.get_running_loop()
                await write_message(
                    writer,
                    {
                        "ok": True,
                        "uptime_s": round(loop.time() - self._started_at, 3),
                        "jobs": len(self.scheduler.list_jobs()),
                    },
                )
            elif cmd == "submit":
                await write_message(writer, self._submit(request))
            elif cmd == "status":
                await write_message(writer, self._status(request))
            elif cmd == "cancel":
                job_id = str(request.get("id", ""))
                cancelled = self.scheduler.cancel(job_id)
                await write_message(
                    writer, {"ok": True, "id": job_id, "cancelled": cancelled}
                )
            elif cmd == "jobs":
                await write_message(
                    writer, {"ok": True, "jobs": self.scheduler.list_jobs()}
                )
            elif cmd == "result":
                await self._stream_result(request, writer)
            elif cmd == "shutdown":
                await write_message(writer, {"ok": True, "stopping": True})
                self._stop.set()
            else:
                await write_message(
                    writer,
                    {"ok": False, "error": f"unknown command {cmd!r}"},
                )
        except (ValueError, RuntimeError) as exc:
            await write_message(writer, {"ok": False, "error": str(exc)})

    def _submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if "job" in request:
            spec = JobSpec.from_payload(dict(request["job"]))
            state = self.scheduler.submit(spec)
        elif "id" in request:
            reattached = self.scheduler.submit_id(str(request["id"]))
            if reattached is None:
                return {
                    "ok": False,
                    "error": f"unknown job id {request['id']!r} "
                    f"(no persisted spec in the spool)",
                }
            state = reattached
        else:
            return {"ok": False, "error": "submit needs 'job' or 'id'"}
        payload = self.scheduler.status(state.job_id) or {}
        return {"ok": True, **payload}

    def _status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job_id = str(request.get("id", ""))
        payload = self.scheduler.status(job_id)
        if payload is None:
            return {"ok": False, "error": f"unknown job id {job_id!r}"}
        return {"ok": True, **payload}

    async def _stream_result(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job_id = str(request.get("id", ""))
        payload = self.scheduler.status(job_id)
        if payload is None:
            await write_message(
                writer, {"ok": False, "error": f"unknown job id {job_id!r}"}
            )
            return
        if payload["status"] != "done":
            await write_message(
                writer,
                {
                    "ok": False,
                    "error": f"job {job_id} is {payload['status']}, "
                    f"not done; no result to stream",
                },
            )
            return
        path = self.scheduler.result_path(job_id)
        if path is None or not os.path.isfile(path):
            await write_message(
                writer,
                {
                    "ok": False,
                    "error": f"result file for job {job_id} is missing "
                    f"({path!r})",
                },
            )
            return
        loop = asyncio.get_running_loop()
        size = os.path.getsize(path)
        await write_message(
            writer,
            {"ok": True, "type": "header", "id": job_id, "bytes": size},
        )
        # repro: lint-waive R002 result streaming re-reads the published output; the job that wrote it ran inside the seam
        with open(path, "r", encoding="utf-8") as handle:
            while True:
                chunk = await loop.run_in_executor(
                    None, handle.read, _RESULT_CHUNK_BYTES
                )
                if not chunk:
                    break
                await write_message(writer, {"type": "chunk", "data": chunk})
        await write_message(writer, {"type": "end"})
