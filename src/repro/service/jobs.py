"""Job specifications and stable, content-derived job identity.

A job id is the truncated SHA-256 of the spec's canonical JSON form:
the same work submitted twice — including after a server crash — maps
to the same id, which is what makes re-attach work with no server-side
registry surviving the crash.  Everything that changes the output
(operator, inputs, format, keys, aggregates, k) or the durable work
fingerprint (memory, fan-in, codec, checksum…) is part of the
identity; purely ephemeral knobs (nothing today) would not be.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

__all__ = ["JOB_OPS", "STORE_OPS", "JobSpec", "job_id_for"]

#: Operators a job may run: the CLI's file-to-file subcommands, plus
#: the store jobs (DESIGN.md §17) that run against a server-side store
#: directory under the same broker-granted memory budget.
JOB_OPS = (
    "sort", "distinct", "agg", "topk", "join",
    "store_ingest", "store_scan", "store_compact",
)

#: The ops that act on a store directory instead of sorting a file.
STORE_OPS = ("store_ingest", "store_scan", "store_compact")

#: Store ops that read no input file (they only need the directory).
_INPUTLESS_OPS = ("store_scan", "store_compact")

#: Hex digits kept from the SHA-256 — plenty against collisions at
#: service scale, short enough to paste into a terminal.
_ID_HEX = 16

KeyColumns = Union[int, Tuple[int, ...]]


def _normalise_key(value: Any) -> Optional[KeyColumns]:
    """One column (int) or several (tuple) from any JSON-ish shape."""
    if value is None:
        return None
    if isinstance(value, bool):
        raise ValueError(f"key columns must be integers, got {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, (list, tuple)):
        columns = tuple(int(column) for column in value)
        if not columns or any(column < 0 for column in columns):
            raise ValueError(f"key columns must be >= 0, got {value!r}")
        return columns[0] if len(columns) == 1 else columns
    raise ValueError(f"key columns must be an int or a list, got {value!r}")


def _key_payload(key: Optional[KeyColumns]) -> Optional[list]:
    if key is None:
        return None
    return [key] if isinstance(key, int) else list(key)


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to run one job (and to name it).

    ``input``/``right_input``/``output`` are server-side paths: the
    service reads and writes files on its own filesystem, it does not
    ship data over the protocol (results stream back on request).
    ``output`` is optional — without it the result is published under
    the job's spool directory and fetched with ``result``.
    """

    op: str
    input: str
    output: Optional[str] = None
    right_input: Optional[str] = None
    store: Optional[str] = None
    tenant: str = "default"
    fmt: str = "int"
    key: Optional[KeyColumns] = None
    right_key: Optional[KeyColumns] = None
    by: str = "record"
    aggregates: Tuple[str, ...] = ("count",)
    value: Optional[int] = None
    k: int = 0
    memory: int = 10_000
    algorithm: str = "2wrs"
    fan_in: int = 8
    binary_spill: bool = False
    spill_codec: str = "none"
    checksum: bool = False

    def validate(self) -> None:
        if self.op not in JOB_OPS:
            raise ValueError(
                f"unknown op {self.op!r}; expected one of {', '.join(JOB_OPS)}"
            )
        if not self.input and self.op not in _INPUTLESS_OPS:
            raise ValueError("job needs an input path")
        if self.op in STORE_OPS and not self.store:
            raise ValueError(f"{self.op} jobs need a store directory")
        if self.op not in STORE_OPS and self.store:
            raise ValueError(
                f"store only applies to the store_* ops, not {self.op}"
            )
        if self.op == "join" and not self.right_input:
            raise ValueError("join jobs need a right_input path")
        if self.op != "join" and self.right_input:
            raise ValueError(f"right_input only applies to join, not {self.op}")
        if self.op == "topk" and self.k < 0:
            raise ValueError(f"k must be >= 0, got {self.k}")
        if self.memory < 1:
            raise ValueError(f"memory must be >= 1, got {self.memory}")
        if self.fan_in < 2:
            raise ValueError(f"fan_in must be >= 2, got {self.fan_in}")
        if self.key is not None and self.fmt not in ("csv", "tsv"):
            raise ValueError(
                f"key columns only apply to csv/tsv, not {self.fmt!r}"
            )

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobSpec":
        """A validated spec from a submit message's ``job`` object."""
        known = {
            "op", "input", "output", "right_input", "store", "tenant",
            "format", "key", "right_key", "by", "aggregates", "value",
            "k", "memory", "algorithm", "fan_in", "binary_spill",
            "spill_codec", "checksum",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown job fields: {', '.join(unknown)}")
        aggregates = payload.get("aggregates") or ["count"]
        spec = cls(
            op=str(payload.get("op", "")),
            # An absent input stays "" (validate decides whether the op
            # needs one) — abspath("") would silently become the cwd.
            input=(
                os.path.abspath(str(payload["input"]))
                if payload.get("input")
                else ""
            ),
            output=(
                os.path.abspath(str(payload["output"]))
                if payload.get("output")
                else None
            ),
            right_input=(
                os.path.abspath(str(payload["right_input"]))
                if payload.get("right_input")
                else None
            ),
            store=(
                os.path.abspath(str(payload["store"]))
                if payload.get("store")
                else None
            ),
            tenant=str(payload.get("tenant", "default")),
            fmt=str(payload.get("format", "int")),
            key=_normalise_key(payload.get("key")),
            right_key=_normalise_key(payload.get("right_key")),
            by=str(payload.get("by", "record")),
            aggregates=tuple(str(name) for name in aggregates),
            value=(
                int(payload["value"])
                if payload.get("value") is not None
                else None
            ),
            k=int(payload.get("k", 0)),
            memory=int(payload.get("memory", 10_000)),
            algorithm=str(payload.get("algorithm", "2wrs")),
            fan_in=int(payload.get("fan_in", 8)),
            binary_spill=bool(payload.get("binary_spill", False)),
            spill_codec=str(payload.get("spill_codec", "none")),
            checksum=bool(payload.get("checksum", False)),
        )
        spec.validate()
        return spec

    def to_payload(self) -> Dict[str, Any]:
        """The canonical JSON form (also what ``job.json`` persists)."""
        return {
            "op": self.op,
            "input": self.input,
            "output": self.output,
            "right_input": self.right_input,
            "store": self.store,
            "tenant": self.tenant,
            "format": self.fmt,
            "key": _key_payload(self.key),
            "right_key": _key_payload(self.right_key),
            "by": self.by,
            "aggregates": list(self.aggregates),
            "value": self.value,
            "k": self.k,
            "memory": self.memory,
            "algorithm": self.algorithm,
            "fan_in": self.fan_in,
            "binary_spill": self.binary_spill,
            "spill_codec": self.spill_codec,
            "checksum": self.checksum,
        }


def job_id_for(spec: JobSpec) -> str:
    """Stable id: truncated SHA-256 over the canonical spec JSON."""
    canonical = json.dumps(spec.to_payload(), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:_ID_HEX]
