"""Execute one service job through the existing ``SortEngine``.

This is the CLI subcommand bodies re-expressed as a library call: the
runner builds the engine(s) for a :class:`~repro.service.jobs.JobSpec`,
streams the operator, and publishes the result atomically
(:func:`~repro.engine.resilience.atomic_output`).  Every job runs
*durably* — its work directory rides the §11 sort journal — so a job
killed with the server resumes from its surviving runs when the same
spec (same id) is submitted again.

Cancellation is cooperative: the input and output record streams check
a :class:`threading.Event` once per batch and raise
:class:`JobCancelled`, which unwinds through the engine generators'
``finally`` blocks (temp cleanup, broker release happens in the
scheduler's own ``finally``).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.core.config import GeneratorSpec, RECOMMENDED, TwoWayConfig
from repro.core.records import STR, RecordFormat, resolve_format
from repro.engine.block_io import (
    BlockWriter,
    DEFAULT_BLOCK_RECORDS,
    iter_records,
)
from repro.engine.planner import AUTO_READING, SortEngine
from repro.engine.resilience import atomic_output
from repro.ops import Distinct, GroupByAggregate, SortMergeJoin, TopK
from repro.ops.base import CountingIterator, report_as_dict
from repro.service.jobs import STORE_OPS, JobSpec
from repro.sort.spill import DEFAULT_BUFFER_RECORDS
from repro.store import Store
from repro.store.oplog import format_item, parse_op_line

__all__ = ["JobCancelled", "JobOutcome", "run_job"]

#: Records between cancellation checks on the streamed input/output.
_CANCEL_CHECK_EVERY = 1024


class JobCancelled(Exception):
    """Raised inside a job's worker thread when its cancel event fires."""


@dataclass(slots=True)
class JobOutcome:
    """What a finished job reports back through ``status``."""

    records_out: int = 0
    report: Optional[Dict[str, Any]] = None
    runs_reused: int = 0
    merges_reused: int = 0
    shards_reused: int = 0


def input_fingerprint(path: str) -> Optional[str]:
    """Identity of an input file, tying the job's journal to it."""
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return f"{os.path.abspath(path)}:{stat.st_size}:{stat.st_mtime_ns}"


def _cancellable(
    records: Iterator[Any], cancel: Optional[threading.Event], job_id: str
) -> Iterator[Any]:
    """Pass-through stream that aborts when the job is cancelled."""
    if cancel is None:
        yield from records
        return
    for index, record in enumerate(records):
        if index % _CANCEL_CHECK_EVERY == 0 and cancel.is_set():
            raise JobCancelled(f"job {job_id} cancelled")
        yield record


def _generator_spec(spec: JobSpec, memory: int) -> GeneratorSpec:
    two_way = None
    if spec.algorithm == "2wrs":
        two_way = TwoWayConfig(
            buffer_setup=RECOMMENDED.buffer_setup,
            buffer_fraction=RECOMMENDED.buffer_fraction,
            input_heuristic=RECOMMENDED.input_heuristic,
            output_heuristic=RECOMMENDED.output_heuristic,
            seed=0,
        )
    return GeneratorSpec(
        algorithm=spec.algorithm, memory=memory, two_way=two_way
    )


def _record_format(spec: JobSpec, key: Any) -> RecordFormat:
    if key is not None and spec.fmt not in ("csv", "tsv"):
        raise ValueError(
            f"key columns only apply to csv/tsv, not {spec.fmt!r}"
        )
    return resolve_format(spec.fmt, key=key if key is not None else 0)


def _engine(
    spec: JobSpec,
    memory: int,
    record_format: RecordFormat,
    work_dir: str,
    fingerprint: Optional[str],
) -> SortEngine:
    return SortEngine(
        _generator_spec(spec, memory),
        record_format=record_format,
        binary_spill=spec.binary_spill,
        workers=1,
        fan_in=spec.fan_in,
        buffer_records=DEFAULT_BUFFER_RECORDS,
        block_records=DEFAULT_BLOCK_RECORDS,
        reading=AUTO_READING,
        checksum=spec.checksum,
        spill_codec=spec.spill_codec,
        work_dir=work_dir,
        input_fingerprint=fingerprint,
    )


def _resume_counters(outcome: JobOutcome, engines: List[SortEngine]) -> None:
    outcome.runs_reused = sum(engine.runs_reused for engine in engines)
    outcome.merges_reused = sum(engine.merges_reused for engine in engines)
    outcome.shards_reused = sum(engine.shards_reused for engine in engines)


def run_job(
    spec: JobSpec,
    *,
    memory: int,
    work_dir: str,
    result_path: str,
    cancel: Optional[threading.Event] = None,
    job_id: str = "",
) -> JobOutcome:
    """Run ``spec`` with a granted ``memory`` budget; publish atomically.

    ``memory`` is what the broker actually granted (the spec's ask
    clamped by the tenant quota); the sorted *output* is identical for
    any budget, so clamping never changes results, only run counts.
    """
    if spec.op == "join":
        return _run_join(
            spec, memory=memory, work_dir=work_dir,
            result_path=result_path, cancel=cancel, job_id=job_id,
        )
    if spec.op in STORE_OPS:
        return _run_store(
            spec, memory=memory,
            result_path=result_path, cancel=cancel, job_id=job_id,
        )
    record_format = _record_format(spec, spec.key)
    engine = _engine(
        spec, memory, record_format,
        os.path.join(work_dir, "sort"), input_fingerprint(spec.input),
    )
    outcome = JobOutcome()
    # repro: lint-waive R002 job input is user data at the service boundary (the CLI reads it the same way); spill I/O below it is seamed
    with open(spec.input, "r", encoding="utf-8") as handle, \
            atomic_output(result_path) as out:
        records = _cancellable(
            iter_records(
                handle, engine.record_format, DEFAULT_BLOCK_RECORDS,
                skip_blank=True, binary=False,
            ),
            cancel, job_id,
        )
        if spec.op == "sort":
            produced = engine.sort(records, resume=True)
            writer = BlockWriter(
                out, engine.record_format, DEFAULT_BLOCK_RECORDS,
                binary=False,
            )
            writer.write_all(_cancellable(produced, cancel, job_id))
            writer.flush()
            outcome.records_out = engine.report.records if engine.report else 0
            outcome.report = report_as_dict(engine.report)
            _resume_counters(outcome, [engine])
            return outcome
        op: Any
        output_format = engine.record_format
        if spec.op == "distinct":
            op = Distinct(engine, by=spec.by)
        elif spec.op == "agg":
            op = GroupByAggregate(
                engine, aggregates=spec.aggregates, value_column=spec.value
            )
            output_format = STR
        elif spec.op == "topk":
            op = TopK(engine, spec.k)
        else:  # pragma: no cover - validate() rejects unknown ops
            raise ValueError(f"unknown op {spec.op!r}")
        writer = BlockWriter(
            out, output_format, DEFAULT_BLOCK_RECORDS, binary=False
        )
        counted = CountingIterator(
            _cancellable(op.run(records, resume=True), cancel, job_id)
        )
        writer.write_all(counted)
        writer.flush()
        outcome.records_out = counted.count
        outcome.report = report_as_dict(op.report)
        _resume_counters(outcome, [engine])
        return outcome


def _run_join(
    spec: JobSpec,
    *,
    memory: int,
    work_dir: str,
    result_path: str,
    cancel: Optional[threading.Event],
    job_id: str,
) -> JobOutcome:
    left_format = _record_format(spec, spec.key)
    right_format = _record_format(
        spec, spec.right_key if spec.right_key is not None else spec.key
    )
    assert spec.right_input is not None  # validate() guarantees it
    left_engine = _engine(
        spec, memory, left_format,
        os.path.join(work_dir, "left"), input_fingerprint(spec.input),
    )
    right_engine = _engine(
        spec, memory, right_format,
        os.path.join(work_dir, "right"),
        input_fingerprint(spec.right_input),
    )
    op = SortMergeJoin(left_engine, right_engine)
    outcome = JobOutcome()
    # repro: lint-waive R002 join inputs are user data at the service boundary; spill I/O below is seamed
    with open(spec.input, "r", encoding="utf-8") as left_handle, \
            open(spec.right_input, "r", encoding="utf-8") as right_handle, \
            atomic_output(result_path) as out:
        left_records = _cancellable(
            iter_records(
                left_handle, left_engine.record_format,
                DEFAULT_BLOCK_RECORDS, skip_blank=True, binary=False,
            ),
            cancel, job_id,
        )
        right_records = iter_records(
            right_handle, right_engine.record_format,
            DEFAULT_BLOCK_RECORDS, skip_blank=True, binary=False,
        )
        writer = BlockWriter(out, STR, DEFAULT_BLOCK_RECORDS, binary=False)
        counted = CountingIterator(
            _cancellable(
                op.run(left_records, right_records, resume=True),
                cancel, job_id,
            )
        )
        writer.write_all(counted)
        writer.flush()
        outcome.records_out = counted.count
    outcome.report = report_as_dict(op.report)
    _resume_counters(outcome, [left_engine, right_engine])
    return outcome


def _run_store(
    spec: JobSpec,
    *,
    memory: int,
    result_path: str,
    cancel: Optional[threading.Event],
    job_id: str,
) -> JobOutcome:
    """Run one store job against the spec's server-side directory.

    The broker grant *is* the memtable budget, so store jobs share the
    service's memory pool exactly like sorts do.  Ingest runs with
    ``sync=False`` — per-operation WAL fsyncs would make bulk loads
    I/O-bound for no benefit, because the service acknowledges the
    *job*, not individual operations, and ``close()`` syncs the WAL
    before the job reaches its terminal state.
    """
    assert spec.store is not None  # validate() guarantees it
    outcome = JobOutcome()
    store = Store(
        spec.store,
        memory=memory,
        codec=spec.spill_codec,
        fan_in=spec.fan_in,
        sync=False,
    )
    try:
        if spec.op == "store_ingest":
            applied = 0
            # repro: lint-waive R002 the oplog is user data at the service boundary (the CLI reads it the same way); store I/O below is seamed
            with open(spec.input, "r", encoding="utf-8") as handle:
                lines = _cancellable(
                    enumerate(handle, start=1), cancel, job_id
                )
                for lineno, line in lines:
                    parsed = parse_op_line(line, lineno)
                    if parsed is None:
                        continue
                    op, key, value = parsed
                    if op == "put":
                        store.put(key, value)
                    else:
                        store.delete(key)
                    applied += 1
            outcome.records_out = applied
            outcome.report = {
                "op": spec.op,
                "applied": applied,
                "flushed_tables": store.flushed_tables,
                "flushed_bytes": store.flushed_bytes,
                "compacted_tables": store.compacted_tables,
                "compacted_bytes": store.compacted_bytes,
            }
            with atomic_output(result_path) as out:
                json.dump(outcome.report, out, sort_keys=True)
                out.write("\n")
        elif spec.op == "store_scan":
            count = 0
            with atomic_output(result_path) as out:
                items = _cancellable(store.scan(), cancel, job_id)
                for key, value in items:
                    out.write(format_item(key, value) + "\n")
                    count += 1
            outcome.records_out = count
            outcome.report = {"op": spec.op, "items": count}
        else:  # store_compact
            name = store.compact()
            summary = store.verify()
            summary["op"] = spec.op
            summary["output"] = name
            outcome.records_out = summary["table_records"]
            outcome.report = summary
            with atomic_output(result_path) as out:
                json.dump(summary, out, sort_keys=True)
                out.write("\n")
    finally:
        store.close()
    return outcome
