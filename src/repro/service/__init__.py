"""Resident sort service (DESIGN.md §16).

One long-running asyncio process accepts sort/distinct/agg/join/topk
jobs over a small length-prefixed JSON protocol, runs each through the
existing :class:`~repro.engine.planner.SortEngine`, and multiplexes all
job memory through one :class:`~repro.sort.memory_broker.MemoryBroker`
— the paper's dynamic-memory policy promoted from simulation
(``ConcurrentSortSimulator``) to production admission control with
per-tenant quotas.

Jobs have stable content-derived ids: resubmitting the same spec (or
just the id) after a crash re-attaches to the job's durable work
directory and resumes from its §11 sort journal instead of starting
over.
"""

from repro.service.client import ServiceClient, read_endpoint
from repro.service.jobs import JobSpec, job_id_for
from repro.service.scheduler import JobScheduler
from repro.service.server import SortService

__all__ = [
    "JobScheduler",
    "JobSpec",
    "ServiceClient",
    "SortService",
    "job_id_for",
    "read_endpoint",
]
