"""Job scheduling over the shared memory broker (DESIGN.md §16).

The scheduler is the production promotion of the paper's
``ConcurrentSortSimulator``: instead of simulated round-robin slices,
real jobs run in a thread pool and compete for one
:class:`~repro.sort.memory_broker.MemoryBroker` pool using the same
five-situation policy — every admission request enters the queue as
``ABOUT_TO_START`` (the policy's highest priority: give jobs a chance
to start, so tiny sorts finish while a huge one spills), grants are
all-or-nothing so a waiting job can never deadlock holding a partial
budget, and releases regrant atomically in priority order.

Per-tenant quotas sit *above* the broker: a tenant's jobs never hold
more than its quota in total, so one tenant's spill storm cannot
starve the rest of the pool (the quota also clamps a single job's ask
— the sorted output is identical for any memory budget, only run
counts change).

Job lifecycle::

    queued -> waiting -> running -> done | failed | cancelled

Every job is durable: ``job.json`` is persisted (atomically) at
submit, the engine work directory rides the §11 sort journal, and the
terminal status is persisted as ``status.json``.  After a crash the
spool is rescanned: finished jobs answer ``status``/``result``
immediately, interrupted ones re-attach by id and resume from their
journal.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.errors import SortError
from repro.engine.resilience import read_marker, write_marker
from repro.service.jobs import JobSpec, job_id_for
from repro.service.runner import JobCancelled, JobOutcome, run_job
from repro.sort.memory_broker import MemoryBroker, WaitSituation

__all__ = ["JobScheduler", "JobState"]

#: Seconds between admission re-checks while a job waits for memory
#: (wakeups also arrive on every release, this is only the backstop).
_ADMISSION_POLL_S = 0.05

#: Job states that will never change again.
TERMINAL_STATES = ("done", "failed", "cancelled")


@dataclass
class JobState:
    """One job's live record inside the scheduler."""

    spec: JobSpec
    job_id: str
    status: str = "queued"
    attempt: int = 0
    error: Optional[str] = None
    outcome: Optional[JobOutcome] = None
    granted: int = 0
    cancel: threading.Event = field(default_factory=threading.Event)
    created_m: float = 0.0
    started_m: float = 0.0
    finished_m: float = 0.0

    def owner(self) -> str:
        """Broker owner key — unique per attempt, so a cancelled
        attempt's retirement never blocks a later resubmission."""
        return f"{self.job_id}#{self.attempt}"


class JobScheduler:
    """Run jobs through the engine under one shared memory pool.

    Parameters
    ----------
    spool:
        Directory holding one subdirectory per job (spec, work dir,
        published result, terminal status).
    total_memory:
        The shared pool, in records — the service-wide analogue of the
        CLI's ``--memory``.
    job_workers:
        Worker threads; also the bound on jobs *admitted or waiting*
        at once (queued jobs wait for a thread first).
    tenant_quotas:
        Per-tenant memory caps in records; tenants not listed get
        ``default_quota`` (the whole pool when that is None too).
    """

    def __init__(
        self,
        spool: str,
        total_memory: int = 100_000,
        job_workers: int = 8,
        tenant_quotas: Optional[Dict[str, int]] = None,
        default_quota: Optional[int] = None,
    ) -> None:
        if total_memory < 1:
            raise ValueError(f"total_memory must be >= 1, got {total_memory}")
        self.spool = os.path.abspath(spool)
        self.jobs_dir = os.path.join(self.spool, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.total_memory = total_memory
        self.broker = MemoryBroker(total_memory)
        self.tenant_quotas = dict(tenant_quotas or {})
        self.default_quota = default_quota
        self._tenant_used: Dict[str, int] = {}
        self._jobs: Dict[str, JobState] = {}
        self._admission = threading.Condition()
        self._lock = threading.RLock()
        self._executor = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-job"
        )
        self._shut_down = False
        self._scan_spool()

    # -- submission and queries ------------------------------------------------

    def submit(self, spec: JobSpec) -> JobState:
        """Submit (or re-attach to) the job with ``spec``'s identity.

        Idempotent by content id: an already queued/waiting/running or
        finished job is returned as-is; a failed, cancelled, or
        interrupted one is requeued as a fresh attempt that resumes
        from the surviving journal.
        """
        spec.validate()
        job_id = job_id_for(spec)
        with self._lock:
            if self._shut_down:
                raise RuntimeError("scheduler is shut down")
            state = self._jobs.get(job_id)
            if state is not None and state.status not in (
                "failed", "cancelled", "interrupted"
            ):
                return state
            if state is None:
                state = JobState(spec=spec, job_id=job_id)
                self._jobs[job_id] = state
            state.attempt += 1
            state.status = "queued"
            state.error = None
            state.cancel = threading.Event()
            state.created_m = time.monotonic()
            self._persist_spec(state)
            self._executor.submit(self._run, state)
            return state

    def submit_id(self, job_id: str) -> Optional[JobState]:
        """Re-attach to ``job_id`` from its persisted spec (crash path)."""
        with self._lock:
            state = self._jobs.get(job_id)
            if state is not None and state.status not in (
                "failed", "cancelled", "interrupted"
            ):
                return state
        spec = self._load_spec(job_id)
        if spec is None:
            return None
        return self.submit(spec)

    def status(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            state = self._jobs.get(job_id)
            if state is None:
                return None
            return self._status_payload(state)

    def list_jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {
                    "id": state.job_id,
                    "op": state.spec.op,
                    "tenant": state.spec.tenant,
                    "status": state.status,
                }
                for state in sorted(
                    self._jobs.values(), key=lambda s: s.created_m
                )
            ]

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True when the job can still react."""
        with self._lock:
            state = self._jobs.get(job_id)
            if state is None or state.status in TERMINAL_STATES:
                return False
            state.cancel.set()
        # Wake an admission waiter immediately (it checks the event
        # first); a running job notices at its next stream batch.
        with self._admission:
            self._admission.notify_all()
        return True

    def result_path(self, job_id: str) -> Optional[str]:
        with self._lock:
            state = self._jobs.get(job_id)
            if state is None:
                return None
            return self._result_path_for(state.spec, state.job_id)

    def shutdown(self) -> None:
        """Cancel everything still moving and reap the worker threads."""
        with self._lock:
            if self._shut_down:
                return
            self._shut_down = True
            states = list(self._jobs.values())
        for state in states:
            if state.status not in TERMINAL_STATES:
                state.cancel.set()
        with self._admission:
            self._admission.notify_all()
        self._executor.shutdown(wait=True, cancel_futures=True)

    # -- the worker-thread body ------------------------------------------------

    def _run(self, state: JobState) -> None:
        owner = state.owner()
        granted = 0
        try:
            self._set_status(state, "waiting")
            granted = self._acquire(state, owner)
            state.granted = granted
            state.started_m = time.monotonic()
            self._set_status(state, "running")
            job_dir = self._job_dir(state.job_id)
            outcome = run_job(
                state.spec,
                memory=granted,
                work_dir=os.path.join(job_dir, "work"),
                result_path=self._result_path_for(state.spec, state.job_id),
                cancel=state.cancel,
                job_id=state.job_id,
            )
            state.outcome = outcome
            self._finish(state, "done")
        except JobCancelled:
            self._finish(state, "cancelled")
        except (SortError, OSError, ValueError, RuntimeError) as exc:
            state.error = str(exc)
            self._finish(state, "failed")
        finally:
            self.broker.release_and_regrant(owner)
            with self._admission:
                if granted:
                    tenant = state.spec.tenant
                    self._tenant_used[tenant] = (
                        self._tenant_used.get(tenant, 0) - granted
                    )
                self._admission.notify_all()

    def _acquire(self, state: JobState, owner: str) -> int:
        """Block until the broker grants this job's budget.

        All-or-nothing: the ask is the spec's memory clamped by the
        tenant quota and pool size, requested as ``ABOUT_TO_START``
        with ``maximum`` equal to the ask so a re-request can never
        overshoot.  On cancellation the owner is *retired* via
        ``cancel_owner`` — the one atomic step that drops the queue
        entry, returns anything already granted, and guarantees no
        posthumous grant can leak pool budget.
        """
        tenant = state.spec.tenant
        quota = self._quota(tenant)
        amount = max(1, min(state.spec.memory, quota, self.total_memory))
        try:
            while True:
                if state.cancel.is_set():
                    raise JobCancelled(f"job {state.job_id} cancelled")
                with self._admission:
                    used = self._tenant_used.get(tenant, 0)
                    granted = 0
                    if used + amount <= quota:
                        granted = self.broker.allocated_to(owner)
                        if granted < amount:
                            granted += self.broker.request_or_enqueue(
                                owner,
                                amount - granted,
                                WaitSituation.ABOUT_TO_START,
                                maximum=amount,
                            )
                    if granted >= amount:
                        self._tenant_used[tenant] = used + granted
                        return granted
                    self._admission.wait(timeout=_ADMISSION_POLL_S)
        except JobCancelled:
            # Retire the owner atomically: releases any racing grant
            # and blocks every later one (the posthumous-grant fix).
            self.broker.cancel_owner(owner)
            raise

    def _quota(self, tenant: str) -> int:
        quota = self.tenant_quotas.get(tenant, self.default_quota)
        if quota is None:
            quota = self.total_memory
        return max(1, min(quota, self.total_memory))

    # -- persistence -----------------------------------------------------------

    def _job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id)

    def _result_path_for(self, spec: JobSpec, job_id: str) -> str:
        return spec.output or os.path.join(self._job_dir(job_id), "OUTPUT")

    def _persist_spec(self, state: JobState) -> None:
        job_dir = self._job_dir(state.job_id)
        os.makedirs(job_dir, exist_ok=True)
        write_marker(
            os.path.join(job_dir, "job.json"),
            {"id": state.job_id, "job": state.spec.to_payload()},
        )
        # A rerun invalidates any previous terminal status.
        try:
            os.remove(os.path.join(job_dir, "status.json"))
        except OSError:
            pass

    def _load_spec(self, job_id: str) -> Optional[JobSpec]:
        payload = read_marker(os.path.join(self._job_dir(job_id), "job.json"))
        if payload is None or payload.get("id") != job_id:
            return None
        try:
            return JobSpec.from_payload(payload.get("job", {}))
        except ValueError:
            return None

    def _set_status(self, state: JobState, status: str) -> None:
        with self._lock:
            state.status = status

    def _finish(self, state: JobState, status: str) -> None:
        with self._lock:
            state.status = status
            state.finished_m = time.monotonic()
            payload = self._status_payload(state)
        write_marker(
            os.path.join(self._job_dir(state.job_id), "status.json"), payload
        )

    def _status_payload(self, state: JobState) -> Dict[str, Any]:
        outcome = state.outcome
        waited = (
            (state.started_m - state.created_m)
            if state.started_m
            else 0.0
        )
        ran = (
            (state.finished_m - state.started_m)
            if state.finished_m and state.started_m
            else 0.0
        )
        return {
            "id": state.job_id,
            "status": state.status,
            "op": state.spec.op,
            "tenant": state.spec.tenant,
            "attempt": state.attempt,
            "memory": state.spec.memory,
            "granted": state.granted,
            "output": self._result_path_for(state.spec, state.job_id),
            "error": state.error,
            "records_out": outcome.records_out if outcome else 0,
            "report": outcome.report if outcome else None,
            "resume": {
                "runs_reused": outcome.runs_reused if outcome else 0,
                "merges_reused": outcome.merges_reused if outcome else 0,
                "shards_reused": outcome.shards_reused if outcome else 0,
            },
            "waited_s": round(waited, 6),
            "ran_s": round(ran, 6),
        }

    def _scan_spool(self) -> None:
        """Reload job records left by a previous (crashed) server.

        Jobs with a persisted terminal status answer ``status`` and
        ``result`` straight away; anything else found on disk — a spec
        whose run never finished — surfaces as ``interrupted`` and is
        re-attachable by id.
        """
        try:
            entries = sorted(os.listdir(self.jobs_dir))
        except OSError:
            return
        for job_id in entries:
            spec = self._load_spec(job_id)
            if spec is None:
                continue
            state = JobState(spec=spec, job_id=job_id)
            payload = read_marker(
                os.path.join(self._job_dir(job_id), "status.json")
            )
            if payload is not None and payload.get("status") in TERMINAL_STATES:
                state.status = str(payload["status"])
                state.attempt = int(payload.get("attempt", 1))
                state.error = payload.get("error")
                state.granted = int(payload.get("granted", 0))
                outcome = JobOutcome(
                    records_out=int(payload.get("records_out", 0)),
                    report=payload.get("report"),
                )
                resume = payload.get("resume") or {}
                outcome.runs_reused = int(resume.get("runs_reused", 0))
                outcome.merges_reused = int(resume.get("merges_reused", 0))
                outcome.shards_reused = int(resume.get("shards_reused", 0))
                state.outcome = outcome
            else:
                state.status = "interrupted"
            self._jobs[job_id] = state

    # -- maintenance -----------------------------------------------------------

    def remove_job(self, job_id: str) -> bool:
        """Drop a terminal job's record and spool directory (tests)."""
        with self._lock:
            state = self._jobs.get(job_id)
            if state is None or state.status not in (
                *TERMINAL_STATES, "interrupted"
            ):
                return False
            del self._jobs[job_id]
        shutil.rmtree(self._job_dir(job_id), ignore_errors=True)
        return True
